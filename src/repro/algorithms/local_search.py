"""Order-based local search on top of list scheduling.

The paper's conclusion asks for "variants of list scheduling that can
improve the upper bound".  A pragmatic engineering answer — standard in
scheduling practice — is local search over the *list order*: LSRC is a
deterministic function of the order, so the order space is a compact
search space whose every point is a feasible schedule with all of LSRC's
guarantees (the result can only improve on the starting rule, and
Theorem 2 / Proposition 3 still apply because the final schedule is
still a list schedule).

:class:`LocalSearchScheduler` runs steepest-descent / first-improvement
over swap and reinsertion neighbourhoods with a bounded evaluation
budget.  Deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.instance import ReservationInstance
from ..core.schedule import Schedule
from ..errors import InvalidInstanceError
from .base import Scheduler, register
from .list_scheduling import ListScheduler
from .priority import explicit_order, get_rule


@dataclass
class SearchStats:
    """Bookkeeping of one local-search run."""

    evaluations: int = 0
    improvements: int = 0
    start_makespan: object = None
    final_makespan: object = None


class LocalSearchScheduler(Scheduler):
    """Improve an LSRC order by swap/reinsert local search.

    Parameters
    ----------
    start_rule:
        Priority rule that seeds the order (default ``"lpt"``, the
        conclusion's suggested rule).
    budget:
        Maximum number of neighbour evaluations (each is a full LSRC run;
        keep instances moderate).
    neighbourhood:
        ``"swap"``, ``"reinsert"`` or ``"both"``.
    seed:
        Seed for the neighbour sampling order.
    """

    def __init__(
        self,
        start_rule: str = "lpt",
        budget: int = 300,
        neighbourhood: str = "both",
        seed: int = 0,
        profile_backend=None,
    ):
        if budget < 1:
            raise InvalidInstanceError("budget must be >= 1")
        if neighbourhood not in ("swap", "reinsert", "both"):
            raise InvalidInstanceError(
                f"unknown neighbourhood {neighbourhood!r}"
            )
        self._start_rule = get_rule(start_rule)
        self.budget = budget
        self.neighbourhood = neighbourhood
        self.seed = seed
        self.profile_backend = profile_backend
        self.name = f"lsrc-ls[{start_rule}]"
        #: statistics of the most recent run
        self.last_stats: Optional[SearchStats] = None

    # -- neighbourhood enumeration ---------------------------------------
    def _neighbours(self, order: List, rng: random.Random):
        n = len(order)
        moves = []
        if self.neighbourhood in ("swap", "both"):
            moves.extend(("swap", i, j) for i in range(n) for j in range(i + 1, n))
        if self.neighbourhood in ("reinsert", "both"):
            moves.extend(
                ("reinsert", i, j)
                for i in range(n)
                for j in range(n)
                if i != j
            )
        rng.shuffle(moves)
        for kind, i, j in moves:
            if kind == "swap":
                nxt = list(order)
                nxt[i], nxt[j] = nxt[j], nxt[i]
            else:
                nxt = list(order)
                item = nxt.pop(i)
                nxt.insert(j, item)
            yield nxt

    def _evaluate(self, instance: ReservationInstance, order: List) -> Schedule:
        return ListScheduler(
            explicit_order(order), profile_backend=self.profile_backend
        ).schedule(instance)

    def _run(self, instance: ReservationInstance) -> Schedule:
        rng = random.Random(self.seed)
        stats = SearchStats()
        order = [j.id for j in self._start_rule(instance.jobs)]
        best = self._evaluate(instance, order)
        stats.evaluations = 1
        stats.start_makespan = best.makespan
        improved = True
        while improved and stats.evaluations < self.budget:
            improved = False
            for candidate in self._neighbours(order, rng):
                if stats.evaluations >= self.budget:
                    break
                schedule = self._evaluate(instance, candidate)
                stats.evaluations += 1
                if schedule.makespan < best.makespan:
                    best = schedule
                    order = candidate
                    stats.improvements += 1
                    improved = True
                    break  # first improvement: restart the neighbourhood
        stats.final_makespan = best.makespan
        self.last_stats = stats
        return best


def local_search_schedule(
    instance,
    start_rule: str = "lpt",
    budget: int = 300,
    seed: int = 0,
    profile_backend=None,
) -> Schedule:
    """Convenience wrapper: local-search-improved LSRC."""
    return LocalSearchScheduler(
        start_rule=start_rule,
        budget=budget,
        seed=seed,
        profile_backend=profile_backend,
    ).schedule(instance)


register("lsrc-ls", LocalSearchScheduler)
