"""Offline-to-online transformation by batch doubling.

Section 2.1 of the paper: "any off-line algorithm may be used in an
on-line fashion, with a doubling factor for the performance ratio"
(Shmoys, Wein, Williamson 1995).  Jobs arriving during the execution of
the current batch are *not* inserted; they wait and form the next batch,
which starts only when the current batch has completely finished.  If the
offline algorithm is a ρ-approximation, the online scheme is a
2ρ-approximation against the clairvoyant optimum.

The wrapper works with any :class:`~repro.algorithms.base.Scheduler`
because reservations are absolute-time constraints: each batch is solved
as a sub-instance whose jobs have their release floored at the batch start
and whose reservations are the *original* ones, so batch placements
respect the global reservation calendar.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.instance import ReservationInstance
from ..core.schedule import Schedule
from .base import Scheduler, register
from .list_scheduling import ListScheduler


class BatchDoublingScheduler(Scheduler):
    """Run an offline scheduler batch-by-batch over release times.

    Parameters
    ----------
    inner_factory:
        Zero-argument callable producing the offline scheduler for each
        batch; defaults to plain LSRC.
    """

    def __init__(self, inner_factory: Optional[Callable[[], Scheduler]] = None):
        self._inner_factory = inner_factory or ListScheduler
        inner_name = self._inner_factory().name
        self.name = f"batch[{inner_name}]"

    def _run(self, instance: ReservationInstance) -> Schedule:
        remaining: List = sorted(
            instance.jobs, key=lambda j: (j.release, str(j.id))
        )
        starts: Dict = {}
        floor = 0
        while remaining:
            batch = [j for j in remaining if j.release <= floor]
            if not batch:
                floor = min(j.release for j in remaining)
                batch = [j for j in remaining if j.release <= floor]
            sub_jobs = tuple(j.with_release(floor) for j in batch)
            sub_instance = ReservationInstance(
                m=instance.m,
                jobs=sub_jobs,
                reservations=instance.reservations,
                name=f"{instance.name}/batch@{floor}",
            )
            inner = self._inner_factory()
            sub_schedule = inner.schedule(sub_instance)
            batch_end = floor
            for job in batch:
                s = sub_schedule.starts[job.id]
                starts[job.id] = s
                batch_end = max(batch_end, s + job.p)
            floor = batch_end
            batch_ids = {j.id for j in batch}
            remaining = [j for j in remaining if j.id not in batch_ids]
        return Schedule(instance, starts)


def batch_doubling_schedule(instance, inner_factory=None) -> Schedule:
    """Convenience wrapper: batch-doubling online scheduling."""
    return BatchDoublingScheduler(inner_factory).schedule(instance)


register("batch-lsrc", BatchDoublingScheduler)
