"""Shelf-based scheduling heuristics.

The paper's conclusion points at "heuristics like those based on packing
(partition on shelves) algorithms" as a further direction.  A *shelf* is a
group of jobs started simultaneously side by side: its width is the sum of
the jobs' processor requirements (``<= m``) and its height the longest
processing time inside.  Shelf algorithms come from strip packing
(NFDH/FFDH); for rigid jobs without reservations FFDH-style shelving is a
classical 3-approximation-grade heuristic, and it extends naturally to
reservations by placing each closed shelf as one rigid block with
:meth:`~repro.core.profile.ResourceProfile.earliest_fit`.

Two variants:

* :class:`NextFitShelfScheduler` (NFDH) — jobs sorted by decreasing ``p``;
  a job opens a new shelf as soon as it does not fit in the current one;
* :class:`FirstFitShelfScheduler` (FFDH) — jobs sorted by decreasing
  ``p``; each job goes to the *first* shelf with room, a new shelf is
  opened only when none fits.

Shelf schedules are intentionally more rigid than LSRC; the ablation
benchmark (``bench_shelf_ablation.py``) quantifies the price paid for the
simpler structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.instance import ReservationInstance
from ..core.job import Job
from ..core.schedule import Schedule
from ..errors import SchedulingError
from .base import Scheduler, register


@dataclass
class _Shelf:
    """A group of jobs that will start at the same time."""

    jobs: List[Job] = field(default_factory=list)
    width: int = 0  # sum of q over jobs

    @property
    def height(self):
        return max(job.p for job in self.jobs)

    def fits(self, job: Job, m: int) -> bool:
        return self.width + job.q <= m

    def push(self, job: Job) -> None:
        self.jobs.append(job)
        self.width += job.q


def _build_shelves_nf(jobs: List[Job], m: int) -> List[_Shelf]:
    """Next-fit shelving over decreasing processing times."""
    shelves: List[_Shelf] = []
    current: _Shelf | None = None
    for job in sorted(jobs, key=lambda j: (-j.p, str(j.id))):
        if current is None or not current.fits(job, m):
            current = _Shelf()
            shelves.append(current)
        current.push(job)
    return shelves


def _build_shelves_ff(jobs: List[Job], m: int) -> List[_Shelf]:
    """First-fit shelving over decreasing processing times."""
    shelves: List[_Shelf] = []
    for job in sorted(jobs, key=lambda j: (-j.p, str(j.id))):
        target = next((s for s in shelves if s.fits(job, m)), None)
        if target is None:
            target = _Shelf()
            shelves.append(target)
        target.push(job)
    return shelves


class _ShelfSchedulerBase(Scheduler):
    """Shared placement logic: each shelf becomes one rigid block.

    Because all jobs of a shelf start together and the shelf's jobs jointly
    need ``width`` processors for ``height`` time, placing the block with
    ``earliest_fit(width, height)`` keeps the schedule feasible against
    reservations.  Shelves are placed in decreasing height order (the
    strip-packing order), each at its earliest feasible time.

    Shelf scheduling ignores release times by design (it is an offline
    packing heuristic); instances with positive releases are rejected.
    """

    _builder = staticmethod(_build_shelves_nf)

    def __init__(self, profile_backend=None):
        self.profile_backend = profile_backend

    def _run(self, instance: ReservationInstance) -> Schedule:
        if any(job.release > 0 for job in instance.jobs):
            raise SchedulingError(
                f"{self.name} is an offline packing heuristic and does not "
                "support release times"
            )
        if not instance.jobs:
            return Schedule(instance, {})
        shelves = self._builder(list(instance.jobs), instance.m)
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        for shelf in shelves:
            s = profile.earliest_fit(shelf.width, shelf.height, after=0)
            if s is None:
                raise SchedulingError(
                    f"shelf of width {shelf.width} never fits in the profile"
                )
            profile.reserve(s, shelf.height, shelf.width)
            for job in shelf.jobs:
                starts[job.id] = s
        return Schedule(instance, starts)


class NextFitShelfScheduler(_ShelfSchedulerBase):
    """NFDH-style shelving: close a shelf as soon as a job does not fit."""

    name = "shelf-nf"
    _builder = staticmethod(_build_shelves_nf)


class FirstFitShelfScheduler(_ShelfSchedulerBase):
    """FFDH-style shelving: put each job on the first shelf with room."""

    name = "shelf-ff"
    _builder = staticmethod(_build_shelves_ff)


def shelf_schedule(instance, variant: str = "ff", profile_backend=None) -> Schedule:
    """Convenience wrapper: run a shelf heuristic (``"ff"`` or ``"nf"``)."""
    if variant == "ff":
        return FirstFitShelfScheduler(profile_backend).schedule(instance)
    if variant == "nf":
        return NextFitShelfScheduler(profile_backend).schedule(instance)
    raise SchedulingError(f"unknown shelf variant {variant!r}; use 'ff' or 'nf'")


register("shelf-nf", NextFitShelfScheduler)
register("shelf-ff", FirstFitShelfScheduler)
