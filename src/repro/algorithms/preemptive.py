"""Optimal preemptive scheduling of sequential jobs under availability
profiles (the related-work model of Section 1.3).

The paper contrasts its non-preemptive rigid model with the literature on
availability constraints, "most of the existing work ... considers models
where preemption is allowed" — citing Schmidt's semi-identical processors
[17] and Liu & Sanlaville's variable profiles [15].  This module builds
that comparator so experiments can measure the *price of non-preemption*
under reservations:

* **Schmidt's condition** — sequential jobs (``q_i = 1``) can be
  preemptively scheduled by deadline ``T`` on a machine with availability
  profile ``m(t)`` iff for every ``k`` the ``k`` largest processing times
  fit in the capacity of the ``k`` "fastest" machines::

      for all k in 1..n:   sum of k largest p_i  <=  ∫₀ᵀ min(m(t), k) dt

  (the ``k = n`` case is the total-area condition).
  :func:`preemptive_makespan` computes the smallest such ``T`` exactly.

* **Construction** — :func:`preemptive_schedule` realises a schedule
  attaining that makespan: profile segments are filled in
  longest-remaining-first order (each job capped at the segment length so
  it never runs on two machines at once), then each segment's allocation
  is laid out with McNaughton's wrap-around rule.  The result is a
  :class:`PreemptiveSchedule` whose :meth:`PreemptiveSchedule.verify`
  re-checks every invariant from scratch.

Only sequential jobs are supported: preemptive *rigid* scheduling is a
different (and much harder) problem, which is precisely the paper's
point in Section 1.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from ..core.instance import ReservationInstance, as_reservation_instance
from ..errors import InvalidInstanceError, SchedulingError


@dataclass(frozen=True)
class PreemptivePiece:
    """One contiguous run of a job on one (virtual) machine."""

    job_id: object
    machine: int
    start: object
    end: object

    @property
    def length(self):
        return self.end - self.start


class PreemptiveSchedule:
    """A preemptive schedule: a list of pieces plus its instance."""

    def __init__(self, instance: ReservationInstance, pieces: List[PreemptivePiece]):
        self.instance = instance
        self.pieces = list(pieces)

    @property
    def makespan(self):
        """Latest piece end (0 when empty)."""
        return max((p.end for p in self.pieces), default=0)

    def work_of(self, job_id):
        """Total processing received by a job."""
        return sum(p.length for p in self.pieces if p.job_id == job_id)

    def preemption_count(self) -> int:
        """Number of preemptions: extra pieces beyond one per job."""
        per_job: Dict[object, int] = {}
        for piece in self.pieces:
            per_job[piece.job_id] = per_job.get(piece.job_id, 0) + 1
        return sum(c - 1 for c in per_job.values())

    def verify(self) -> None:
        """Re-check every invariant; raises :class:`SchedulingError`.

        1. every job receives exactly ``p_i`` units of processing;
        2. no job runs on two machines at once (its pieces are disjoint);
        3. concurrency never exceeds the availability ``m(t)``;
        4. no piece has negative length or starts before 0.
        """
        inst = self.instance
        for piece in self.pieces:
            if piece.length <= 0:
                raise SchedulingError(f"empty or negative piece {piece}")
            if piece.start < 0:
                raise SchedulingError(f"piece before time 0: {piece}")
        for job in inst.jobs:
            got = self.work_of(job.id)
            if got != job.p:
                raise SchedulingError(
                    f"job {job.id!r} received {got} processing, needs {job.p}"
                )
        # per-job self-overlap
        by_job: Dict[object, List[PreemptivePiece]] = {}
        for piece in self.pieces:
            by_job.setdefault(piece.job_id, []).append(piece)
        for job_id, pieces in by_job.items():
            pieces.sort(key=lambda p: p.start)
            for a, b in zip(pieces, pieces[1:]):
                if b.start < a.end:
                    raise SchedulingError(
                        f"job {job_id!r} runs in parallel with itself: "
                        f"{a} overlaps {b}"
                    )
        # concurrency vs availability at every event point
        profile = inst.availability_profile()
        events = sorted(
            {p.start for p in self.pieces}
            | {p.end for p in self.pieces}
            | set(profile.breakpoints)
        )
        for t in events:
            running = sum(1 for p in self.pieces if p.start <= t < p.end)
            if running > profile.capacity_at(t):
                raise SchedulingError(
                    f"at {t}: {running} jobs running but only "
                    f"{profile.capacity_at(t)} machines available"
                )


def _check_sequential(inst: ReservationInstance) -> None:
    wide = [job.id for job in inst.jobs if job.q != 1]
    if wide:
        raise InvalidInstanceError(
            f"preemptive scheduling supports sequential jobs only "
            f"(q = 1); jobs {wide!r} are parallel"
        )
    late = [job.id for job in inst.jobs if job.release != 0]
    if late:
        raise InvalidInstanceError(
            f"preemptive scheduling is offline; jobs {late!r} have releases"
        )


def _capped_area(profile, cap: int, T) -> object:
    """``∫₀ᵀ min(m(t), cap) dt`` exactly."""
    total = 0
    for seg_start, seg_end, c in profile.segments():
        if seg_start >= T:
            break
        hi = min(seg_end, T)
        total += min(c, cap) * (hi - seg_start)
    return total


def _exact_div(deficit, rate: int):
    """``deficit / rate`` staying exact for integer inputs."""
    if isinstance(deficit, int):
        q = Fraction(deficit, rate)
        return int(q) if q.denominator == 1 else q
    return deficit / rate


def _first_time_capped_area_reaches(profile, cap: int, work):
    """Smallest ``T`` with ``∫₀ᵀ min(m(t), cap) >= work`` (None if never)."""
    if work <= 0:
        return 0
    acc = 0
    for seg_start, seg_end, c in profile.segments():
        rate = min(c, cap)
        if seg_end == math.inf:
            if rate == 0:
                return None
            return seg_start + _exact_div(work - acc, rate)
        if rate > 0:
            gain = rate * (seg_end - seg_start)
            if acc + gain >= work:
                return seg_start + _exact_div(work - acc, rate)
            acc += gain
    return None  # pragma: no cover - final segment is infinite


def preemptive_makespan(instance, profile_backend=None):
    """Smallest ``T`` satisfying Schmidt's condition (exact optimum).

    Each ``k``-condition yields the earliest time the ``k`` largest jobs'
    total work fits in ``min(m(t), k)``; the optimum is the max over
    ``k``.  Exact for integer/Fraction inputs.
    """
    inst = as_reservation_instance(instance)
    _check_sequential(inst)
    if not inst.jobs:
        return 0
    profile = inst.availability_profile(profile_backend)
    ps = sorted((job.p for job in inst.jobs), reverse=True)
    best = 0
    prefix = 0
    for k, p in enumerate(ps, start=1):
        prefix += p
        t = _first_time_capped_area_reaches(profile, k, prefix)
        if t is None:
            raise SchedulingError(
                "availability never accumulates enough capacity; "
                "degenerate profile"
            )
        best = max(best, t)
    return best


def _div(a, b):
    """Exact division when both operands are int/Fraction."""
    if isinstance(a, (int, Fraction)) and isinstance(b, (int, Fraction)):
        q = Fraction(a) / Fraction(b)
        return int(q) if q.denominator == 1 else q
    return a / b


def _waterfill(rs: List, c: int, length):
    """Allocations for one segment: continuous-LRPT water levels.

    Gives each job ``a_j = min(length, max(0, r_j - θ))`` where the level
    ``θ >= 0`` is chosen so the total equals the segment's capacity
    ``c * length`` (or every job is served when capacity is plentiful).
    Keeping the *largest remaining* values balanced is what preserves
    Schmidt's condition for the residual instance — a plain
    longest-first greedy can starve the second-longest job and miss the
    optimum.
    """
    budget = c * length
    served_all = [min(r, length) for r in rs]
    if sum(served_all) <= budget:
        return served_all
    # f(θ) = Σ min(length, max(0, r_j − θ)) is continuous, non-increasing,
    # piecewise linear with breakpoints at θ = r_j and θ = r_j − length.
    candidates = sorted(
        {r for r in rs} | {r - length for r in rs if r - length > 0}
    )
    prev, f_prev = 0, sum(served_all)
    for cand in candidates:
        if cand <= 0:
            continue
        f_cand = sum(min(length, max(0, r - cand)) for r in rs)
        if f_cand <= budget:
            if f_cand == budget:
                theta = cand
            else:
                slope = _div(f_cand - f_prev, cand - prev)  # negative
                theta = prev + _div(budget - f_prev, slope)
            return [min(length, max(0, r - theta)) for r in rs]
        prev, f_prev = cand, f_cand
    raise SchedulingError(  # pragma: no cover - f reaches 0 at max r
        "water-filling failed to find a level; please report"
    )


def preemptive_schedule(instance, profile_backend=None) -> PreemptiveSchedule:
    """Construct an optimal preemptive schedule.

    Segment-filling: walk the availability profile up to the optimal
    ``T``; in each constant segment ``[s, e) × c``, share the ``c``
    machines among the jobs with the largest remaining work by
    water-filling (:func:`_waterfill` — the continuous LRPT rule), with
    every job capped at the segment length so it never needs two machines
    at once; realise each segment's allocation with McNaughton's
    wrap-around rule.

    :meth:`PreemptiveSchedule.verify` and a hypothesis property test
    re-check on every run that the construction attains the Schmidt
    optimum exactly.
    """
    inst = as_reservation_instance(instance)
    _check_sequential(inst)
    if not inst.jobs:
        return PreemptiveSchedule(inst, [])
    T = preemptive_makespan(inst, profile_backend)
    profile = inst.availability_profile(profile_backend)
    remaining: Dict[object, object] = {job.id: job.p for job in inst.jobs}
    pieces: List[PreemptivePiece] = []

    for seg_start, seg_end, c in profile.segments():
        if seg_start >= T or all(r == 0 for r in remaining.values()):
            break
        hi = min(seg_end, T)
        length = hi - seg_start
        if length <= 0 or c == 0:
            continue
        active = sorted(
            (jid for jid, r in remaining.items() if r > 0),
            key=lambda jid: (-remaining[jid], str(jid)),
        )
        amounts = _waterfill([remaining[jid] for jid in active], c, length)
        alloc: List[Tuple[object, object]] = []
        for jid, give in zip(active, amounts):
            if give <= 0:
                continue
            alloc.append((jid, give))
            remaining[jid] -= give
        # McNaughton wrap-around within [seg_start, hi) on c machines
        machine = 0
        cursor = seg_start
        for jid, give in alloc:
            while give > 0:
                room = hi - cursor
                if room <= 0:
                    machine += 1
                    cursor = seg_start
                    room = length
                run = min(give, room)
                pieces.append(
                    PreemptivePiece(
                        job_id=jid,
                        machine=machine,
                        start=cursor,
                        end=cursor + run,
                    )
                )
                cursor += run
                give -= run
    unfinished = [jid for jid, r in remaining.items() if r > 0]
    if unfinished:
        raise SchedulingError(
            f"segment filling left jobs unfinished: {unfinished!r}; "
            "Schmidt bound violated — please report this instance"
        )
    # merge adjacent pieces of the same job on the same machine
    merged: List[PreemptivePiece] = []
    for piece in sorted(pieces, key=lambda p: (p.machine, p.start)):
        if (
            merged
            and merged[-1].machine == piece.machine
            and merged[-1].job_id == piece.job_id
            and merged[-1].end == piece.start
        ):
            merged[-1] = PreemptivePiece(
                job_id=piece.job_id,
                machine=piece.machine,
                start=merged[-1].start,
                end=piece.end,
            )
        else:
            merged.append(piece)
    return PreemptiveSchedule(inst, merged)


def price_of_nonpreemption(instance, scheduler=None):
    """Ratio ``Cmax(non-preemptive scheduler) / Cmax(preemptive optimum)``.

    The comparison the paper's Section 1.3 implies: how much of LSRC's
    makespan is the price of not preempting (versus the price of
    approximation).  Sequential offline jobs only.
    """
    from .list_scheduling import ListScheduler

    inst = as_reservation_instance(instance)
    _check_sequential(inst)
    scheduler = scheduler or ListScheduler()
    nonpreemptive = scheduler.schedule(inst)
    nonpreemptive.verify()
    lower = preemptive_makespan(inst)
    if lower == 0:
        return 1
    return _div(nonpreemptive.makespan, lower)
