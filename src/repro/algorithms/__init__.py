"""Scheduling algorithms for rigid jobs with reservations.

========================  ====================================================
registry name             algorithm
========================  ====================================================
``lsrc``                  list scheduling with resource constraints
                          (Garey–Graham; the paper's analysed algorithm)
``lsrc-lpt`` …            LSRC with a priority rule (lpt/spt/laf/widest)
``seq``                   sequential earliest-fit placement in list order
``fcfs``                  pure First Come First Served (no backfilling)
``backfill-cons``         conservative backfilling
``backfill-easy``         EASY backfilling
``backfill-aggressive``   alias of ``lsrc`` (the paper's observation)
``shelf-nf``/``shelf-ff`` shelf (strip-packing) heuristics
``batch-lsrc``            online batch-doubling wrapper around LSRC
``optimal``               exact branch-and-bound (small instances)
========================  ====================================================
"""

from .backfilling import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    conservative_backfill,
    easy_backfill,
)
from .base import (
    Scheduler,
    available_schedulers,
    get_scheduler,
    register,
    schedule_with,
)
from .fcfs import FCFSScheduler, fcfs_schedule
from .list_scheduling import (
    ListScheduler,
    SequentialPlacementScheduler,
    list_schedule,
)
from .local_search import LocalSearchScheduler, local_search_schedule
from .online import BatchDoublingScheduler, batch_doubling_schedule
from .preemptive import (
    PreemptivePiece,
    PreemptiveSchedule,
    preemptive_makespan,
    preemptive_schedule,
    price_of_nonpreemption,
)
from .optimal import (
    OptimalResult,
    OptimalScheduler,
    branch_and_bound,
    exhaustive_optimal,
    optimal_makespan_m1,
    optimal_schedule,
)
from .priority import RULES, explicit_order, get_rule, random_order
from .shelf import (
    FirstFitShelfScheduler,
    NextFitShelfScheduler,
    shelf_schedule,
)

__all__ = [
    "Scheduler",
    "register",
    "get_scheduler",
    "available_schedulers",
    "schedule_with",
    "ListScheduler",
    "SequentialPlacementScheduler",
    "list_schedule",
    "FCFSScheduler",
    "fcfs_schedule",
    "ConservativeBackfillScheduler",
    "EasyBackfillScheduler",
    "conservative_backfill",
    "easy_backfill",
    "NextFitShelfScheduler",
    "FirstFitShelfScheduler",
    "shelf_schedule",
    "BatchDoublingScheduler",
    "batch_doubling_schedule",
    "OptimalScheduler",
    "OptimalResult",
    "branch_and_bound",
    "exhaustive_optimal",
    "optimal_makespan_m1",
    "optimal_schedule",
    "RULES",
    "get_rule",
    "random_order",
    "explicit_order",
    "LocalSearchScheduler",
    "local_search_schedule",
    "PreemptiveSchedule",
    "PreemptivePiece",
    "preemptive_makespan",
    "preemptive_schedule",
    "price_of_nonpreemption",
]
