"""Exact solvers: branch-and-bound and reference brute force.

The problems are (strongly) NP-hard — Section 2.1 recalls NP-hardness of
RIGIDSCHEDULING and Theorem 1 shows RESASCHEDULING is not even
approximable — so exact solving is only for *small* instances.  We use
exact optima to certify the worst-case constructions of
:mod:`repro.theory` and to measure true approximation ratios in the
benchmarks.

Completeness argument
---------------------
The solver enumerates job *sequences* and places each job at its earliest
feasible start given its predecessors (the serial schedule-generation
scheme).  For a regular objective such as the makespan this is exact:
take any optimal schedule, order its jobs by start time and re-place them
in that order with earliest-fit — by induction every job lands at or
before its original start (earlier jobs only move earlier and, within any
later job's original window, the moved jobs occupy a subset of the
capacity they occupied originally), so the generated schedule's makespan
is ``<= C*max``.  The argument is untouched by reservations because they
are static capacity, which is why the same enumeration is exact for
RESASCHEDULING.

Two independent implementations cross-check each other in the tests:

* :func:`branch_and_bound` — depth-first search with dominance rules and
  an area/earliest-completion pruning bound;
* :func:`exhaustive_optimal` — literally all ``n!`` sequences (tiny ``n``
  only), sharing no search code with the former;
* :func:`optimal_makespan_m1` — an ``O(2^n n)`` bitmask DP exact for
  ``m = 1``, used to verify the 3-PARTITION reduction of Theorem 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.bounds import lower_bound
from ..core.instance import ReservationInstance, as_reservation_instance
from ..core.profile import ResourceProfile
from ..core.schedule import Schedule
from ..errors import SchedulingError, SearchBudgetExceeded
from .base import Scheduler, register


@dataclass
class OptimalResult:
    """Outcome of an exact search.

    Attributes
    ----------
    schedule:
        The best schedule found.
    makespan:
        Its makespan.
    nodes:
        Number of search nodes explored.
    proven_optimal:
        True when the search ran to completion (so ``makespan == C*max``).
    """

    schedule: Schedule
    makespan: object
    nodes: int
    proven_optimal: bool


def branch_and_bound(
    instance,
    node_limit: int = 2_000_000,
    upper_bound_hint=None,
    profile_backend=None,
) -> OptimalResult:
    """Exact branch-and-bound for (RESA)SCHEDULING makespan.

    Parameters
    ----------
    instance:
        Either instance flavour; job count should stay small (≈ 12).
    node_limit:
        Abort with :class:`~repro.errors.SearchBudgetExceeded` (carrying
        the incumbent) after this many nodes.
    upper_bound_hint:
        Optional known-feasible makespan used to seed pruning (for example
        an LSRC makespan); correctness does not depend on it.
    profile_backend:
        Availability-profile backend; ``None`` uses the module default.
    """
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        return OptimalResult(Schedule(inst, {}), 0, 0, True)

    jobs = sorted(inst.jobs, key=lambda j: (-(j.p * j.q), -j.p, str(j.id)))
    n = len(jobs)
    global_lb = lower_bound(inst)

    # Seed the incumbent with a greedy sequence so pruning bites early.
    profile0 = inst.availability_profile(profile_backend)
    greedy_starts: Dict = {}
    for job in jobs:
        s = profile0.earliest_fit(job.q, job.p, after=job.release)
        if s is None:
            raise SchedulingError(
                f"job {job.id!r} (q={job.q}) never fits; instance unschedulable"
            )
        profile0.reserve(s, job.p, job.q)
        greedy_starts[job.id] = s
    best_starts = dict(greedy_starts)
    best_cmax = max(greedy_starts[j.id] + j.p for j in jobs)
    if upper_bound_hint is not None and upper_bound_hint < best_cmax:
        # hint is only used to tighten pruning; the search still verifies it
        best_cmax = upper_bound_hint
        best_starts = None  # type: ignore[assignment]

    nodes = 0
    profile = inst.availability_profile(profile_backend)
    starts: Dict = {}

    def remaining_lb(remaining: List, cur_cmax) -> object:
        if not remaining:
            return cur_cmax
        rem_work = sum(j.p * j.q for j in remaining)
        t_area = profile.first_time_area_reaches(rem_work)
        bound = max(cur_cmax, t_area if t_area is not None else cur_cmax)
        # the longest remaining job must still fit somewhere
        longest = max(remaining, key=lambda j: j.p)
        s = profile.earliest_fit(longest.q, longest.p, after=longest.release)
        if s is not None:
            bound = max(bound, s + longest.p)
        return bound

    def dfs(remaining: List, cur_cmax) -> None:
        nonlocal nodes, best_cmax, best_starts
        nodes += 1
        if nodes > node_limit:
            raise SearchBudgetExceeded(
                f"branch-and-bound exceeded {node_limit} nodes",
                incumbent=(best_cmax, dict(best_starts) if best_starts else None),
            )
        if not remaining:
            if cur_cmax < best_cmax or (
                best_starts is None and cur_cmax <= best_cmax
            ):
                best_cmax = cur_cmax
                best_starts = dict(starts)
            return
        lb = remaining_lb(remaining, cur_cmax)
        if best_starts is not None:
            if lb >= best_cmax:
                return
        elif lb > best_cmax:
            # hint-seeded incumbent without a schedule yet: keep equality
            # branches alive so the hinted makespan can be realised.
            return
        seen_shapes = set()
        for idx, job in enumerate(remaining):
            shape = (job.p, job.q, job.release)
            if shape in seen_shapes:
                continue  # identical job: same subtree (dominance)
            seen_shapes.add(shape)
            s = profile.earliest_fit(job.q, job.p, after=job.release)
            if s is None:
                continue
            profile.reserve(s, job.p, job.q)
            starts[job.id] = s
            rest = remaining[:idx] + remaining[idx + 1 :]
            dfs(rest, max(cur_cmax, s + job.p))
            del starts[job.id]
            profile.add(s, job.p, job.q)
            if best_cmax <= global_lb and best_starts is not None:
                return  # provably optimal already

    dfs(jobs, 0)
    if best_starts is None:
        raise SchedulingError(
            "upper_bound_hint was below the optimal makespan; no schedule found"
        )
    schedule = Schedule(inst, best_starts, algorithm="optimal-bnb")
    return OptimalResult(schedule, best_cmax, nodes, True)


def exhaustive_optimal(instance, profile_backend=None) -> OptimalResult:
    """All-permutations reference solver (use only for ``n <= 7``).

    Shares no code with :func:`branch_and_bound`; the tests compare the
    two on random small instances.
    """
    inst = as_reservation_instance(instance)
    jobs = list(inst.jobs)
    if len(jobs) > 8:
        raise SchedulingError(
            f"exhaustive_optimal is factorial; {len(jobs)} jobs is too many"
        )
    best_cmax = None
    best_starts: Optional[Dict] = None
    count = 0
    for perm in itertools.permutations(jobs):
        count += 1
        profile = inst.availability_profile(profile_backend)
        starts: Dict = {}
        cmax = 0
        ok = True
        for job in perm:
            s = profile.earliest_fit(job.q, job.p, after=job.release)
            if s is None:
                ok = False
                break
            profile.reserve(s, job.p, job.q)
            starts[job.id] = s
            cmax = max(cmax, s + job.p)
        if ok and (best_cmax is None or cmax < best_cmax):
            best_cmax = cmax
            best_starts = starts
    if best_starts is None:
        if not jobs:
            return OptimalResult(Schedule(inst, {}), 0, 1, True)
        raise SchedulingError("no feasible schedule found")
    schedule = Schedule(inst, best_starts, algorithm="optimal-exhaustive")
    return OptimalResult(schedule, best_cmax, count, True)


def optimal_makespan_m1(instance, profile_backend=None):
    """Exact optimal makespan for single-machine instances via bitmask DP.

    ``dp[mask]`` is the earliest completion time of the job subset
    ``mask`` processed in some order around the reservation holes.  The
    exchange argument is immediate on one machine: finishing a prefix set
    earlier never hurts the next placement because
    :meth:`~repro.core.profile.ResourceProfile.earliest_fit` is monotone
    in its ``after`` argument.

    This is the verifier for the Theorem 1 reduction (Figure 1), where
    ``m = 1`` and the question is whether the makespan ``k(B+1) - 1`` is
    attainable.
    """
    inst = as_reservation_instance(instance)
    if inst.m != 1:
        raise SchedulingError("optimal_makespan_m1 requires m = 1")
    jobs = list(inst.jobs)
    n = len(jobs)
    if n == 0:
        return 0
    if n > 20:
        raise SchedulingError(f"bitmask DP over {n} jobs is too large")
    if any(job.release != 0 for job in jobs):
        raise SchedulingError("optimal_makespan_m1 assumes offline jobs")
    profile = inst.availability_profile(profile_backend)
    size = 1 << n
    dp = [None] * size
    dp[0] = 0
    for mask in range(size):
        cur = dp[mask]
        if cur is None:
            continue
        for j in range(n):
            bit = 1 << j
            if mask & bit:
                continue
            job = jobs[j]
            s = profile.earliest_fit(1, job.p, after=cur)
            if s is None:
                continue
            end = s + job.p
            nxt = mask | bit
            if dp[nxt] is None or end < dp[nxt]:
                dp[nxt] = end
    full = dp[size - 1]
    if full is None:
        raise SchedulingError("no feasible single-machine schedule exists")
    return full


def optimal_schedule(
    instance, node_limit: int = 2_000_000, profile_backend=None
) -> Schedule:
    """Convenience wrapper returning just the optimal schedule."""
    return branch_and_bound(
        instance, node_limit=node_limit, profile_backend=profile_backend
    ).schedule


class OptimalScheduler(Scheduler):
    """Registry adapter for the branch-and-bound solver."""

    name = "optimal"

    def __init__(self, node_limit: int = 2_000_000, profile_backend=None):
        self.node_limit = node_limit
        self.profile_backend = profile_backend

    def _run(self, instance: ReservationInstance) -> Schedule:
        return branch_and_bound(
            instance,
            node_limit=self.node_limit,
            profile_backend=self.profile_backend,
        ).schedule


register("optimal", OptimalScheduler)
