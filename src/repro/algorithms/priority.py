"""Priority rules: orderings of the job list fed to list scheduling.

The paper analyses *general* list scheduling — its guarantees hold for any
order of the list — and explicitly leaves "adding a priority based on
sorting the jobs by decreasing durations" as a perspective (Section 5).
This module provides the classical rules so that the ablation benchmark
can quantify how much the order matters in practice:

========  ==========================================================
rule      order
========  ==========================================================
fifo      submission order (instance order, ties by release)
lpt       Longest Processing Time first (decreasing ``p``)
spt       Shortest Processing Time first (increasing ``p``)
laf       Largest Area First (decreasing ``p * q``)
saf       Smallest Area First (increasing ``p * q``)
widest    decreasing processor requirement ``q``
narrowest increasing processor requirement ``q``
random    uniformly random permutation (seeded)
========  ==========================================================

Each rule is a callable ``rule(jobs) -> list[Job]`` returning a *new* list.
Ties are broken deterministically by the job-id string so results are
reproducible across runs and platforms.
"""

from __future__ import annotations

import random as _random
from typing import Callable, Dict, List, Sequence

from ..core.job import Job
from ..errors import SchedulingError

PriorityRule = Callable[[Sequence[Job]], List[Job]]


def _key_id(job: Job) -> str:
    return str(job.id)


def fifo(jobs: Sequence[Job]) -> List[Job]:
    """Submission order: by release time, then instance order (stable)."""
    return sorted(jobs, key=lambda j: j.release)


def lpt(jobs: Sequence[Job]) -> List[Job]:
    """Longest processing time first — the rule the paper's conclusion
    singles out as a promising refinement."""
    return sorted(jobs, key=lambda j: (-j.p, _key_id(j)))


def spt(jobs: Sequence[Job]) -> List[Job]:
    """Shortest processing time first."""
    return sorted(jobs, key=lambda j: (j.p, _key_id(j)))


def laf(jobs: Sequence[Job]) -> List[Job]:
    """Largest area (``p * q``) first."""
    return sorted(jobs, key=lambda j: (-(j.p * j.q), _key_id(j)))


def saf(jobs: Sequence[Job]) -> List[Job]:
    """Smallest area (``p * q``) first."""
    return sorted(jobs, key=lambda j: (j.p * j.q, _key_id(j)))


def widest(jobs: Sequence[Job]) -> List[Job]:
    """Most processors first; pairs well with backfilling narrow jobs."""
    return sorted(jobs, key=lambda j: (-j.q, _key_id(j)))


def narrowest(jobs: Sequence[Job]) -> List[Job]:
    """Fewest processors first."""
    return sorted(jobs, key=lambda j: (j.q, _key_id(j)))


def random_order(seed: int = 0) -> PriorityRule:
    """A seeded random permutation rule (each call of the returned rule
    reshuffles with the same seed, so it is deterministic per rule object)."""

    def rule(jobs: Sequence[Job]) -> List[Job]:
        rng = _random.Random(seed)
        out = list(jobs)
        rng.shuffle(out)
        return out

    rule.__name__ = f"random(seed={seed})"
    return rule


#: Name -> rule mapping used by the CLI-ish helpers and benchmarks.
RULES: Dict[str, PriorityRule] = {
    "fifo": fifo,
    "lpt": lpt,
    "spt": spt,
    "laf": laf,
    "saf": saf,
    "widest": widest,
    "narrowest": narrowest,
}


def get_rule(name: str) -> PriorityRule:
    """Look up a priority rule by name (``random`` accepts ``random:SEED``)."""
    if name in RULES:
        return RULES[name]
    if name.startswith("random"):
        _, _, seed = name.partition(":")
        return random_order(int(seed) if seed else 0)
    known = ", ".join(sorted(RULES) + ["random[:SEED]"])
    raise SchedulingError(f"unknown priority rule {name!r}; known: {known}")


def explicit_order(job_ids: Sequence) -> PriorityRule:
    """A rule that orders jobs by an explicit id sequence.

    Used by the theory module to reproduce the *exact* adversarial list
    order of Proposition 2 and the head-of-list placement in the proof of
    Proposition 1.  Jobs absent from ``job_ids`` go last, in id order.
    """
    rank = {jid: i for i, jid in enumerate(job_ids)}

    def rule(jobs: Sequence[Job]) -> List[Job]:
        return sorted(
            jobs, key=lambda j: (rank.get(j.id, len(rank)), _key_id(j))
        )

    rule.__name__ = f"explicit({len(rank)} ids)"
    return rule
