"""Scheduler interface and registry.

Every algorithm in this package is a :class:`Scheduler`: a named object
whose :meth:`Scheduler.schedule` maps an instance (either flavour) to a
verified-by-construction :class:`~repro.core.schedule.Schedule`.  A global
registry provides lookup by name, which the experiment harness and the
benchmarks use to iterate over algorithm sets.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, List, Optional

from ..core.instance import ReservationInstance, as_reservation_instance
from ..core.registry import Registry
from ..core.schedule import Schedule
from ..errors import SchedulingError


class Scheduler(abc.ABC):
    """Abstract base class for makespan schedulers.

    Subclasses implement :meth:`_run` on a
    :class:`~repro.core.instance.ReservationInstance`; the public
    :meth:`schedule` handles input coercion and tags the produced schedule
    with the algorithm name.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def schedule(self, instance) -> Schedule:
        """Produce a schedule for ``instance`` (rigid or with reservations)."""
        inst = as_reservation_instance(instance)
        schedule = self._run(inst)
        schedule.algorithm = self.name
        return schedule

    @abc.abstractmethod
    def _run(self, instance: ReservationInstance) -> Schedule:
        """Algorithm body; must return a feasible schedule."""

    def __call__(self, instance) -> Schedule:
        return self.schedule(instance)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


#: Global name -> factory registry (a shared :class:`~repro.core.registry.Registry`).
SCHEDULERS: Registry[Callable[[], Scheduler]] = Registry(
    "scheduler", error=SchedulingError
)


def register(
    name: str,
    factory: Callable[[], Scheduler],
    overwrite: Optional[bool] = None,
) -> None:
    """Register a scheduler factory under ``name``.

    ``overwrite=True`` replaces silently (so reloading modules in
    notebooks does not error); leaving it implicit warns on collision,
    and ``overwrite=False`` raises — accidental clashes used to be
    invisible.
    """
    SCHEDULERS.register(name, factory, overwrite=overwrite)


def get_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    Raises :class:`~repro.errors.SchedulingError` for unknown names, listing
    the available ones.
    """
    return SCHEDULERS.get(name)()


def available_schedulers() -> List[str]:
    """Sorted names of all registered schedulers."""
    return SCHEDULERS.names()


def schedule_with(names: Iterable[str], instance) -> Dict[str, Schedule]:
    """Run several registered schedulers on one instance."""
    return {name: get_scheduler(name).schedule(instance) for name in names}
