"""First Come First Served — the production baseline of Section 2.2.

Pure FCFS processes the submission queue in order: the job at the head
starts as soon as it fits, and **no later job may overtake it** (no
backfilling).  With parallel rigid jobs this wastes capacity: a wide job
at the head leaves processors idle that queued narrow jobs could use.

The paper recalls that FCFS has *no constant guarantee*: on an
``m``-processor machine there are instances with optimal makespan 1 whose
FCFS schedule has makespan ``m``
(:func:`repro.theory.adversarial.fcfs_worstcase_instance` builds the
family; ``benchmarks/bench_fcfs_worstcase.py`` measures it).

Formally, job ``j`` starts at the earliest time ``>= max(release_j,
sigma_{j-1})`` at which ``q_j`` processors are free for ``p_j`` time,
given jobs ``1..j-1`` and the reservations — i.e. start times are
non-decreasing along the queue.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.instance import ReservationInstance
from ..core.schedule import Schedule
from ..errors import SchedulingError
from .base import Scheduler, register
from .priority import PriorityRule, get_rule


class FCFSScheduler(Scheduler):
    """Pure FCFS (no backfilling) over the submission order.

    Parameters
    ----------
    priority:
        Optional re-ordering of the queue before the FCFS pass (by default
        the instance order / release order, which is what "first come"
        means).  Exposed so experiments can study e.g. FCFS-LPT.
    profile_backend:
        Availability-profile backend (``"list"``/``"tree"``/class); ``None``
        uses the :mod:`repro.core.profiles` default.
    """

    def __init__(
        self,
        priority: Optional[PriorityRule | str] = None,
        profile_backend=None,
    ):
        if isinstance(priority, str):
            self._priority = get_rule(priority)
            self.name = f"fcfs[{priority}]"
        else:
            self._priority = priority
            self.name = "fcfs" if priority is None else "fcfs[custom]"
        self.profile_backend = profile_backend

    def _run(self, instance: ReservationInstance) -> Schedule:
        jobs = (
            self._priority(instance.jobs)
            if self._priority is not None
            else sorted(instance.jobs, key=lambda j: j.release)
        )
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        gate = 0  # start of the previous job: FCFS forbids overtaking
        for job in jobs:
            floor = max(gate, job.release)
            s = profile.earliest_fit(job.q, job.p, after=floor)
            if s is None:
                raise SchedulingError(
                    f"job {job.id!r} (q={job.q}) never fits in the profile"
                )
            profile.reserve(s, job.p, job.q)
            starts[job.id] = s
            gate = s
        return Schedule(instance, starts)


def fcfs_schedule(instance, priority=None, profile_backend=None) -> Schedule:
    """Convenience wrapper: run pure FCFS on ``instance``."""
    return FCFSScheduler(priority, profile_backend=profile_backend).schedule(
        instance
    )


register("fcfs", FCFSScheduler)
