"""Backfilling policies: conservative and EASY (Section 2.2).

Production batch schedulers temper FCFS's resource waste with
*backfilling*: letting a job jump the queue when doing so provably (or
probably) harms nobody.  The paper discusses the spectrum:

* **conservative backfilling** — every job is placed at the earliest time
  that does not delay *any previously scheduled* job.  Offline this is a
  single pass over the queue placing each job with
  :meth:`~repro.core.profile.ResourceProfile.earliest_fit`;
* **EASY backfilling** — only the queue *head* gets a guaranteed
  reservation; any other ready job may start now if it does not push the
  head's reserved start back;
* **aggressive backfilling** — any job may start whenever it fits; the
  paper notes this "is exactly the same as the initial definition of List
  Scheduling ... of Garey and Graham", i.e.
  :class:`~repro.algorithms.list_scheduling.ListScheduler` (registered
  here under the alias ``backfill-aggressive``).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from ..core.instance import ReservationInstance
from ..core.schedule import Schedule
from ..core.timebase import check_timebase_policy, int_sweep_profile, timebase_for
from ..errors import SchedulingError
from .base import Scheduler, register
from .list_scheduling import ListScheduler, sequential_placement
from .priority import PriorityRule, get_rule


class ConservativeBackfillScheduler(Scheduler):
    """Conservative backfilling: earliest-fit placement in queue order.

    Every job receives a firm start-time reservation when it is considered;
    later jobs may slide into earlier holes but can never displace an
    existing reservation — the paper's example of the non-aggressive
    variant ("task y could not have been scheduled earlier, even if x was
    not present").
    """

    def __init__(
        self,
        priority: Optional[PriorityRule | str] = None,
        profile_backend=None,
        timebase: str = "auto",
    ):
        if isinstance(priority, str):
            self._priority = get_rule(priority)
            self.name = f"backfill-cons[{priority}]"
        else:
            self._priority = priority
            self.name = "backfill-cons" if priority is None else "backfill-cons[custom]"
        self.profile_backend = profile_backend
        self.timebase = check_timebase_policy(timebase)

    def _run(self, instance: ReservationInstance) -> Schedule:
        jobs = (
            self._priority(instance.jobs)
            if self._priority is not None
            else sorted(instance.jobs, key=lambda j: j.release)
        )
        tb = timebase_for(instance, self.timebase)
        if tb is not None:
            grid_starts = sequential_placement(
                [(tb.scale_time(j.release), tb.scale_time(j.p), j.q, j.id)
                 for j in jobs],
                int_sweep_profile(instance, tb),
            )
            return Schedule(instance, tb.denormalize_starts(grid_starts))
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        for job in jobs:
            s = profile.earliest_fit(job.q, job.p, after=job.release)
            if s is None:
                raise SchedulingError(
                    f"job {job.id!r} (q={job.q}) never fits in the profile"
                )
            profile.reserve(s, job.p, job.q)
            starts[job.id] = s
        return Schedule(instance, starts)


class EasyBackfillScheduler(Scheduler):
    """EASY (aggressive-head) backfilling.

    Event-driven: at every decision point, (1) start queue heads while they
    fit, (2) compute the head's earliest start and pencil it in as a
    *shadow* reservation, (3) start any later ready job that fits now
    against the shadow, (4) erase the shadow.  The head is therefore never
    delayed by a backfilled job, but non-head jobs enjoy no such guarantee
    (the starvation trade-off discussed in Section 2.2).
    """

    name = "backfill-easy"

    def __init__(self, profile_backend=None, timebase: str = "auto"):
        self.profile_backend = profile_backend
        self.timebase = check_timebase_policy(timebase)

    def _run(self, instance: ReservationInstance) -> Schedule:
        # EASY's shadow-probing loop has no specialised integer core, so
        # the fast path is the generic one: run this same sweep on the
        # integer twin (machine-int arithmetic) and denormalise.
        tb = timebase_for(instance, self.timebase)
        if tb is not None:
            twin = tb.normalize_instance(instance)
            if twin is not instance:
                placed = self._sweep(twin)
                return Schedule(
                    instance, tb.denormalize_starts(placed.starts)
                )
        return self._sweep(instance)

    def _sweep(self, instance: ReservationInstance) -> Schedule:
        jobs = sorted(instance.jobs, key=lambda j: j.release)
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        pending: List = list(jobs)

        events: List = [0]
        events.extend(job.release for job in jobs if job.release > 0)
        events.extend(t for t in profile.breakpoints if t > 0)
        heapq.heapify(events)

        last_time = None
        guard = 0
        max_iterations = 4 * (len(jobs) + len(events) + 4) * (len(jobs) + 1)
        while pending:
            guard += 1
            if guard > max_iterations or not events:
                raise SchedulingError(
                    f"EASY backfilling failed to place {len(pending)} job(s)"
                )
            t = heapq.heappop(events)
            if last_time is not None and t == last_time:
                continue
            last_time = t

            # Phase 1: start ready queue heads while they fit right now.
            while pending:
                head = next((j for j in pending if j.release <= t), None)
                if head is None or not profile.fits(head.q, t, head.p):
                    break
                profile.reserve(t, head.p, head.q)
                starts[head.id] = t
                heapq.heappush(events, t + head.p)
                pending.remove(head)
            if not pending:
                break

            # Phase 2: shadow-reserve the head, then backfill around it.
            head = next((j for j in pending if j.release <= t), None)
            if head is None:
                continue  # nothing released yet; wait for a release event
            s_head = profile.earliest_fit(
                head.q, head.p, after=max(t, head.release)
            )
            if s_head is None:
                raise SchedulingError(
                    f"job {head.id!r} (q={head.q}) never fits in the profile"
                )
            profile.reserve(s_head, head.p, head.q)
            backfilled: List = []
            for job in pending:
                if job is head or job.release > t:
                    continue
                if profile.fits(job.q, t, job.p):
                    profile.reserve(t, job.p, job.q)
                    starts[job.id] = t
                    heapq.heappush(events, t + job.p)
                    backfilled.append(job)
            profile.add(s_head, head.p, head.q)
            for job in backfilled:
                pending.remove(job)
        return Schedule(instance, starts)


def conservative_backfill(
    instance, priority=None, profile_backend=None, timebase: str = "auto"
) -> Schedule:
    """Convenience wrapper: conservative backfilling."""
    return ConservativeBackfillScheduler(
        priority, profile_backend=profile_backend, timebase=timebase
    ).schedule(instance)


def easy_backfill(instance, profile_backend=None, timebase: str = "auto") -> Schedule:
    """Convenience wrapper: EASY backfilling."""
    return EasyBackfillScheduler(
        profile_backend=profile_backend, timebase=timebase
    ).schedule(instance)


register("backfill-cons", ConservativeBackfillScheduler)
register("backfill-easy", EasyBackfillScheduler)
# The paper, Section 2.2: the most aggressive backfilling *is* LSRC.
register("backfill-aggressive", ListScheduler)
