"""LSRC — list scheduling with resource constraints (Garey & Graham).

The paper's central algorithm (Section 2.2): keep the jobs in a list;
whenever processors free up, scan the list and start every job that can
run *now*.  With parallel rigid jobs this is exactly the most aggressive
variant of backfilling, and it is the only policy analysed in the paper
because it is the one with worst-case guarantees:

* no reservations: ``Cmax <= (2 - 1/m) C*max``  (Theorem 2, appendix);
* non-increasing reservations: ``Cmax <= (2 - 1/m(C*max)) C*max``
  (Proposition 1);
* α-restricted reservations: ``Cmax <= (2/α) C*max``  (Proposition 3).

Semantics in the presence of reservations
-----------------------------------------
A job "fits now" at time ``t`` when the availability profile (machine
minus reservations minus already-started jobs) stays at or above ``q_i``
throughout ``[t, t + p_i)``: jobs are not preemptible, so starting a job
that would collide with a future reservation is forbidden, not merely
undesirable.  This is the semantics under which the paper's Proposition 2
adversarial family produces its ``2/α - 1 + α/2`` ratio, which our
benchmark reproduces exactly.

The greedy property that drives all the proofs (Lemma 1) holds by
construction: if a job is not running at time ``t`` although it is ready,
then it did not fit at ``t`` against the jobs and reservations present.

Implementation
--------------
Event-driven sweep.  Decision points are: time 0, every distinct release
time, every availability-profile breakpoint, and every job completion.
Capacity between consecutive decision points is constant and the feasible
window of any job only ever *opens* at such a point, so scanning the list
once per decision point (in list order, with the profile updated as jobs
start) implements LSRC exactly.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from ..core.instance import ReservationInstance
from ..core.schedule import Schedule
from ..errors import SchedulingError
from .base import Scheduler, register
from .priority import PriorityRule, explicit_order, get_rule


class ListScheduler(Scheduler):
    """LSRC with a configurable list order.

    Parameters
    ----------
    priority:
        ``None`` (keep instance order), a rule name from
        :mod:`repro.algorithms.priority` (for example ``"lpt"``), or a
        callable ``jobs -> ordered jobs``.
    profile_backend:
        Availability-profile backend (``"list"``/``"tree"``/class); ``None``
        uses the :mod:`repro.core.profiles` default.
    """

    def __init__(
        self,
        priority: Optional[PriorityRule | str] = None,
        profile_backend=None,
    ):
        if isinstance(priority, str):
            self._rule_label = priority
            self._priority = get_rule(priority)
        elif priority is None:
            self._rule_label = "list"
            self._priority = None
        else:
            self._rule_label = getattr(priority, "__name__", "custom")
            self._priority = priority
        self.name = (
            "lsrc" if self._priority is None else f"lsrc[{self._rule_label}]"
        )
        self.profile_backend = profile_backend

    def _run(self, instance: ReservationInstance) -> Schedule:
        jobs = (
            self._priority(instance.jobs)
            if self._priority is not None
            else list(instance.jobs)
        )
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        pending: List = list(jobs)

        # Initial decision points: time 0, releases, profile breakpoints.
        events: List = [0]
        events.extend(job.release for job in jobs if job.release > 0)
        events.extend(t for t in profile.breakpoints if t > 0)
        heapq.heapify(events)

        last_time = None
        guard = 0
        max_iterations = 4 * (len(jobs) + len(events) + 4) * (len(jobs) + 1)
        while pending:
            guard += 1
            if guard > max_iterations or not events:
                raise SchedulingError(
                    f"LSRC failed to place {len(pending)} job(s); "
                    "the instance admits no feasible placement for them "
                    "(a job wider than the machine's eventual capacity?)"
                )
            t = heapq.heappop(events)
            if last_time is not None and t == last_time:
                continue  # duplicate decision point
            last_time = t
            # Single in-order pass: starting a job only removes capacity,
            # so no earlier-listed job can become startable within the pass.
            still_pending: List = []
            cap_now = profile.capacity_at(t)
            for job in pending:
                if job.release <= t and job.q <= cap_now and profile.fits(
                    job.q, t, job.p
                ):
                    profile.reserve(t, job.p, job.q)
                    starts[job.id] = t
                    cap_now = profile.capacity_at(t)
                    heapq.heappush(events, t + job.p)
                else:
                    still_pending.append(job)
            pending = still_pending
        return Schedule(instance, starts)


class SequentialPlacementScheduler(Scheduler):
    """Place jobs one at a time at their earliest feasible start, in list
    order, never revisiting earlier placements.

    This is *conservative backfilling's* placement engine exposed as a
    standalone scheduler (the proof device used throughout the paper's
    Section 4 transformations; also the serial schedule-generation scheme
    of the exact solver).  Unlike LSRC it can leave a hole that a
    later-listed job could have filled at an earlier time.
    """

    def __init__(
        self,
        priority: Optional[PriorityRule | str] = None,
        profile_backend=None,
    ):
        if isinstance(priority, str):
            self._rule_label = priority
            self._priority = get_rule(priority)
        elif priority is None:
            self._rule_label = "list"
            self._priority = None
        else:
            self._rule_label = getattr(priority, "__name__", "custom")
            self._priority = priority
        self.name = (
            "seq" if self._priority is None else f"seq[{self._rule_label}]"
        )
        self.profile_backend = profile_backend

    def _run(self, instance: ReservationInstance) -> Schedule:
        jobs = (
            self._priority(instance.jobs)
            if self._priority is not None
            else list(instance.jobs)
        )
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        for job in jobs:
            s = profile.earliest_fit(job.q, job.p, after=job.release)
            if s is None:
                raise SchedulingError(
                    f"job {job.id!r} (q={job.q}) never fits in the profile"
                )
            profile.reserve(s, job.p, job.q)
            starts[job.id] = s
        return Schedule(instance, starts)


def list_schedule(
    instance,
    priority: Optional[PriorityRule | str] = None,
    order: Optional[Sequence] = None,
    profile_backend=None,
) -> Schedule:
    """Run LSRC on ``instance``.

    ``priority`` selects a rule (see :mod:`repro.algorithms.priority`);
    ``order`` instead pins an explicit job-id order (used to reproduce the
    paper's adversarial list orders).  The two are mutually exclusive.
    """
    if order is not None:
        if priority is not None:
            raise SchedulingError("pass either priority or order, not both")
        priority = explicit_order(order)
    return ListScheduler(priority, profile_backend=profile_backend).schedule(
        instance
    )


register("lsrc", ListScheduler)
register("lsrc-lpt", lambda: ListScheduler("lpt"))
register("lsrc-spt", lambda: ListScheduler("spt"))
register("lsrc-laf", lambda: ListScheduler("laf"))
register("lsrc-widest", lambda: ListScheduler("widest"))
register("seq", SequentialPlacementScheduler)
