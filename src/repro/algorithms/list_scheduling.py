"""LSRC — list scheduling with resource constraints (Garey & Graham).

The paper's central algorithm (Section 2.2): keep the jobs in a list;
whenever processors free up, scan the list and start every job that can
run *now*.  With parallel rigid jobs this is exactly the most aggressive
variant of backfilling, and it is the only policy analysed in the paper
because it is the one with worst-case guarantees:

* no reservations: ``Cmax <= (2 - 1/m) C*max``  (Theorem 2, appendix);
* non-increasing reservations: ``Cmax <= (2 - 1/m(C*max)) C*max``
  (Proposition 1);
* α-restricted reservations: ``Cmax <= (2/α) C*max``  (Proposition 3).

Semantics in the presence of reservations
-----------------------------------------
A job "fits now" at time ``t`` when the availability profile (machine
minus reservations minus already-started jobs) stays at or above ``q_i``
throughout ``[t, t + p_i)``: jobs are not preemptible, so starting a job
that would collide with a future reservation is forbidden, not merely
undesirable.  This is the semantics under which the paper's Proposition 2
adversarial family produces its ``2/α - 1 + α/2`` ratio, which our
benchmark reproduces exactly.

The greedy property that drives all the proofs (Lemma 1) holds by
construction: if a job is not running at time ``t`` although it is ready,
then it did not fit at ``t`` against the jobs and reservations present.

Implementation
--------------
Two interchangeable engines compute the *same* schedule:

* the **exact reference sweep** (``timebase="exact"``): decision points
  are time 0, every distinct release time, every availability-profile
  breakpoint, and every job completion.  Capacity between consecutive
  decision points is constant and the feasible window of any job only
  ever *opens* at such a point, so scanning the list once per decision
  point (in list order, with the profile updated as jobs start)
  implements LSRC exactly.  Runs on any profile backend and any exact
  time type — the transparent implementation the theory modules cite.

* the **incremental integer sweep** (``timebase="auto"``/``"int"``, via
  :mod:`repro.core.timebase`): times are normalised onto the instance's
  integer grid and the sweep becomes *incremental* —

  - pending jobs live in a due-heap keyed by a cached lower bound on
    their earliest feasible start (an ``earliest_fit`` miss is
    remembered: the profile only ever loses capacity as jobs start, so
    the bound never needs invalidating and the job is not reconsidered
    before it);
  - released pending jobs are bucketed by ``q_i``, and a whole decision
    point is skipped with one ``max_capacity_between`` query when even
    the narrowest pending job cannot fit before the next event;
  - profile breakpoints are *not* decision points at all: the cached
    ``earliest_fit`` wake-ups subsume them (an exchange argument in
    ``tests/test_timebase.py`` checks the schedules stay identical);
  - the profile is an
    :class:`~repro.core.timebase.IntSweepProfile` whose history is
    pruned behind the sweep front.

  Per placed job the incremental sweep does O(1) profile operations on
  the *active* window instead of rescanning the entire pending list at
  every one of O(n + breakpoints) decision points.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from ..core.instance import ReservationInstance
from ..core.schedule import Schedule
from ..core.timebase import (
    IntSweepProfile,
    check_timebase_policy,
    int_sweep_profile,
    timebase_for,
)
from ..errors import SchedulingError
from .base import Scheduler, register
from .priority import PriorityRule, explicit_order, get_rule


def incremental_sweep(job_rows: List, profile: IntSweepProfile) -> Dict:
    """LSRC by incremental sweep on an integer-grid profile.

    ``job_rows`` is the priority-ordered list ``[(release, p, q, id)]``
    (all times on the grid).  Returns ``{id: start}``.

    Equivalence with the reference sweep rests on monotonicity: placed
    jobs only *remove* capacity, so an ``earliest_fit`` computed against
    any earlier profile state lower-bounds the job's true earliest start
    forever — a job cached as "not before ``s``" need not be looked at
    again until time ``s``, and its wake-up chain (recompute on each
    miss) provably terminates exactly at the reference start time.
    """
    n = len(job_rows)
    starts: Dict = {}
    if n == 0:
        return starts
    # Arrival order (stable on release ties = list order); the due-heap
    # holds released-but-unplaced jobs keyed by their cached bound.
    arrivals = sorted(range(n), key=lambda i: (job_rows[i][0], i))
    ai = 0
    due: List = []  # (cached earliest-possible start, list index)
    bucket_count: Dict[int, int] = {}  # q -> released pending jobs
    events: List = sorted({0, *(row[0] for row in job_rows)})
    placed = 0
    guard = 0
    max_iterations = 4 * (2 * n + 4) * (n + 1)
    while placed < n:
        guard += 1
        if guard > max_iterations or not events:
            raise SchedulingError(
                f"LSRC failed to place {n - placed} job(s); "
                "the instance admits no feasible placement for them "
                "(a job wider than the machine's eventual capacity?)"
            )
        t = heapq.heappop(events)
        while events and events[0] == t:  # collapse duplicate events
            heapq.heappop(events)
        while ai < n and job_rows[arrivals[ai]][0] <= t:
            i = arrivals[ai]
            ai += 1
            q = job_rows[i][2]
            bucket_count[q] = bucket_count.get(q, 0) + 1
            heapq.heappush(due, (job_rows[i][0], i))
        if not due or due[0][0] > t:
            continue  # nothing can possibly start before its cached bound
        # Skip the scan entirely when no pending width fits before the
        # next decision point (one windowed query instead of a rescan).
        if events and profile.max_capacity_between(t, events[0]) < min(
            bucket_count
        ):
            continue
        candidates: List[int] = []
        while due and due[0][0] <= t:
            candidates.append(heapq.heappop(due)[1])
        candidates.sort()  # scan in list order — LSRC's defining rule
        cap_now = profile.capacity_at(t)
        for i in candidates:
            _release, p, q, jid = job_rows[i]
            if q <= cap_now and profile.fits(q, t, p):
                profile.reserve(t, p, q)
                starts[jid] = t
                placed += 1
                cap_now = profile.capacity_at(t)
                heapq.heappush(events, t + p)
                remaining = bucket_count[q] - 1
                if remaining:
                    bucket_count[q] = remaining
                else:
                    del bucket_count[q]
            else:
                s = profile.earliest_fit(q, p, after=t)
                if s is None:
                    raise SchedulingError(
                        f"job {jid!r} (q={q}) never fits in the profile"
                    )
                heapq.heappush(due, (s, i))
                heapq.heappush(events, s)
        profile.prune_before(t)
    return starts


class ListScheduler(Scheduler):
    """LSRC with a configurable list order.

    Parameters
    ----------
    priority:
        ``None`` (keep instance order), a rule name from
        :mod:`repro.algorithms.priority` (for example ``"lpt"``), or a
        callable ``jobs -> ordered jobs``.
    profile_backend:
        Availability-profile backend (``"list"``/``"tree"``/class); ``None``
        uses the :mod:`repro.core.profiles` default.  Only the exact
        reference sweep consults it — the integer fast path runs on its
        own sweep structure.
    timebase:
        ``"auto"`` (default) runs the incremental integer sweep whenever
        the instance's times normalise exactly (ints/Fractions) and the
        exact reference sweep otherwise; ``"int"`` additionally forces
        float-timed instances onto the grid; ``"exact"`` always runs the
        reference sweep.
    """

    def __init__(
        self,
        priority: Optional[PriorityRule | str] = None,
        profile_backend=None,
        timebase: str = "auto",
    ):
        if isinstance(priority, str):
            self._rule_label = priority
            self._priority = get_rule(priority)
        elif priority is None:
            self._rule_label = "list"
            self._priority = None
        else:
            self._rule_label = getattr(priority, "__name__", "custom")
            self._priority = priority
        self.name = (
            "lsrc" if self._priority is None else f"lsrc[{self._rule_label}]"
        )
        self.profile_backend = profile_backend
        self.timebase = check_timebase_policy(timebase)

    def _run(self, instance: ReservationInstance) -> Schedule:
        jobs = (
            self._priority(instance.jobs)
            if self._priority is not None
            else list(instance.jobs)
        )
        tb = timebase_for(instance, self.timebase)
        if tb is not None:
            scale = tb.scale_time
            rows = [(scale(j.release), scale(j.p), j.q, j.id) for j in jobs]
            grid_starts = incremental_sweep(rows, int_sweep_profile(instance, tb))
            return Schedule(instance, tb.denormalize_starts(grid_starts))
        return self._run_exact(instance, jobs)

    def _run_exact(self, instance: ReservationInstance, jobs: List) -> Schedule:
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        pending: List = list(jobs)

        # Initial decision points: time 0, releases, profile breakpoints.
        events: List = [0]
        events.extend(job.release for job in jobs if job.release > 0)
        events.extend(t for t in profile.breakpoints if t > 0)
        heapq.heapify(events)

        last_time = None
        guard = 0
        max_iterations = 4 * (len(jobs) + len(events) + 4) * (len(jobs) + 1)
        while pending:
            guard += 1
            if guard > max_iterations or not events:
                raise SchedulingError(
                    f"LSRC failed to place {len(pending)} job(s); "
                    "the instance admits no feasible placement for them "
                    "(a job wider than the machine's eventual capacity?)"
                )
            t = heapq.heappop(events)
            if last_time is not None and t == last_time:
                continue  # duplicate decision point
            last_time = t
            # Single in-order pass: starting a job only removes capacity,
            # so no earlier-listed job can become startable within the pass.
            still_pending: List = []
            cap_now = profile.capacity_at(t)
            for job in pending:
                if job.release <= t and job.q <= cap_now and profile.fits(
                    job.q, t, job.p
                ):
                    profile.reserve(t, job.p, job.q)
                    starts[job.id] = t
                    cap_now = profile.capacity_at(t)
                    heapq.heappush(events, t + job.p)
                else:
                    still_pending.append(job)
            pending = still_pending
        return Schedule(instance, starts)


class SequentialPlacementScheduler(Scheduler):
    """Place jobs one at a time at their earliest feasible start, in list
    order, never revisiting earlier placements.

    This is *conservative backfilling's* placement engine exposed as a
    standalone scheduler (the proof device used throughout the paper's
    Section 4 transformations; also the serial schedule-generation scheme
    of the exact solver).  Unlike LSRC it can leave a hole that a
    later-listed job could have filled at an earlier time.
    """

    def __init__(
        self,
        priority: Optional[PriorityRule | str] = None,
        profile_backend=None,
        timebase: str = "auto",
    ):
        if isinstance(priority, str):
            self._rule_label = priority
            self._priority = get_rule(priority)
        elif priority is None:
            self._rule_label = "list"
            self._priority = None
        else:
            self._rule_label = getattr(priority, "__name__", "custom")
            self._priority = priority
        self.name = (
            "seq" if self._priority is None else f"seq[{self._rule_label}]"
        )
        self.profile_backend = profile_backend
        self.timebase = check_timebase_policy(timebase)

    def _run(self, instance: ReservationInstance) -> Schedule:
        jobs = (
            self._priority(instance.jobs)
            if self._priority is not None
            else list(instance.jobs)
        )
        tb = timebase_for(instance, self.timebase)
        if tb is not None:
            grid_starts = sequential_placement(
                [(tb.scale_time(j.release), tb.scale_time(j.p), j.q, j.id)
                 for j in jobs],
                int_sweep_profile(instance, tb),
            )
            return Schedule(instance, tb.denormalize_starts(grid_starts))
        profile = instance.availability_profile(self.profile_backend)
        starts: Dict = {}
        for job in jobs:
            s = profile.earliest_fit(job.q, job.p, after=job.release)
            if s is None:
                raise SchedulingError(
                    f"job {job.id!r} (q={job.q}) never fits in the profile"
                )
            profile.reserve(s, job.p, job.q)
            starts[job.id] = s
        return Schedule(instance, starts)


def sequential_placement(job_rows: List, profile: IntSweepProfile) -> Dict:
    """Earliest-fit placement in list order on an integer-grid profile —
    conservative backfilling's engine (``job_rows`` as in
    :func:`incremental_sweep`).  Returns ``{id: start}``."""
    starts: Dict = {}
    for release, p, q, jid in job_rows:
        s = profile.earliest_fit(q, p, after=release)
        if s is None:
            raise SchedulingError(
                f"job {jid!r} (q={q}) never fits in the profile"
            )
        profile.reserve(s, p, q)
        starts[jid] = s
    return starts


def list_schedule(
    instance,
    priority: Optional[PriorityRule | str] = None,
    order: Optional[Sequence] = None,
    profile_backend=None,
    timebase: str = "auto",
) -> Schedule:
    """Run LSRC on ``instance``.

    ``priority`` selects a rule (see :mod:`repro.algorithms.priority`);
    ``order`` instead pins an explicit job-id order (used to reproduce the
    paper's adversarial list orders).  The two are mutually exclusive.
    """
    if order is not None:
        if priority is not None:
            raise SchedulingError("pass either priority or order, not both")
        priority = explicit_order(order)
    return ListScheduler(
        priority, profile_backend=profile_backend, timebase=timebase
    ).schedule(instance)


register("lsrc", ListScheduler)
register("lsrc-lpt", lambda: ListScheduler("lpt"))
register("lsrc-spt", lambda: ListScheduler("spt"))
register("lsrc-laf", lambda: ListScheduler("laf"))
register("lsrc-widest", lambda: ListScheduler("widest"))
register("seq", SequentialPlacementScheduler)
