"""One-call re-verification of every claim in the paper.

:func:`verify_paper_claims` runs the complete battery — Theorem 1's
reduction, Proposition 1's transformation, Proposition 2's family,
Proposition 3's envelope, Theorem 2 and Lemma 1 — each with fresh
(seeded) randomness where applicable, and returns a structured report.
``examples/verify_paper.py`` prints it; the test suite asserts every
claim passes; CI-style usage is a single function call:

    from repro.analysis import verify_paper_claims
    report = verify_paper_claims(seed=0)
    assert report.all_passed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List

from ..algorithms import ListScheduler, branch_and_bound, list_schedule
from ..algorithms.optimal import exhaustive_optimal, optimal_makespan_m1
from ..core import ReservationInstance
from ..errors import ReproError


@dataclass
class ClaimResult:
    """Outcome of re-checking one claim."""

    claim: str
    passed: bool
    detail: str


@dataclass
class PaperReport:
    """All claim results of one verification run."""

    results: List[ClaimResult] = field(default_factory=list)
    seed: int = 0

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    def as_rows(self) -> List[Dict]:
        return [
            {"claim": r.claim, "passed": r.passed, "detail": r.detail}
            for r in self.results
        ]


def _claim(report: PaperReport, name: str, fn: Callable[[], str]) -> None:
    try:
        detail = fn()
        report.results.append(ClaimResult(name, True, detail))
    except (AssertionError, ReproError) as exc:
        report.results.append(ClaimResult(name, False, str(exc)))


def verify_paper_claims(seed: int = 0, thorough: bool = False) -> PaperReport:
    """Re-run every paper claim; ``thorough`` enlarges the random batteries."""
    report = PaperReport(seed=seed)
    trials = 8 if thorough else 4

    # ---- Theorem 1 / Figure 1 ------------------------------------------
    def thm1() -> str:
        from ..theory import (
            blocked_horizon,
            random_no_3partition,
            random_yes_3partition,
            reduction_yes_makespan,
            three_partition_reduction,
        )

        yes_vals, B = random_yes_3partition(2, 40, seed=seed)
        no_vals, _ = random_no_3partition(2, 40, seed=seed + 1)
        target = reduction_yes_makespan(2, B)
        yes_c = optimal_makespan_m1(three_partition_reduction(yes_vals, B, rho=2))
        no_c = optimal_makespan_m1(three_partition_reduction(no_vals, B, rho=2))
        assert yes_c == target, f"yes-instance missed target: {yes_c} != {target}"
        assert no_c > blocked_horizon(2, B, 2), "no-instance not pushed past blocker"
        return f"yes hits {target}; no overflows to {no_c}"

    _claim(report, "Theorem 1 (3-PARTITION reduction)", thm1)

    # ---- Proposition 1 / Figure 2 --------------------------------------
    def prop1() -> str:
        from ..theory import proposition1_certify
        from ..workloads import nonincreasing_staircase, uniform_instance

        checked = 0
        for s in range(trials):
            jobs = uniform_instance(
                5, 8, p_range=(1, 5), q_range=(1, 4), seed=seed + s
            ).jobs
            stairs = nonincreasing_staircase(8, 2, horizon=10, seed=seed + s)
            inst = ReservationInstance(m=8, jobs=jobs, reservations=stairs)
            cstar = branch_and_bound(inst).makespan
            cert = proposition1_certify(inst, cstar)
            assert cert.holds, f"Proposition 1 failed at seed {seed + s}"
            checked += 1
        return f"bound + I'=I'' identity on {checked} staircase instances"

    _claim(report, "Proposition 1 (non-increasing reservations)", prop1)

    # ---- Proposition 2 / Figure 3 --------------------------------------
    def prop2() -> str:
        from ..theory import lower_bound_integer_case, proposition2_instance

        for k in (3, 6):
            fam = proposition2_instance(k)
            opt = fam.optimal_schedule()
            opt.verify()
            bad = list_schedule(fam.instance, order=fam.bad_order)
            bad.verify()
            assert opt.makespan == k
            assert bad.makespan == 1 + k * (k - 1)
            assert Fraction(bad.makespan, opt.makespan) == (
                lower_bound_integer_case(Fraction(2, k))
            )
        return "exact ratios 7/3 (k=3) and 31/6 (k=6, Figure 3)"

    _claim(report, "Proposition 2 (lower-bound family)", prop2)

    # ---- Proposition 3 --------------------------------------------------
    def prop3() -> str:
        from ..theory import upper_bound
        from ..workloads import (
            alpha_constrained_instance,
            random_alpha_reservations,
        )

        alpha = Fraction(1, 2)
        for s in range(trials):
            jobs = alpha_constrained_instance(
                5, 8, alpha, p_range=(1, 6), seed=seed + s
            ).jobs
            res = random_alpha_reservations(
                8, alpha, horizon=30, count=3, seed=seed + s + 50
            )
            inst = ReservationInstance(m=8, jobs=jobs, reservations=res)
            inst.validate_alpha(alpha)
            lsrc = ListScheduler().schedule(inst)
            opt = branch_and_bound(inst).makespan
            assert lsrc.makespan <= upper_bound(alpha) * opt + 1e-9
        return f"LSRC <= (2/alpha) C* on {trials} alpha=1/2 instances"

    _claim(report, "Proposition 3 (2/alpha upper bound)", prop3)

    # ---- Theorem 2 + Lemma 1 --------------------------------------------
    def thm2() -> str:
        from ..theory import graham_ratio, lemma1_violations
        from ..workloads import uniform_instance

        for s in range(trials):
            inst = uniform_instance(5, 4, p_range=(1, 6), seed=seed + s)
            sched = ListScheduler().schedule(inst)
            assert lemma1_violations(sched) == [], "Lemma 1 violated"
            cstar = exhaustive_optimal(inst).makespan
            assert sched.makespan <= graham_ratio(4) * cstar + 1e-9
        return f"2 - 1/m bound + Lemma 1 on {trials} instances"

    _claim(report, "Theorem 2 + Lemma 1 (Graham bound)", thm2)

    # ---- Figure 4 ordering ------------------------------------------------
    def fig4() -> str:
        from ..theory import lower_bound_b1, lower_bound_b2, upper_bound

        for i in range(5, 101, 5):
            a = Fraction(i, 100)
            assert upper_bound(a) >= lower_bound_b1(a) >= lower_bound_b2(a) > 1
        return "2/alpha >= B1 >= B2 > 1 across the alpha grid"

    _claim(report, "Figure 4 (bound ordering)", fig4)

    # ---- Section 2.2: FCFS unbounded ------------------------------------
    def fcfs() -> str:
        from ..algorithms import fcfs_schedule
        from ..theory import fcfs_worstcase_instance

        fam = fcfs_worstcase_instance(8, K=200)
        s = fcfs_schedule(fam.instance)
        assert s.makespan == fam.fcfs_makespan
        ratio = s.makespan / fam.optimal_makespan
        assert ratio > 7.5
        return f"FCFS ratio {ratio:.2f} -> m = 8 on the trap family"

    _claim(report, "Section 2.2 (FCFS has no constant guarantee)", fcfs)

    return report
