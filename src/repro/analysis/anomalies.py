"""Graham timing anomalies for list scheduling with rigid jobs.

The paper's appendix builds on Graham's anomaly papers ([11], [12]:
"Bounds on multiprocessing timing anomalies"), whose famous observation
is that list scheduling is not monotone: *improving* the input can
*worsen* the schedule.  This module makes the phenomenon executable for
the rigid-parallel-task model.

Graham's original examples use precedence constraints; in this model the
non-monotonicity is driven by *rigid widths* (a favourable change
promotes a wide job into an earlier slot whose occupancy misaligns a
later job) and is amplified by reservations (the displaced job can be
pushed past a blocked window, as in the deterministic witness below).
Both reservation-free and reservation-laden witnesses occur in random
search — unlike sequential independent tasks, where greedy list
scheduling is monotone in capacity.

* :func:`shortening_anomaly` — decreasing a job's processing time
  increases the LSRC makespan;
* :func:`removal_anomaly` — deleting a job entirely increases it;
* :func:`capacity_anomaly` — adding a processor increases it;
* :func:`find_anomalies` — randomized search that returns verified
  :class:`AnomalyWitness` objects (both schedules re-verified, both
  makespans recomputed by the ordinary scheduler).

The witnesses feed ``benchmarks/bench_anomalies.py`` and make the point
behind the paper's worst-case analysis concrete: list scheduling's
guarantees are worst-case envelopes precisely because its pointwise
behaviour is non-monotone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..algorithms.list_scheduling import ListScheduler
from ..core.instance import ReservationInstance, as_reservation_instance
from ..core.job import Job, Reservation
from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class AnomalyWitness:
    """A verified non-monotonicity example.

    Attributes
    ----------
    kind:
        ``"shorten"``, ``"remove"`` or ``"add-capacity"``.
    description:
        Human-readable account of the perturbation.
    base_instance / perturbed_instance:
        The two instances; the perturbation is *favourable* (shorter job,
        fewer jobs, or more processors).
    base_makespan / perturbed_makespan:
        LSRC makespans; a witness requires ``perturbed > base``.
    """

    kind: str
    description: str
    base_instance: ReservationInstance
    perturbed_instance: ReservationInstance
    base_makespan: object
    perturbed_makespan: object

    @property
    def regression(self):
        """How much worse the favourable change made things."""
        return self.perturbed_makespan - self.base_makespan


def _lsrc_makespan(instance) -> object:
    schedule = ListScheduler().schedule(instance)
    schedule.verify()
    return schedule.makespan


def shortening_anomaly(
    instance, job_id, new_p
) -> Optional[AnomalyWitness]:
    """Check whether shortening one job worsens LSRC on this instance."""
    inst = as_reservation_instance(instance)
    job = inst.job_by_id[job_id]
    if not 0 < new_p < job.p:
        raise InvalidInstanceError(
            f"new processing time must shorten the job: 0 < {new_p!r} < {job.p!r}"
        )
    shorter = type(job)(
        id=job.id, p=new_p, q=job.q, release=job.release, name=job.name
    )
    perturbed = inst.with_jobs(
        tuple(shorter if j.id == job_id else j for j in inst.jobs)
    )
    base_c = _lsrc_makespan(inst)
    pert_c = _lsrc_makespan(perturbed)
    if pert_c > base_c:
        return AnomalyWitness(
            kind="shorten",
            description=(
                f"shortening job {job_id!r} from p={job.p} to p={new_p} "
                f"raised Cmax {base_c} -> {pert_c}"
            ),
            base_instance=inst,
            perturbed_instance=perturbed,
            base_makespan=base_c,
            perturbed_makespan=pert_c,
        )
    return None


def removal_anomaly(instance, job_id) -> Optional[AnomalyWitness]:
    """Check whether deleting one job worsens LSRC on this instance."""
    inst = as_reservation_instance(instance)
    if job_id not in inst.job_by_id:
        raise InvalidInstanceError(f"no job {job_id!r} in the instance")
    perturbed = inst.with_jobs(
        tuple(j for j in inst.jobs if j.id != job_id)
    )
    base_c = _lsrc_makespan(inst)
    pert_c = _lsrc_makespan(perturbed)
    if pert_c > base_c:
        return AnomalyWitness(
            kind="remove",
            description=(
                f"removing job {job_id!r} raised Cmax {base_c} -> {pert_c}"
            ),
            base_instance=inst,
            perturbed_instance=perturbed,
            base_makespan=base_c,
            perturbed_makespan=pert_c,
        )
    return None


def capacity_anomaly(instance, extra: int = 1) -> Optional[AnomalyWitness]:
    """Check whether adding processors worsens LSRC on this instance."""
    inst = as_reservation_instance(instance)
    if extra < 1:
        raise InvalidInstanceError("extra processors must be >= 1")
    perturbed = ReservationInstance(
        m=inst.m + extra,
        jobs=inst.jobs,
        reservations=inst.reservations,
        name=f"{inst.name}+{extra}proc",
    )
    base_c = _lsrc_makespan(inst)
    pert_c = _lsrc_makespan(perturbed)
    if pert_c > base_c:
        return AnomalyWitness(
            kind="add-capacity",
            description=(
                f"adding {extra} processor(s) (m={inst.m} -> "
                f"{inst.m + extra}) raised Cmax {base_c} -> {pert_c}"
            ),
            base_instance=inst,
            perturbed_instance=perturbed,
            base_makespan=base_c,
            perturbed_makespan=pert_c,
        )
    return None


def classic_capacity_anomaly() -> AnomalyWitness:
    """A deterministic witness: more processors, longer schedule.

    The decisive ingredient is a **reservation**: LSRC's full-duration
    fit rule makes reservation-free schedules remarkably monotone
    (thousands of random favourable perturbations produce no regression),
    but around a reservation, extra capacity can promote a long job into
    an earlier slot whose occupancy pushes a later job past the blocked
    window.  The witness below was found by :func:`find_anomalies` and is
    re-verified on every call:

    * ``m = 4 -> 5``, reservation of 3 processors on ``[10, 14)``,
      jobs (list order) ``(p=4,q=4), (5,1), (4,4), (6,3), (2,1)``:
      makespan 18 on four processors, 20 on five.
    """
    inst = ReservationInstance(
        m=4,
        jobs=(
            Job(id=0, p=4, q=4),
            Job(id=1, p=5, q=1),
            Job(id=2, p=4, q=4),
            Job(id=3, p=6, q=3),
            Job(id=4, p=2, q=1),
        ),
        reservations=(Reservation(id="R", start=10, p=4, q=3),),
        name="classic-capacity-anomaly",
    )
    witness = capacity_anomaly(inst)
    if witness is None:  # pragma: no cover - deterministic construction
        raise InvalidInstanceError(
            "the classic witness vanished; LSRC semantics changed?"
        )
    return witness


def find_anomalies(
    n_trials: int = 200,
    seed: int = 0,
    kinds: tuple = ("shorten", "remove", "add-capacity"),
    m_range: tuple = (2, 5),
    n_jobs_range: tuple = (3, 7),
    max_reservations: int = 2,
) -> List[AnomalyWitness]:
    """Randomized anomaly search over small instances *with reservations*.

    Samples random instances (including small reservation calendars —
    the ingredient that makes LSRC non-monotone under the full-duration
    fit semantics) and favourable perturbations; returns every verified
    witness found (typically a few per thousand trials).
    """
    rng = random.Random(seed)
    witnesses: List[AnomalyWitness] = []
    for _ in range(n_trials):
        m = rng.randint(*m_range)
        n = rng.randint(*n_jobs_range)
        jobs = tuple(
            Job(id=i, p=rng.randint(1, 6), q=rng.randint(1, m))
            for i in range(n)
        )
        reservations = []
        for r in range(rng.randint(0, max_reservations)):
            reservations.append(
                Reservation(
                    id=f"r{r}",
                    start=rng.randint(1, 10),
                    p=rng.randint(1, 5),
                    q=rng.randint(1, m),
                )
            )
        try:
            inst = ReservationInstance(
                m=m, jobs=jobs, reservations=tuple(reservations)
            )
        except InvalidInstanceError:
            continue  # overlapping reservations exceeded the machine
        kind = rng.choice(kinds)
        try:
            if kind == "shorten":
                job = jobs[rng.randrange(n)]
                if job.p <= 1:
                    continue
                witness = shortening_anomaly(
                    inst, job.id, rng.randint(1, job.p - 1)
                )
            elif kind == "remove":
                if n <= 1:
                    continue
                witness = removal_anomaly(inst, jobs[rng.randrange(n)].id)
            else:
                witness = capacity_anomaly(inst, extra=1)
        except InvalidInstanceError:  # pragma: no cover - guarded above
            continue
        if witness is not None:
            witnesses.append(witness)
    return witnesses
