"""Parameter-sweep experiment runner.

A light harness for the benchmarks: declare factors (named value lists),
give a ``runner(point) -> dict`` callback, and get one merged result row
per factor combination.  Deterministic iteration order and an explicit
per-point derived seed keep every experiment reproducible.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class SweepPoint:
    """One factor combination, with a stable derived seed."""

    values: Mapping[str, object]
    index: int

    def __getitem__(self, key):
        return self.values[key]

    @property
    def seed(self) -> int:
        """Deterministic seed derived from the point's position and values."""
        basis = tuple(sorted((k, repr(v)) for k, v in self.values.items()))
        return abs(hash((self.index,) + basis)) % (2**31)


@dataclass
class SweepResult:
    """All result rows of a sweep, with provenance."""

    rows: List[Dict] = field(default_factory=list)
    factors: Dict[str, Sequence] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def column(self, name: str) -> List:
        return [row[name] for row in self.rows]

    def filtered(self, **conditions) -> List[Dict]:
        """Rows matching all ``column=value`` conditions."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in conditions.items()):
                out.append(row)
        return out


def run_sweep(
    factors: Mapping[str, Sequence],
    runner: Callable[[SweepPoint], Dict],
    repeats: int = 1,
) -> SweepResult:
    """Run ``runner`` on the cartesian product of factors.

    Each produced row contains the factor values, the repeat index and
    whatever the runner returned (runner keys win on collision so runners
    can override e.g. a derived label).
    """
    if repeats < 1:
        raise InvalidInstanceError("repeats must be >= 1")
    names = list(factors)
    if not names:
        raise InvalidInstanceError("sweep needs at least one factor")
    started = _time.perf_counter()
    result = SweepResult(factors={k: list(v) for k, v in factors.items()})
    index = 0
    for combo in itertools.product(*(factors[name] for name in names)):
        for rep in range(repeats):
            point = SweepPoint(
                values={**dict(zip(names, combo)), "repeat": rep},
                index=index,
            )
            index += 1
            row = dict(point.values)
            row.update(runner(point))
            result.rows.append(row)
    result.elapsed_seconds = _time.perf_counter() - started
    return result
