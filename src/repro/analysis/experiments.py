"""DEPRECATED parameter-sweep runner — superseded by :mod:`repro.run`.

This closure-based harness predates the declarative experiment layer.
New code should build an :class:`repro.run.ExperimentSpec` (factors by
registry name, JSON-serializable) and execute it with
:class:`repro.run.Runner`, which adds process-parallel execution,
derived per-point seeds that survive process boundaries, JSONL
persistence and resume-on-rerun.  :func:`run_sweep` remains as a thin
shim over the same grid expansion (:func:`repro.run.iter_grid`) for
callers that genuinely need an arbitrary in-process callback; it emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class SweepPoint:
    """One factor combination, with a stable derived seed."""

    values: Mapping[str, object]
    index: int

    def __getitem__(self, key):
        return self.values[key]

    @property
    def seed(self) -> int:
        """Deterministic seed derived from the point's position and values."""
        basis = tuple(sorted((k, repr(v)) for k, v in self.values.items()))
        return abs(hash((self.index,) + basis)) % (2**31)


@dataclass
class SweepResult:
    """All result rows of a sweep, with provenance."""

    rows: List[Dict] = field(default_factory=list)
    factors: Dict[str, Sequence] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def column(self, name: str) -> List:
        return [row[name] for row in self.rows]

    def filtered(self, **conditions) -> List[Dict]:
        """Rows matching all ``column=value`` conditions."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in conditions.items()):
                out.append(row)
        return out


def run_sweep(
    factors: Mapping[str, Sequence],
    runner: Callable[[SweepPoint], Dict],
    repeats: int = 1,
) -> SweepResult:
    """Run ``runner`` on the cartesian product of factors.

    .. deprecated::
        Use :class:`repro.run.ExperimentSpec` + :class:`repro.run.Runner`
        for registry-named factors, parallelism and persistence.

    Each produced row contains the factor values, the repeat index and
    whatever the runner returned (runner keys win on collision so runners
    can override e.g. a derived label).
    """
    from ..run.spec import iter_grid

    warnings.warn(
        "repro.analysis.run_sweep is deprecated; declare an "
        "ExperimentSpec and execute it with repro.run.Runner",
        DeprecationWarning,
        stacklevel=2,
    )
    if repeats < 1:
        raise InvalidInstanceError("repeats must be >= 1")
    if not list(factors):
        raise InvalidInstanceError("sweep needs at least one factor")
    started = _time.perf_counter()
    result = SweepResult(factors={k: list(v) for k, v in factors.items()})
    index = 0
    for combo in iter_grid(factors):
        for rep in range(repeats):
            point = SweepPoint(values={**combo, "repeat": rep}, index=index)
            index += 1
            row = dict(point.values)
            row.update(runner(point))
            result.rows.append(row)
    result.elapsed_seconds = _time.perf_counter() - started
    return result
