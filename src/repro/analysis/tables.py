"""Result tables: fixed-width text, Markdown and CSV rendering.

The benchmark harness prints the rows the paper's figures encode; these
helpers keep that output aligned, diff-able and machine-readable.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Optional, Sequence


def _format_cell(value, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    float_fmt: str = ".4g",
    title: str = "",
) -> str:
    """Render dict rows as an aligned fixed-width table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [
        [_format_cell(row.get(c, ""), float_fmt) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in cells:
        out.write("  ".join(v.ljust(w) for v, w in zip(r, widths)) + "\n")
    return out.getvalue()


def format_markdown(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    float_fmt: str = ".4g",
) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    out = io.StringIO()
    out.write("| " + " | ".join(cols) + " |\n")
    out.write("|" + "|".join("---" for _ in cols) + "|\n")
    for row in rows:
        out.write(
            "| "
            + " | ".join(_format_cell(row.get(c, ""), float_fmt) for c in cols)
            + " |\n"
        )
    return out.getvalue()


def write_csv(
    rows: Sequence[Dict],
    path: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Serialise dict rows to CSV text (and to ``path`` when given)."""
    rows = list(rows)
    cols = list(columns) if columns else (list(rows[0].keys()) if rows else [])
    out = io.StringIO()
    writer = csv.DictWriter(
        out, fieldnames=cols, extrasaction="ignore", lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c, "") for c in cols})
    text = out.getvalue()
    if path is not None:
        with open(path, "w", newline="") as fh:
            fh.write(text)
    return text
