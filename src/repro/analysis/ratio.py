"""Empirical approximation-ratio measurement.

The paper proves worst-case ratios; the natural empirical companion —
what a systems evaluation would report — is the distribution of
``Cmax(A) / reference`` over workload samples, where the reference is
either a certified lower bound (cheap, always available; yields an upper
estimate of the true ratio) or the exact optimum (small instances only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..algorithms.base import Scheduler, get_scheduler
from ..algorithms.optimal import branch_and_bound
from ..core.bounds import lower_bound
from ..core.instance import as_reservation_instance
from ..errors import InvalidInstanceError
from .stats import Summary, describe, geometric_mean


@dataclass(frozen=True)
class RatioSample:
    """One (algorithm, instance) measurement."""

    algorithm: str
    instance_name: str
    makespan: float
    reference: float
    ratio: float
    reference_kind: str  # "lb" or "opt"


@dataclass
class RatioReport:
    """Aggregated ratios for one algorithm over an instance set."""

    algorithm: str
    samples: List[RatioSample]

    @property
    def summary(self) -> Summary:
        return describe([s.ratio for s in self.samples])

    @property
    def geo_mean(self) -> float:
        return geometric_mean([s.ratio for s in self.samples])

    @property
    def worst(self) -> RatioSample:
        return max(self.samples, key=lambda s: s.ratio)

    def as_row(self) -> Dict:
        s = self.summary
        return {
            "algorithm": self.algorithm,
            "n": s.n,
            "mean_ratio": s.mean,
            "geo_mean": self.geo_mean,
            "max_ratio": s.maximum,
            "min_ratio": s.minimum,
        }


def measure_ratio(
    scheduler: Scheduler | str,
    instances: Iterable,
    reference: str = "lb",
    node_limit: int = 500_000,
    verify: bool = True,
) -> RatioReport:
    """Run a scheduler over instances and measure makespan ratios.

    ``reference="lb"`` divides by :func:`repro.core.bounds.lower_bound`
    (an upper estimate of the true ratio); ``reference="opt"`` divides by
    the exact branch-and-bound optimum (use small instances).
    """
    if isinstance(scheduler, str):
        scheduler = get_scheduler(scheduler)
    if reference not in ("lb", "opt"):
        raise InvalidInstanceError(
            f"reference must be 'lb' or 'opt', got {reference!r}"
        )
    samples: List[RatioSample] = []
    for inst in instances:
        inst = as_reservation_instance(inst)
        sched = scheduler.schedule(inst)
        if verify:
            sched.verify()
        if reference == "lb":
            ref = lower_bound(inst)
        else:
            ref = branch_and_bound(inst, node_limit=node_limit).makespan
        if ref <= 0:
            raise InvalidInstanceError(
                f"degenerate reference {ref!r} for {inst!r}"
            )
        samples.append(
            RatioSample(
                algorithm=scheduler.name,
                instance_name=inst.name or repr(inst),
                makespan=float(sched.makespan),
                reference=float(ref),
                ratio=float(sched.makespan) / float(ref),
                reference_kind=reference,
            )
        )
    return RatioReport(algorithm=scheduler.name, samples=samples)


def compare_algorithms(
    names: Sequence[str],
    instances: Sequence,
    reference: str = "lb",
) -> List[Dict]:
    """Ratio table rows for several registered algorithms on the same
    instance set (instances are materialised once so every algorithm sees
    the identical workload)."""
    pool = [as_reservation_instance(i) for i in instances]
    rows = []
    for name in names:
        report = measure_ratio(name, pool, reference=reference)
        rows.append(report.as_row())
    return rows
