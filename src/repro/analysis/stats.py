"""Summary statistics for experiment results.

Thin, dependency-light helpers (scipy is used for the t quantile when
available, with a normal-approximation fallback) so benchmark output can
report means with confidence intervals instead of bare numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidInstanceError

try:  # pragma: no cover - exercised through describe()
    from scipy import stats as _scipy_stats
except Exception:  # pragma: no cover - scipy is installed in CI
    _scipy_stats = None


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.4g} ± {(self.ci_high - self.mean):.2g} "
            f"(95% CI), n={self.n}, range=[{self.minimum:.4g}, "
            f"{self.maximum:.4g}]"
        )


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not xs:
        raise InvalidInstanceError("mean of empty sample")
    return sum(xs) / len(xs)


def std(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator; 0 for n < 2)."""
    n = len(xs)
    if n < 2:
        return 0.0
    mu = mean(xs)
    return math.sqrt(sum((x - mu) ** 2 for x in xs) / (n - 1))


def _t_quantile(df: int, confidence: float) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2, df))
    # normal approximation fallback (fine for df >= 30)
    return 1.959963984540054


def confidence_interval(
    xs: Sequence[float], confidence: float = 0.95
) -> tuple:
    """Two-sided t confidence interval for the mean."""
    n = len(xs)
    if n == 0:
        raise InvalidInstanceError("CI of empty sample")
    mu = mean(xs)
    if n == 1:
        return (mu, mu)
    half = _t_quantile(n - 1, confidence) * std(xs) / math.sqrt(n)
    return (mu - half, mu + half)


def describe(xs: Sequence[float], confidence: float = 0.95) -> Summary:
    """Full summary of a sample."""
    if not xs:
        raise InvalidInstanceError("describe of empty sample")
    lo, hi = confidence_interval(xs, confidence)
    return Summary(
        n=len(xs),
        mean=mean(xs),
        std=std(xs),
        minimum=min(xs),
        maximum=max(xs),
        ci_low=lo,
        ci_high=hi,
    )


def quantile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile, ``q`` in [0, 1]."""
    if not xs:
        raise InvalidInstanceError("quantile of empty sample")
    if not 0 <= q <= 1:
        raise InvalidInstanceError(f"q must lie in [0, 1], got {q}")
    ys = sorted(xs)
    pos = q * (len(ys) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ys[lo]
    frac = pos - lo
    return ys[lo] * (1 - frac) + ys[hi] * frac


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean (all values must be positive) — the conventional
    aggregate for performance *ratios*."""
    if not xs:
        raise InvalidInstanceError("geometric mean of empty sample")
    if any(x <= 0 for x in xs):
        raise InvalidInstanceError("geometric mean needs positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))
