"""ASCII line plots (matplotlib is unavailable offline).

Figure 4 of the paper is a plot of three curves against α; the benchmark
regenerates it as an ASCII chart plus a CSV series.  The renderer handles
multiple named series, custom canvas size, and marks each series with its
own glyph.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidInstanceError

Series = Sequence[Tuple[float, float]]

#: glyphs assigned to series in order
GLYPHS = "*+x@o#%&"


def ascii_plot(
    series: Dict[str, Series],
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
    y_max: Optional[float] = None,
    y_min: Optional[float] = None,
) -> str:
    """Render named ``(x, y)`` series on one ASCII canvas.

    ``y_max`` clips large values (the paper clips Figure 4's y-axis at 10
    because the bounds diverge as α -> 0).
    """
    if not series:
        raise InvalidInstanceError("no series to plot")
    if width < 16 or height < 4:
        raise InvalidInstanceError("canvas too small")
    points = [
        (x, y) for pts in series.values() for (x, y) in pts
        if _finite(x) and _finite(y)
    ]
    if not points:
        raise InvalidInstanceError("series contain no finite points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    canvas = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> Optional[int]:
        if y > y_hi or y < y_lo:
            return None
        frac = (y - y_lo) / (y_hi - y_lo)
        return height - 1 - min(height - 1, max(0, int(frac * (height - 1))))

    for idx, (name, pts) in enumerate(series.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in pts:
            if not (_finite(x) and _finite(y)):
                continue
            row = to_row(y)
            if row is None:
                continue
            canvas[row][to_col(x)] = glyph

    lines: List[str] = []
    label_w = max(len(f"{y_hi:.3g}"), len(f"{y_lo:.3g}"))
    for r in range(height):
        y_here = y_hi - (y_hi - y_lo) * r / (height - 1)
        prefix = (
            f"{y_here:.3g}".rjust(label_w) + " |"
            if r % max(1, height // 5) == 0 or r == height - 1
            else " " * label_w + " |"
        )
        lines.append(prefix + "".join(canvas[r]))
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width // 2) + f"{x_hi:.3g}".rjust(width // 2)
    lines.append(" " * (label_w + 2) + x_axis)
    if x_label:
        lines.append(" " * (label_w + 2) + x_label.center(width))
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    header = (f"{y_label}" if y_label else "") + ("   " if y_label else "") + legend
    return header + "\n" + "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar histogram of a sample."""
    if not values:
        raise InvalidInstanceError("no values to histogram")
    if bins < 1:
        raise InvalidInstanceError("bins must be >= 1")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, c in enumerate(counts):
        b_lo = lo + (hi - lo) * i / bins
        b_hi = lo + (hi - lo) * (i + 1) / bins
        bar = "#" * (int(c / peak * width) if peak else 0)
        lines.append(f"[{b_lo:9.3g}, {b_hi:9.3g}) {str(c).rjust(6)} {bar}")
    return "\n".join(lines)


def _finite(v) -> bool:
    try:
        return math.isfinite(float(v))
    except (TypeError, ValueError, OverflowError):
        return False
