"""Experiment running, ratio measurement, statistics and reporting."""

from .anomalies import (
    AnomalyWitness,
    capacity_anomaly,
    classic_capacity_anomaly,
    find_anomalies,
    removal_anomaly,
    shortening_anomaly,
)
from .certificates import ClaimResult, PaperReport, verify_paper_claims
from .experiments import SweepPoint, SweepResult, run_sweep
from .plotting import ascii_histogram, ascii_plot
from .ratio import (
    RatioReport,
    RatioSample,
    compare_algorithms,
    measure_ratio,
)
from .stats import (
    Summary,
    confidence_interval,
    describe,
    geometric_mean,
    mean,
    quantile,
    std,
)
from .tables import format_markdown, format_table, write_csv

__all__ = [
    "run_sweep",
    "SweepPoint",
    "SweepResult",
    "measure_ratio",
    "compare_algorithms",
    "RatioReport",
    "RatioSample",
    "describe",
    "Summary",
    "mean",
    "std",
    "quantile",
    "geometric_mean",
    "confidence_interval",
    "format_table",
    "format_markdown",
    "write_csv",
    "ascii_plot",
    "ascii_histogram",
    "AnomalyWitness",
    "find_anomalies",
    "shortening_anomaly",
    "removal_anomaly",
    "capacity_anomaly",
    "classic_capacity_anomaly",
    "verify_paper_claims",
    "PaperReport",
    "ClaimResult",
]
