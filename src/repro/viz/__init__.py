"""Schedule visualisation: ASCII Gantt charts and SVG export."""

from .gantt import render_gantt, render_profile, render_utilization
from .svg import save_svg, schedule_to_svg

__all__ = [
    "render_gantt",
    "render_profile",
    "render_utilization",
    "schedule_to_svg",
    "save_svg",
]
