"""SVG rendering of schedules (no plotting stack required).

Produces a self-contained SVG document: jobs as coloured rectangles over
a processor × time plane, reservations hatched grey, with tooltips
(``<title>`` elements) carrying job details.  Useful for inspecting the
adversarial constructions — the Figure 3 example renders exactly like the
paper's drawing.
"""

from __future__ import annotations

import html
from typing import List

from ..core.schedule import Schedule
from ..errors import InvalidInstanceError

#: a categorical colour cycle (hex, no external deps)
PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]


def schedule_to_svg(
    schedule: Schedule,
    width: int = 800,
    row_height: int = 14,
    horizon=None,
    title: str = "",
) -> str:
    """Serialise a schedule to an SVG string."""
    inst = schedule.instance
    m = inst.m
    cmax = schedule.makespan
    if horizon is None:
        res_edge = max(
            (min(r.end, 2 * cmax if cmax else r.end) for r in inst.reservations),
            default=0,
        )
        horizon = max(cmax, res_edge) or 1
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    assignment = schedule.assign_processors()
    margin = 40
    chart_h = m * row_height
    total_w = width + 2 * margin
    total_h = chart_h + 2 * margin + 20

    def x_of(t) -> float:
        return margin + float(t) / float(horizon) * width

    def y_of(proc: int) -> float:
        # processor 0 at the bottom, like the paper's figures
        return margin + (m - 1 - proc) * row_height

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" '
        f'height="{total_h}" viewBox="0 0 {total_w} {total_h}">'
    )
    parts.append(
        '<defs><pattern id="hatch" width="6" height="6" '
        'patternTransform="rotate(45)" patternUnits="userSpaceOnUse">'
        '<rect width="6" height="6" fill="#dddddd"/>'
        '<line x1="0" y1="0" x2="0" y2="6" stroke="#888888" stroke-width="2"/>'
        "</pattern></defs>"
    )
    label = html.escape(
        title or f"{schedule.algorithm or 'schedule'}  Cmax={cmax}  m={m}"
    )
    parts.append(
        f'<text x="{margin}" y="{margin - 12}" font-family="monospace" '
        f'font-size="13">{label}</text>'
    )
    parts.append(
        f'<rect x="{margin}" y="{margin}" width="{width}" height="{chart_h}" '
        'fill="#fafafa" stroke="#333333"/>'
    )
    # reservations first (so jobs draw on top of the hatch)
    for res in inst.reservations:
        procs = assignment.get(("res", res.id), ())
        x = x_of(res.start)
        w = max(1.0, x_of(min(res.end, horizon)) - x)
        for p in procs:
            parts.append(
                f'<rect x="{x:.2f}" y="{y_of(p):.2f}" width="{w:.2f}" '
                f'height="{row_height}" fill="url(#hatch)" stroke="#999999" '
                f'stroke-width="0.5"><title>{html.escape(res.label)}: '
                f"[{res.start}, {res.end}) q={res.q}</title></rect>"
            )
    for i, job in enumerate(inst.jobs):
        color = PALETTE[i % len(PALETTE)]
        s = schedule.starts[job.id]
        x = x_of(s)
        w = max(1.0, x_of(s + job.p) - x)
        for p in assignment.get(("job", job.id), ()):
            parts.append(
                f'<rect x="{x:.2f}" y="{y_of(p):.2f}" width="{w:.2f}" '
                f'height="{row_height}" fill="{color}" stroke="#ffffff" '
                f'stroke-width="0.5"><title>{html.escape(job.label)}: '
                f"start={s} p={job.p} q={job.q}</title></rect>"
            )
    # axes ticks: 0, Cmax, horizon
    for t in sorted({0, cmax, horizon}):
        x = x_of(t)
        parts.append(
            f'<line x1="{x:.2f}" y1="{margin + chart_h}" x2="{x:.2f}" '
            f'y2="{margin + chart_h + 6}" stroke="#333333"/>'
        )
        parts.append(
            f'<text x="{x:.2f}" y="{margin + chart_h + 18}" '
            f'font-family="monospace" font-size="11" text-anchor="middle">'
            f"{t}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def save_svg(schedule: Schedule, path: str, **kwargs) -> str:
    """Write :func:`schedule_to_svg` output to a file; returns the path."""
    svg = schedule_to_svg(schedule, **kwargs)
    with open(path, "w") as fh:
        fh.write(svg)
    return path
