"""ASCII Gantt charts for schedules.

Renders a schedule the way the paper's Figures 2 and 3 draw them:
processors on the y-axis, time on the x-axis, jobs as labelled blocks and
reservations as hatched blocks.  Uses the concrete processor assignment
from :meth:`repro.core.schedule.Schedule.assign_processors`, so what you
see is a real feasible packing, not just a capacity curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.schedule import Schedule
from ..errors import InvalidInstanceError

#: glyph used for reservations
RESERVATION_GLYPH = "/"
#: glyph cycle for jobs
JOB_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def render_gantt(
    schedule: Schedule,
    width: int = 78,
    horizon=None,
    legend: bool = True,
    max_rows: Optional[int] = 64,
) -> str:
    """Render the schedule as an ASCII Gantt chart.

    Parameters
    ----------
    width:
        Number of character columns for the time axis.
    horizon:
        Right edge of the chart; defaults to the larger of the makespan
        and the last reservation end *within* the makespan window (the
        Theorem 1 blocker would otherwise stretch the axis absurdly).
    legend:
        Append a job-glyph legend.
    max_rows:
        Cap on processor rows (large machines are summarised row-wise).
    """
    inst = schedule.instance
    if not inst.jobs and not inst.reservations:
        return "(empty schedule)"
    cmax = schedule.makespan
    if horizon is None:
        res_edge = max(
            (r.end for r in inst.reservations if r.start < cmax or cmax == 0),
            default=0,
        )
        horizon = max(cmax, min(res_edge, 2 * cmax) if cmax else res_edge)
    if horizon <= 0:
        horizon = 1
    assignment = schedule.assign_processors()

    glyph_of: Dict = {}
    for i, job in enumerate(inst.jobs):
        glyph_of[job.id] = JOB_GLYPHS[i % len(JOB_GLYPHS)]

    def col(t) -> int:
        frac = t / horizon
        return min(width, max(0, int(round(frac * width))))

    m = inst.m
    rows = [[" "] * width for _ in range(m)]

    def paint(start, end, procs, glyph) -> None:
        c0, c1 = col(start), col(end)
        if c1 <= c0:
            c1 = min(width, c0 + 1)  # ensure visibility of tiny blocks
        for p in procs:
            for c in range(c0, c1):
                rows[p][c] = glyph

    for res in inst.reservations:
        procs = assignment.get(("res", res.id), ())
        paint(res.start, min(res.end, horizon), procs, RESERVATION_GLYPH)
    for job in inst.jobs:
        procs = assignment.get(("job", job.id), ())
        s = schedule.starts[job.id]
        paint(s, s + job.p, procs, glyph_of[job.id])

    lines: List[str] = []
    title = f"Gantt: m={m}, Cmax={cmax}" + (
        f" [{schedule.algorithm}]" if schedule.algorithm else ""
    )
    lines.append(title)
    display_rows = rows
    if max_rows is not None and m > max_rows:
        step = -(-m // max_rows)  # ceil division: one display row per step
        display_rows = []
        for base in range(0, m, step):
            merged = [" "] * width
            for p in range(base, min(m, base + step)):
                for c in range(width):
                    if rows[p][c] != " " and merged[c] == " ":
                        merged[c] = rows[p][c]
            display_rows.append(merged)
        lines.append(
            f"(processors aggregated {step} per row; {m} total)"
        )
    for idx, row in enumerate(reversed(display_rows)):
        label = (
            f"P{len(display_rows) - 1 - idx:>3} |"
            if len(display_rows) <= 64
            else "     |"
        )
        lines.append(label + "".join(row) + "|")
    axis = "     +" + "-" * width + "+"
    lines.append(axis)
    lines.append(f"     0{' ' * (width - len(str(horizon)))}{horizon}")
    if legend:
        entries = []
        for job in inst.jobs[:24]:
            entries.append(f"{glyph_of[job.id]}={job.label}")
        if len(inst.jobs) > 24:
            entries.append("...")
        if inst.reservations:
            entries.append(f"{RESERVATION_GLYPH}=reservation")
        lines.append("legend: " + "  ".join(entries))
    return "\n".join(lines)


def render_profile(profile, width: int = 78, horizon=None, title: str = "") -> str:
    """ASCII silhouette of a :class:`~repro.core.profile.ResourceProfile`.

    Useful for inspecting availability calendars (``m(t) = m - U(t)``)
    before scheduling anything — the shapes of Figure 2's staircases and
    Figure 1's gap structure render directly.
    """
    breakpoints = list(profile.breakpoints)
    if horizon is None:
        horizon = (breakpoints[-1] * 1.25) if breakpoints[-1] > 0 else 1
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    top = max(profile.max_capacity(), 1)
    samples = [
        profile.capacity_at(horizon * c / width) for c in range(width)
    ]
    lines = [title or f"availability profile (max={top})"]
    levels = min(top, 12)
    for level in range(levels, 0, -1):
        threshold = top * level / levels
        line = "".join("#" if s >= threshold else " " for s in samples)
        lines.append(f"{int(threshold):>4} |" + line)
    lines.append("     +" + "-" * width)
    lines.append(f"     0{' ' * (width - len(str(horizon)))}{horizon}")
    return "\n".join(lines)


def render_utilization(schedule: Schedule, width: int = 78) -> str:
    """One-line-per-level utilization silhouette: ``r(t)`` over time."""
    cmax = schedule.makespan
    if cmax <= 0:
        return "(empty schedule)"
    usage = schedule.usage_profile()
    m = schedule.instance.m
    samples = []
    for c in range(width):
        t = cmax * c / width
        samples.append(usage.capacity_at(t))
    lines = [f"utilization r(t), m={m}, Cmax={cmax}"]
    levels = 10
    for level in range(levels, 0, -1):
        threshold = m * level / levels
        line = "".join("#" if s >= threshold else " " for s in samples)
        prefix = f"{int(threshold):>4} |"
        lines.append(prefix + line)
    lines.append("     +" + "-" * width)
    return "\n".join(lines)
