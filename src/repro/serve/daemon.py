"""The ``repro serve`` daemon: a socket-driven scheduler service.

Two layers, separable for testing:

:class:`SchedulerService`
    The transport-free op-application layer.  It owns one live
    :class:`~repro.simulation.SchedulerCore` and one
    :class:`~repro.durability.Journal`, and enforces the event-sourcing
    invariants of a crash-safe service:

    * **apply → journal → ack.**  A mutating op is applied to the core,
      appended to the journal (flushed), and only then acknowledged —
      so an acked op is always durable, and an op the journal never
      recorded was never acked (the client must retry it).
    * **snapshots bound replay.**  Every ``snapshot_interval`` accepted
      ops the core's full state — its
      :class:`~repro.simulation.replay.ReplayCheckpoint` plus the
      live-service extras — is committed through the journal's atomic
      snapshot/segment-roll protocol, exactly as journaled batch replay
      does.
    * **recovery = snapshot + op replay.**  :meth:`SchedulerService.resume`
      rehydrates the last committed snapshot and re-applies the op
      records after it (:meth:`Journal.open_event_sourced` keeps them —
      unlike batch-replay rows they cannot be re-derived from a trace),
      yielding a core byte-identical to the uninterrupted one.

    Determinism holds because time is *logical*: the clock moves only
    on client ``advance`` ops, which are journaled like every other
    mutation — the daemon never consults the wall clock.

:class:`ServeDaemon`
    A thin stdlib :mod:`http.server` front end (no new dependencies):
    one single-threaded HTTP/JSON endpoint accepting ``repro-serve/1``
    bodies (:mod:`repro.serve.api`), serialising all ops through the
    service.  Single-threading is load-bearing: one op stream, one
    deterministic journal order.
"""

from __future__ import annotations

import json
import pickle
import sys
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Dict, Optional, Tuple

from ..devtools.failpoints import fire
from ..durability.journal import Journal, OpRecovery
from ..errors import ReproError, ServeError, ServeProtocolError
from ..simulation.scheduler_core import SchedulerCore
from .api import (
    MUTATING_OPS,
    SERVE_FORMAT,
    error_envelope,
    error_kind,
    job_from_payload,
    make_query,
    ok_envelope,
    parse_request,
)

#: Default accepted-op count between state snapshots.
DEFAULT_OP_SNAPSHOT_INTERVAL = 256

#: Journal header tag distinguishing a serve journal from a batch-replay
#: journal (the two recover differently; mixing them must fail loudly).
SERVE_MODE = "serve"


class SchedulerService:
    """Transport-free op application over one core + one journal."""

    def __init__(
        self,
        core: SchedulerCore,
        journal: Optional[Journal] = None,
        snapshot_interval: int = DEFAULT_OP_SNAPSHOT_INTERVAL,
        start_seq: int = 0,
    ):
        if snapshot_interval < 1:
            raise ServeError("snapshot_interval must be >= 1")
        self.core = core
        self.journal = journal
        self.snapshot_interval = snapshot_interval
        #: accepted (journaled) mutating ops so far
        self.seq = start_seq
        #: set by the ``shutdown`` op; the transport loop polls it
        self.stop_requested = False

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        *,
        m: int,
        policy: str = "easy",
        window: int = 0,
        snapshot_interval: int = DEFAULT_OP_SNAPSHOT_INTERVAL,
        fsync: bool = False,
        uncertainty=None,
    ) -> "SchedulerService":
        """Start a fresh service journaling into ``directory``."""
        core = SchedulerCore(m, policy, window=window,
                             uncertainty=uncertainty)
        config = {
            "mode": SERVE_MODE,
            "format": SERVE_FORMAT,
            "m": m,
            "policy": policy,
            "window": window,
            "snapshot_interval": snapshot_interval,
        }
        if core.uncertainty is not None:
            # the canonical spec, not the raw flag: resume must rebuild
            # the exact same model the journaled ops were applied under
            config["uncertainty"] = core.uncertainty.spec
        journal = Journal.create(directory, config, fsync=fsync)
        return cls(core, journal, snapshot_interval)

    @classmethod
    def resume(
        cls, directory: str, *, fsync: bool = False
    ) -> Tuple["SchedulerService", OpRecovery]:
        """Recover a killed service from its journal.

        Rehydrates the last committed snapshot (or an empty core) and
        re-applies every op record after it, in acceptance order —
        the recovered core is byte-identical to the state at the last
        acked op.
        """
        journal, recovery = Journal.open_event_sourced(directory, fsync=fsync)
        config = recovery.config
        if config.get("mode") != SERVE_MODE:
            journal.close()
            raise ServeError(
                f"journal {directory!r} was not written by repro serve "
                "(use `repro replay --resume` for batch-replay journals)"
            )
        snapshot_interval = int(
            config.get("snapshot_interval", DEFAULT_OP_SNAPSHOT_INTERVAL)
        )
        m = int(config["m"])
        policy = config["policy"]
        window = int(config["window"])
        uncertainty = config.get("uncertainty")
        if recovery.snapshot is not None:
            checkpoint, extras = pickle.loads(recovery.snapshot)
            core = SchedulerCore(m, policy, window=window, resume=checkpoint,
                                 uncertainty=uncertainty)
            core.restore_extra_state(extras)
            seq = int(recovery.snapshot_meta["ops"])
        else:
            core = SchedulerCore(m, policy, window=window,
                                 uncertainty=uncertainty)
            seq = 0
        service = cls(core, journal, snapshot_interval, start_seq=seq)
        for item in recovery.ops:
            # journaled ⟹ appliable: these succeeded once and the core
            # is deterministic, so re-application cannot fail
            service._apply(item["op"], item["body"])
            service.seq = int(item["seq"])
        return service, recovery

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # -- op handling -------------------------------------------------------
    def handle(self, body) -> Dict:
        """Validate, apply, journal and answer one request body;
        returns the response envelope (errors are envelopes too —
        a rejected request is an answer, not a connection teardown)."""
        try:
            op, body = parse_request(body)
            if op in MUTATING_OPS:
                return ok_envelope(self._mutate(op, body))
            return ok_envelope(self._query(op))
        except ReproError as exc:
            return error_envelope(exc)

    def _mutate(self, op: str, body: Dict) -> Dict:
        fire("serve.op.apply")
        result = self._apply(op, body)
        if self.journal is not None:
            self.seq += 1
            self.journal.append(
                {"t": "op", "seq": self.seq, "op": op, "body": body}
            )
            if self.seq % self.snapshot_interval == 0:
                self.snapshot()
        fire("serve.op.ack")
        return result

    def _apply(self, op: str, body: Dict) -> Dict:
        core = self.core
        if op == "submit":
            job = job_from_payload(body["job"])
            core.submit(job)
            return {"submitted": job.id, "release": job.release}
        if op == "cancel":
            where = core.cancel(body["job"])
            return {"cancelled": body["job"], "was": where}
        if op == "advance":
            core.advance_to(body["to"])
            return core.status()
        if op == "reserve":
            core.reserve(body["start"], body["p"], body["q"])
            return {
                "reserved": {
                    "start": body["start"], "p": body["p"], "q": body["q"],
                }
            }
        if op == "drain":
            core.drain()
            return core.status()
        raise ServeProtocolError(f"unknown mutating op {op!r}")

    def _query(self, op: str) -> Dict:
        if op == "status":
            return {"ops": self.seq, **self.core.status()}
        if op == "windows":
            return {"rows": list(self.core.emitted)}
        if op == "state":
            return {"ops": self.seq, **self.core.describe_state()}
        if op == "shutdown":
            self.stop_requested = True
            return {"stopping": True}
        raise ServeProtocolError(f"unknown query op {op!r}")

    def snapshot(self) -> int:
        """Commit the core's full state through the journal (atomic
        snapshot file + marker-first segment roll); returns the
        snapshot index."""
        if self.journal is None:
            raise ServeError("service has no journal to snapshot into")
        data = pickle.dumps(
            (self.core.checkpoint(), self.core.extra_state()),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return self.journal.snapshot(data, meta={"ops": self.seq})


# -- HTTP front end ---------------------------------------------------------

#: GET paths and the query op each one runs.
_GET_OPS = {
    "/v1/status": "status",
    "/v1/windows": "windows",
    "/v1/state": "state",
}

#: HTTP status per error ``kind`` (ok envelopes are always 200).
_STATUS_BY_KIND = {"protocol": 400, "scheduling": 409, "model": 409}


class _ServeHandler(BaseHTTPRequestHandler):
    """One ``repro-serve/1`` request-response exchange."""

    server: "_ServeHTTPServer"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the daemon is quiet; state lives in the journal

    def _respond(self, envelope: Dict) -> None:
        if envelope.get("ok"):
            status = 200
        else:
            kind = (envelope.get("error") or {}).get("kind", "internal")
            status = _STATUS_BY_KIND.get(kind, 500)
        payload = json.dumps(envelope, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:
        op = _GET_OPS.get(self.path)
        if op is None:
            self._respond(error_envelope(
                ServeProtocolError(f"unknown path {self.path!r}")
            ))
            return
        self._respond(self.server.service.handle(make_query(op)))

    def do_POST(self) -> None:
        if self.path == "/v1/shutdown":
            self._respond(self.server.service.handle(make_query("shutdown")))
            return
        if self.path != "/v1/op":
            self._respond(error_envelope(
                ServeProtocolError(f"unknown path {self.path!r}")
            ))
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else None
        except json.JSONDecodeError as exc:
            self._respond(error_envelope(
                ServeProtocolError(f"request body is not JSON: {exc}")
            ))
            return
        self._respond(self.server.service.handle(body))


class _ServeHTTPServer(HTTPServer):
    """An :class:`HTTPServer` carrying the service it fronts."""

    allow_reuse_address = True

    def __init__(self, address, service: SchedulerService):
        super().__init__(address, _ServeHandler)
        self.service = service


class ServeDaemon:
    """The bound, single-threaded HTTP front end of one service."""

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._httpd = _ServeHTTPServer((host, port), service)

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (``port=0`` picks one)."""
        host, port = self._httpd.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Handle requests one at a time until a ``shutdown`` op."""
        while not self.service.stop_requested:
            self._httpd.handle_request()

    def close(self) -> None:
        self._httpd.server_close()
        self.service.close()


def run_serve(
    journal_dir: str,
    *,
    resume: bool = False,
    m: Optional[int] = None,
    policy: str = "easy",
    window: int = 0,
    snapshot_interval: int = DEFAULT_OP_SNAPSHOT_INTERVAL,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: Optional[str] = None,
    fsync: bool = False,
    stream=None,
    uncertainty=None,
) -> int:
    """The ``repro serve`` entry point: build (or recover) the service,
    bind, announce the address, and serve until shutdown."""
    stream = stream if stream is not None else sys.stderr
    if resume:
        service, recovery = SchedulerService.resume(journal_dir, fsync=fsync)
        if recovery.torn is not None:
            print(f"repro serve: repaired {recovery.torn}", file=stream)
        print(
            f"repro serve: recovered {service.seq} op(s) "
            f"({len(recovery.ops)} replayed after the last snapshot)",
            file=stream,
        )
    else:
        if m is None:
            raise ServeError("starting a fresh service requires -m/--machines")
        service = SchedulerService.create(
            journal_dir, m=m, policy=policy, window=window,
            snapshot_interval=snapshot_interval, fsync=fsync,
            uncertainty=uncertainty,
        )
    daemon = ServeDaemon(service, host=host, port=port)
    try:
        bound_host, bound_port = daemon.address
        if port_file is not None:
            from ..durability.atomic import atomic_write_text

            atomic_write_text(port_file, f"{bound_port}\n")
        print(
            f"repro serve: listening on http://{bound_host}:{bound_port} "
            f"(journal {journal_dir})",
            file=stream, flush=True,
        )
        daemon.serve_forever()
    finally:
        daemon.close()
    return 0
