"""``repro serve``: the scheduler-as-a-service layer.

* :mod:`repro.serve.api` — the versioned ``repro-serve/1`` wire format
  (request builders, validation, response envelopes); the only module
  clients import.
* :mod:`repro.serve.daemon` — the daemon itself: a transport-free
  :class:`SchedulerService` (op application + journal event-sourcing +
  snapshots + crash recovery) fronted by a single-threaded stdlib
  HTTP/JSON server (:class:`ServeDaemon`).
"""

from .api import SERVE_FORMAT
from .daemon import (
    DEFAULT_OP_SNAPSHOT_INTERVAL,
    SchedulerService,
    ServeDaemon,
    run_serve,
)

__all__ = [
    "DEFAULT_OP_SNAPSHOT_INTERVAL",
    "SERVE_FORMAT",
    "SchedulerService",
    "ServeDaemon",
    "run_serve",
]
