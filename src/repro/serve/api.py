"""``repro-serve/1``: the scheduler service's versioned wire format.

This module is the *entire* client-facing surface of ``repro serve`` —
request builders, request validation, and the response envelopes —
mirroring the ``repro-spec/1`` convention: every body carries a
``format`` tag, unknown or mistagged bodies are rejected loudly, and
clients import **only this module** (plus stdlib ``json`` + an HTTP
client), never engine internals.

Requests
--------
Every request is one JSON object ``{"format": "repro-serve/1", "op":
<verb>, ...payload}``.  The verbs map onto
:class:`~repro.simulation.SchedulerCore`'s surface plus the service
queries:

========= ======================================= ====================
op        payload                                 mutates state
========= ======================================= ====================
submit    ``job``: ``{id, p, q, release[, name]}``  yes (journaled)
cancel    ``job``: job id                           yes (journaled)
advance   ``to``: logical time                      yes (journaled)
reserve   ``start``, ``p``, ``q``                   yes (journaled)
drain     —                                         yes (journaled)
status    —                                         no
windows   —                                         no
state     —                                         no
shutdown  —                                         no
========= ======================================= ====================

Time is **logical**: the daemon's clock moves only when a client sends
``advance`` — never from the wall clock — which is what makes a
recovered daemon byte-identical to an uninterrupted one.

Responses
---------
``{"format": "repro-serve/1", "ok": true, "result": {...}}`` on
success; on failure a structured error envelope reusing the
:mod:`repro.errors` hierarchy::

    {"format": "repro-serve/1", "ok": false,
     "error": {"kind": "protocol" | "scheduling" | "model" | "internal",
               "type": "SchedulingError", "message": "..."}}

``kind`` is the coarse client contract — ``protocol`` means *fix your
request*, ``scheduling``/``model`` mean the scheduler refused the
operation, ``internal`` is a daemon-side bug — while ``type`` names the
concrete :class:`~repro.errors.ReproError` subclass for diagnostics.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Dict, Optional, Tuple

from ..core.job import Job
from ..errors import InvalidInstanceError, SchedulingError, ServeProtocolError

#: Wire-format tag carried by every serve request and response.
SERVE_FORMAT = "repro-serve/1"

#: Ops that mutate the core (and are therefore event-sourced through
#: the journal); everything else is a read-only query.
MUTATING_OPS = ("submit", "cancel", "advance", "reserve", "drain")

#: Every op the protocol knows.
OPS = MUTATING_OPS + ("status", "windows", "state", "shutdown")


# -- request builders (the client API) --------------------------------------

def make_submit(
    id, p, q, release, name: str = ""
) -> Dict:  # noqa: A002 - `id` matches the Job field name
    """A ``submit`` request for one job."""
    job: Dict = {"id": id, "p": p, "q": q, "release": release}
    if name:
        job["name"] = name
    return {"format": SERVE_FORMAT, "op": "submit", "job": job}


def make_cancel(job_id) -> Dict:
    """A ``cancel`` request for a staged or queued job."""
    return {"format": SERVE_FORMAT, "op": "cancel", "job": job_id}


def make_advance(to) -> Dict:
    """An ``advance`` request moving the logical clock to ``to``."""
    return {"format": SERVE_FORMAT, "op": "advance", "to": to}


def make_reserve(start, p, q) -> Dict:
    """A ``reserve`` request carving ``q`` processors out of
    ``[start, start + p)`` — the paper's reservation shape."""
    return {"format": SERVE_FORMAT, "op": "reserve",
            "start": start, "p": p, "q": q}


def make_drain() -> Dict:
    """A ``drain`` request ending the arrival stream."""
    return {"format": SERVE_FORMAT, "op": "drain"}


def make_query(op: str) -> Dict:
    """A read-only query (``status``/``windows``/``state``/``shutdown``)."""
    if op not in OPS or op in MUTATING_OPS:
        raise ServeProtocolError(f"not a query op: {op!r}")
    return {"format": SERVE_FORMAT, "op": op}


# -- request validation (the server side of the same contract) --------------

def _require_number(payload: Dict, key: str, op: str):
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ServeProtocolError(
            f"{op} request field {key!r} must be a number, "
            f"got {type(value).__name__}"
        )
    # JSON has no int/float split the engine can rely on: an integral
    # float from a sloppy client must not demote the int64 kernel
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, Integral):
        return int(value)
    return value


def parse_request(body) -> Tuple[str, Dict]:
    """Validate one request body; returns ``(op, body)``.

    Raises :class:`~repro.errors.ServeProtocolError` on anything
    malformed: wrong or missing ``format`` tag, unknown ``op``, missing
    or mistyped payload fields.  The returned body has its numeric
    fields normalised (integral floats to ``int``).
    """
    if not isinstance(body, dict):
        raise ServeProtocolError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    tag = body.get("format")
    if tag != SERVE_FORMAT:
        raise ServeProtocolError(
            f"unsupported serve format {tag!r}; expected {SERVE_FORMAT!r}"
        )
    op = body.get("op")
    if op not in OPS:
        raise ServeProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    if op == "submit":
        job = body.get("job")
        if not isinstance(job, dict):
            raise ServeProtocolError("submit request carries no job object")
        unknown = set(job) - {"id", "p", "q", "release", "name"}
        if unknown:
            raise ServeProtocolError(
                f"submit job has unknown fields {sorted(unknown)}"
            )
        if "id" not in job:
            raise ServeProtocolError("submit job has no id")
        normalised = {"id": job["id"]}
        for key in ("p", "q", "release"):
            if key not in job:
                raise ServeProtocolError(f"submit job has no {key!r}")
            normalised[key] = _require_number(job, key, "submit")
        name = job.get("name", "")
        if not isinstance(name, str):
            raise ServeProtocolError("submit job name must be a string")
        if name:
            normalised["name"] = name
        body = dict(body, job=normalised)
    elif op == "cancel":
        if "job" not in body:
            raise ServeProtocolError("cancel request names no job id")
    elif op == "advance":
        body = dict(body, to=_require_number(body, "to", "advance"))
    elif op == "reserve":
        body = dict(body)
        for key in ("start", "p", "q"):
            body[key] = _require_number(body, key, "reserve")
    return op, body


def job_from_payload(job: Dict) -> Job:
    """Materialise the :class:`~repro.core.job.Job` a validated
    ``submit`` payload describes (server-side; model validation —
    positive ``p``, positive ``q`` — happens here, in the Job
    constructor)."""
    return Job(
        id=job["id"], p=job["p"], q=job["q"],
        release=job["release"], name=job.get("name", ""),
    )


# -- response envelopes -----------------------------------------------------

def ok_envelope(result: Optional[Dict] = None) -> Dict:
    """The success envelope around one op's result object."""
    return {"format": SERVE_FORMAT, "ok": True, "result": result or {}}


def error_kind(exc: BaseException) -> str:
    """The coarse ``kind`` tag of the error envelope (see module docs)."""
    if isinstance(exc, ServeProtocolError):
        return "protocol"
    if isinstance(exc, SchedulingError):
        return "scheduling"
    if isinstance(exc, InvalidInstanceError):
        return "model"
    return "internal"


def error_envelope(exc: BaseException) -> Dict:
    """The failure envelope for one rejected request."""
    return {
        "format": SERVE_FORMAT,
        "ok": False,
        "error": {
            "kind": error_kind(exc),
            "type": type(exc).__name__,
            "message": str(exc),
        },
    }


def raise_for_envelope(envelope: Dict) -> Dict:
    """Client-side helper: return ``result`` of an ok envelope, raise
    the envelope's error otherwise (:class:`~repro.errors.ServeError`
    family, reconstructed by ``kind``)."""
    from ..errors import ServeError

    if not isinstance(envelope, dict) or envelope.get("format") != SERVE_FORMAT:
        raise ServeProtocolError(
            f"response is not a {SERVE_FORMAT!r} envelope: {envelope!r}"
        )
    if envelope.get("ok"):
        return envelope.get("result", {})
    error = envelope.get("error") or {}
    message = (
        f"{error.get('type', 'ServeError')}: "
        f"{error.get('message', 'unknown error')}"
    )
    if error.get("kind") == "protocol":
        raise ServeProtocolError(message)
    raise ServeError(message)


__all__ = [
    "MUTATING_OPS",
    "OPS",
    "SERVE_FORMAT",
    "error_envelope",
    "error_kind",
    "job_from_payload",
    "make_advance",
    "make_cancel",
    "make_drain",
    "make_query",
    "make_reserve",
    "make_submit",
    "ok_envelope",
    "parse_request",
    "raise_for_envelope",
]
