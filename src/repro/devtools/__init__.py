"""Developer-facing tooling that ships with the source tree.

Nothing in this package is needed to *run* the library — it holds the
repository's own quality gates.  Today that is :mod:`repro.devtools.lint`,
the AST-based invariant checker behind ``repro lint`` (see the README's
"Static analysis" section for the rule catalog).
"""

from __future__ import annotations
