"""Deterministic fault injection for the durability layer.

Every crash-recovery guarantee in :mod:`repro.durability` and the
epoch-sharded replay is backed by a *failpoint*: a named site in the
code (:data:`CATALOG`) where a test can deterministically kill, delay,
or fail the process.  Sites call :func:`fire`, which is a near-no-op
until the failpoint is armed — either programmatically (:func:`arm`)
or through the environment, which is how subprocess kill matrices and
the CI crash-recovery smoke leg work::

    REPRO_FAILPOINTS="journal.record.append:after=5:mode=crash"

The spec is a comma-separated list of ``name:key=value`` clauses.
Recognised keys:

``mode``
    ``crash`` (default; the process SIGKILLs itself — nothing is
    flushed, the honest simulation of ``kill -9``), ``error`` (raises
    :class:`FailpointError`), or ``delay`` (sleeps ``delay`` seconds —
    for exercising hang detection).
``after``
    Skip the first N hits; the failpoint fires on hit N+1.
``count``
    Fire at most this many times (default: unlimited).
``delay``
    Sleep duration in seconds for ``mode=delay`` (default 1.0).
``once``
    Path to a sentinel file claimed with ``O_EXCL`` before firing, so
    the failpoint fires exactly once *across processes*.  Essential for
    epoch-worker crash tests: workers inherit the environment, so
    without ``once`` a retried worker would re-crash forever.

Hit counters are per-process; determinism comes from the sites being
on deterministic code paths (the replay engine), not from the harness.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ReproError

#: Environment variable holding the armed-failpoint spec.
ENV_VAR = "REPRO_FAILPOINTS"

_MODES = ("crash", "error", "delay")


class FailpointError(ReproError):
    """An armed ``mode=error`` failpoint fired, or a spec is malformed."""


@dataclass(frozen=True)
class Failpoint:
    """One registered failure-injection site."""

    name: str
    #: where in the code the site lives (human orientation, not a path)
    site: str
    #: one-line "what firing here simulates" for listings
    description: str


#: Registered failpoints — the single source of truth behind
#: ``repro list --kind failpoints`` and spec validation.  Arming an
#: unregistered name is a loud error: a typo must not silently disarm
#: a kill matrix.
CATALOG: Tuple[Failpoint, ...] = (
    Failpoint(
        "replay.slice.start",
        "durability.journaled — before each journaled slice replays",
        "crash before any of a slice's work happens",
    ),
    Failpoint(
        "replay.slice.commit",
        "durability.journaled — after a slice replays, before its rows "
        "and snapshot are journaled",
        "crash losing a fully-computed slice (must be recomputed)",
    ),
    Failpoint(
        "journal.record.append",
        "durability.journal — before a record is written",
        "crash between records (clean journal tail)",
    ),
    Failpoint(
        "journal.record.torn",
        "durability.journal — mid-record: the frame is half-written "
        "and flushed, then the failpoint fires",
        "crash tearing the journal tail (recovery must truncate it)",
    ),
    Failpoint(
        "journal.snapshot.write",
        "durability.journal — before the snapshot file is written",
        "crash losing a checkpoint before any byte of it is durable",
    ),
    Failpoint(
        "journal.snapshot.rename",
        "durability.atomic — after the snapshot tmp file is written, "
        "before its atomic rename",
        "crash stranding a complete-but-unpublished tmp file",
    ),
    Failpoint(
        "journal.snapshot.marker",
        "durability.journal — after the snapshot file is durable, "
        "before its marker record / segment roll",
        "crash between a snapshot and its commit marker (previous "
        "snapshot must win)",
    ),
    Failpoint(
        "journal.commit",
        "durability.journaled — before the final commit record",
        "crash after all rows are journaled but the run is uncommitted",
    ),
    Failpoint(
        "store.append",
        "run.store.JsonlStore.append — before a row is appended",
        "crash between the journal and the visible JSONL store",
    ),
    Failpoint(
        "epoch.slice.run",
        "simulation.replay worker — before an epoch slice replays",
        "kill or hang one epoch worker (self-healing must recover)",
    ),
    Failpoint(
        "epoch.checkpoint.publish",
        "simulation.replay worker — before the frontier checkpoint "
        "is published to the relay",
        "kill a worker after its slice but before its handoff",
    ),
    Failpoint(
        "epoch.error.mark",
        "simulation.replay worker — before the structured error "
        "record is written",
        "kill a failing worker before it can even report the failure",
    ),
    Failpoint(
        "serve.op.apply",
        "serve.daemon — after a request is validated, before its op is "
        "applied to the live SchedulerCore",
        "kill the daemon with an accepted-but-unapplied op (the client "
        "saw no ack, so recovery must not replay it)",
    ),
    Failpoint(
        "serve.op.ack",
        "serve.daemon — after an op is applied and journaled, before "
        "its response is written to the client",
        "kill the daemon between durability and the ack (the op must "
        "survive recovery even though the client never heard back)",
    ),
    Failpoint(
        "uncertainty.requeue",
        "simulation.scheduler_core — when a job fails mid-run, before "
        "its capacity is released and it re-enters the queue",
        "kill or delay at the failure instant (requeue state must "
        "survive checkpoints and epoch handoffs)",
    ),
    Failpoint(
        "uncertainty.overrun_kill",
        "simulation.scheduler_core — when a job overruns its estimate "
        "and the kill policy terminates it",
        "kill or delay at the walltime-kill instant (kill counters and "
        "window rows must stay consistent across recovery)",
    ),
)

CATALOG_BY_NAME: Dict[str, Failpoint] = {fp.name: fp for fp in CATALOG}


@dataclass
class ArmedFailpoint:
    """Arming state + per-process hit counters for one failpoint."""

    name: str
    mode: str = "crash"
    after: int = 0
    count: Optional[int] = None
    delay: float = 1.0
    once: Optional[str] = None
    hits: int = 0
    fired: int = 0


_armed: Dict[str, ArmedFailpoint] = {}
#: spec string the current ``_armed`` table was parsed from (None =
#: never synced); invalidated whenever the environment changes.
_env_spec: Optional[str] = None
#: True once :func:`arm`/:func:`disarm` was called — programmatic
#: arming then owns the table and the environment is ignored until
#: :func:`reset`.
_manual: bool = False


def parse_spec(spec: str) -> Dict[str, ArmedFailpoint]:
    """Parse a ``REPRO_FAILPOINTS`` spec string (loud on any mistake)."""
    table: Dict[str, ArmedFailpoint] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        name, _, rest = clause.partition(":")
        if name not in CATALOG_BY_NAME:
            known = ", ".join(sorted(CATALOG_BY_NAME))
            raise FailpointError(
                f"unknown failpoint {name!r} in {ENV_VAR} (known: {known})"
            )
        fp = ArmedFailpoint(name=name)
        if rest:
            for item in rest.split(":"):
                key, eq, value = item.partition("=")
                if not eq:
                    raise FailpointError(
                        f"failpoint {name!r}: malformed option {item!r} "
                        "(expected key=value)"
                    )
                if key == "mode":
                    if value not in _MODES:
                        raise FailpointError(
                            f"failpoint {name!r}: mode must be one of "
                            f"{_MODES}, got {value!r}"
                        )
                    fp.mode = value
                elif key == "after":
                    fp.after = int(value)
                elif key == "count":
                    fp.count = int(value)
                elif key == "delay":
                    fp.delay = float(value)
                elif key == "once":
                    fp.once = value
                else:
                    raise FailpointError(
                        f"failpoint {name!r}: unknown option {key!r}"
                    )
        table[name] = fp
    return table


def arm(
    name: str,
    mode: str = "crash",
    *,
    after: int = 0,
    count: Optional[int] = None,
    delay: float = 1.0,
    once: Optional[str] = None,
) -> None:
    """Arm one failpoint programmatically (overrides the environment)."""
    global _manual
    if name not in CATALOG_BY_NAME:
        known = ", ".join(sorted(CATALOG_BY_NAME))
        raise FailpointError(f"unknown failpoint {name!r} (known: {known})")
    if mode not in _MODES:
        raise FailpointError(
            f"failpoint {name!r}: mode must be one of {_MODES}, got {mode!r}"
        )
    if not _manual:
        _armed.clear()
        _manual = True
    _armed[name] = ArmedFailpoint(
        name=name, mode=mode, after=after, count=count, delay=delay, once=once
    )


def disarm(name: str) -> None:
    """Remove one programmatically-armed failpoint."""
    global _manual
    _manual = True
    _armed.pop(name, None)


def reset() -> None:
    """Disarm everything; the environment is re-read on the next fire."""
    global _manual, _env_spec
    _manual = False
    _env_spec = None
    _armed.clear()


def armed_names() -> Tuple[str, ...]:
    """Names currently armed (after syncing with the environment)."""
    _sync()
    return tuple(sorted(_armed))


def _sync() -> None:
    """Refresh ``_armed`` from the environment when it changed.

    Counters survive between calls (the table is only rebuilt when the
    spec string itself changes), so ``after=N`` counts process-wide.
    """
    global _env_spec
    if _manual:
        return
    spec = os.environ.get(ENV_VAR, "")
    if spec != _env_spec:
        _armed.clear()
        _armed.update(parse_spec(spec))
        _env_spec = spec


def _claim_once(path: str) -> bool:
    """Atomically claim a cross-process one-shot sentinel file."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def fire(name: str, before: Optional[Callable[[], None]] = None) -> None:
    """Trigger failpoint ``name`` if armed; otherwise a near-no-op.

    ``before`` runs only when the failpoint actually fires, just ahead
    of the crash/error/delay action — sites use it to stage a partial
    write (the torn-tail simulation) that must not happen on ordinary
    passes through the site.
    """
    _sync()
    if not _armed:
        return
    fp = _armed.get(name)
    if fp is None:
        return
    fp.hits += 1
    if fp.hits <= fp.after:
        return
    if fp.count is not None and fp.fired >= fp.count:
        return
    if fp.once is not None and not _claim_once(fp.once):
        return
    fp.fired += 1
    if before is not None:
        before()
    if fp.mode == "delay":
        time.sleep(fp.delay)
        return
    if fp.mode == "error":
        raise FailpointError(f"failpoint {name!r} fired (mode=error)")
    # crash: the honest kill -9 — no flushing, no atexit, no cleanup.
    os.kill(os.getpid(), signal.SIGKILL)


def describe() -> Tuple[str, ...]:
    """One formatted line per registered failpoint (CLI listing)."""
    return tuple(
        f"{fp.name}: {fp.description} [{fp.site}]" for fp in CATALOG
    )
