"""Rule metadata and the violation record every checker emits.

The linter's unit of output is a :class:`Violation` — an exact
``file:line:col`` span plus a rule code — and its unit of documentation
is a :class:`Rule`.  The :data:`RULES` catalog is the single source of
truth: ``repro list --kind lint-rules`` prints it, the engine validates
``--rule`` filters against it, and the README's rule table is generated
from the same wording.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: A rule code: ``RPL`` + family digit + two digits (``RPL203``).
CODE_RE = re.compile(r"RPL\d{3}\Z")

#: A family pattern as accepted by ``--rule`` and ``noqa``: ``RPL2xx``.
FAMILY_RE = re.compile(r"RPL\d(?:xx|XX)\Z")


@dataclass(frozen=True)
class Rule:
    """One checkable invariant."""

    code: str
    #: short kebab-case handle (stable; used in messages and docs)
    name: str
    #: one-line "what it catches" for listings
    summary: str
    #: which documented contract the rule enforces
    contract: str


@dataclass(frozen=True)
class Violation:
    """One rule hit at an exact source span."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


RULES: Tuple[Rule, ...] = (
    # -- RPL1xx: determinism ------------------------------------------------
    Rule(
        "RPL101",
        "wall-clock-call",
        "wall-clock or OS-entropy call in deterministic engine code",
        "byte-identical replay: engine output may not depend on when or "
        "where it runs (time.time / datetime.now / os.urandom)",
    ),
    Rule(
        "RPL102",
        "unseeded-rng",
        "module-level random.* call (or seedless random.Random())",
        "byte-identical replay: every RNG must be a seeded random.Random "
        "instance",
    ),
    Rule(
        "RPL103",
        "unordered-set-iteration",
        "iteration over a bare set feeding ordered output",
        "byte-identical replay: set iteration order is salted per process; "
        "sort first",
    ),
    # -- RPL2xx: int-grid exactness ----------------------------------------
    Rule(
        "RPL201",
        "float-literal",
        "float literal inside a declared integer-kernel scope",
        "ArrayProfile/timebase int64-grid contract: kernel arithmetic stays "
        "exact",
    ),
    Rule(
        "RPL202",
        "true-division",
        "true division (/) inside a declared integer-kernel scope",
        "ArrayProfile/timebase int64-grid contract: use // or Fraction, "
        "never float division",
    ),
    Rule(
        "RPL203",
        "float-coercion",
        "float() coercion inside a declared integer-kernel scope",
        "ArrayProfile/timebase int64-grid contract: kernel values are never "
        "coerced to float",
    ),
    # -- RPL3xx: backend-protocol drift ------------------------------------
    Rule(
        "RPL301",
        "missing-primitive",
        "backend does not implement a protocol primitive",
        "ProfileBackend protocol: every method whose base body is `raise "
        "NotImplementedError` must exist in each backend",
    ),
    Rule(
        "RPL302",
        "signature-drift",
        "backend override's signature differs from the protocol's",
        "ProfileBackend protocol: overrides keep the protocol's parameter "
        "names, order and defaults",
    ),
    Rule(
        "RPL303",
        "unprotocoled-method",
        "backend grew a public method the protocol does not declare",
        "ProfileBackend protocol: backends stay method-for-method aligned; "
        "new surface lands in base.py first",
    ),
    Rule(
        "RPL304",
        "missing-kernel-override",
        "backend lost a fast-path override the config declares required",
        "replay-engine kernel contract: the array backend's vectorised "
        "overrides may not silently fall back to the generic scalar loop",
    ),
    # -- RPL4xx: multiprocessing safety ------------------------------------
    Rule(
        "RPL401",
        "unpicklable-worker",
        "lambda or nested function handed to a process pool",
        "sharded replay/runner contract: worker callables are module-level "
        "so ProcessPoolExecutor can pickle them",
    ),
    Rule(
        "RPL402",
        "non-atomic-durable-write",
        "truncating write to a durable file outside the atomic helper",
        "crash-safety contract: files a crash-recovery scan or another "
        "process may read are published via repro.durability.atomic "
        "(tmp + os.replace), never open(..., 'w'/'wb') in place",
    ),
    # -- RPL5xx: registry hygiene ------------------------------------------
    Rule(
        "RPL501",
        "non-literal-registry-name",
        "registry register call whose name is not a string literal",
        "registry contract: names are greppable literals (forwarding a "
        "parameter through a wrapper is exempt)",
    ),
    Rule(
        "RPL502",
        "duplicate-registry-name",
        "the same literal name registered at two different sites",
        "registry contract: one name, one owner — accidental collisions "
        "were previously invisible",
    ),
    Rule(
        "RPL503",
        "engine-internal-reach-in",
        "attribute access on a declared engine-internal name outside "
        "its owner file",
        "engine embedding contract: drivers program against "
        "repro.simulation.SchedulerCore, never the replay engine's "
        "fused loop internals (_run_fused/_run_batched/_run_generic)",
    ),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in RULES}


def expand_rule_selector(selector: str) -> List[str]:
    """Rule codes matched by ``selector`` (exact ``RPL203`` or family
    ``RPL2xx``); empty when nothing matches, raises on malformed input."""
    token = selector.strip()
    if CODE_RE.match(token):
        return [token] if token in RULES_BY_CODE else []
    if FAMILY_RE.match(token):
        prefix = token[:4]
        return [rule.code for rule in RULES if rule.code.startswith(prefix)]
    raise ValueError(
        f"malformed rule selector {selector!r} (expected RPLnnn or RPLnxx)"
    )
