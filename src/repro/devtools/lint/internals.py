"""RPL503: reach-ins to declared engine internals.

The replay engine's fused loops (``ReplayEngine._run_fused`` /
``_run_batched`` / ``_run_generic``) are implementation twins of one
event-application loop, kept byte-identical by differential tests —
they are not an extension surface.  Code that wants to drive the
scheduler embeds :class:`repro.simulation.SchedulerCore` (or registers
a policy) instead of calling into the loops directly, because a direct
caller silently bypasses the engine's dispatch (batch/fused/backend
selection) and the identity matrix stops protecting it.

Which attribute names are internal, and which files own them, is
repository knowledge::

    [tool.repro-lint]
    engine-internal-names = ["_run_fused", "_run_batched", "_run_generic"]
    engine-internal-owners = ["src/repro/simulation/replay.py"]

Any attribute access on a declared name outside an owner file is
flagged.  The check is syntactic (``x._run_fused`` flags regardless of
what ``x`` is): the names are private and engine-specific, so a
collision is overwhelmingly more likely to be a reach-in than an
unrelated API — and a false positive can carry a ``repro: noqa
RPL503`` with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import LintConfig
from .model import Violation
from .source import SourceFile


def check_internals(
    source: SourceFile, config: LintConfig
) -> Iterator[Violation]:
    """RPL503 on one module (owner files are exempt)."""
    names = frozenset(config.engine_internal_names)
    if not names or source.in_any(config.engine_internal_owners):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute) and node.attr in names:
            yield Violation(
                source.rel, node.lineno, node.col_offset, "RPL503",
                f"reach-in to engine internal {node.attr!r}; drive the "
                "scheduler through repro.simulation.SchedulerCore (or a "
                "registered policy) instead",
            )
