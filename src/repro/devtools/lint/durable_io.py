"""RPL402 — atomic publication of durable files.

The durability layer's crash-safety argument rests on one discipline:
every file a crash-recovery scan or a concurrent reader may observe —
checkpoints, journal segments, snapshots, rewritten stores — is
published whole, via :mod:`repro.durability.atomic` (write to a
same-directory tmp file, fsync, ``os.replace``).  A truncating
``open(path, "w")`` in those modules silently reintroduces the
half-written-file window the kill-anywhere tests exist to rule out, and
nothing fails until a crash lands inside it.

The rule flags, inside the configured ``durable-write-paths``:

* ``open(...)`` calls whose literal mode contains ``w`` or ``x``
  (append mode is exempt — appends are the journal's own format, and a
  torn append is what the recovery scan repairs);
* ``Path.write_bytes`` / ``Path.write_text`` style attribute calls,
  which truncate by definition.

The atomic helper's own tmp-file leg carries a ``noqa`` with its
justification — the one place the pattern is load-bearing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .config import LintConfig
from .model import Violation
from .source import SourceFile

_WRITE_ATTRS = frozenset({"write_bytes", "write_text"})


def _literal_mode(node: ast.Call) -> Optional[str]:
    """The mode argument of an ``open`` call, when given as a string
    literal (positionally or as ``mode=``); ``None`` when absent or
    dynamic — a dynamic mode is not flagged rather than guessed at."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _is_open(node: ast.Call, source: SourceFile) -> bool:
    if isinstance(node.func, ast.Name) and node.func.id == "open":
        return True
    resolved = source.imports.resolve(node.func)
    return resolved in {"io.open", "os.fdopen", "gzip.open"}


def check_durable_io(
    source: SourceFile, config: LintConfig
) -> Iterator[Violation]:
    if not source.in_any(config.durable_write_paths):
        return
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if _is_open(node, source):
            mode = _literal_mode(node)
            if mode is not None and any(c in mode for c in "wx"):
                yield Violation(
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    "RPL402",
                    f"truncating open(..., {mode!r}) on a durable path; a "
                    "crash mid-write leaves a half-written file for the "
                    "recovery scan — publish via repro.durability.atomic "
                    "(tmp + os.replace) instead",
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_ATTRS
        ):
            yield Violation(
                source.rel,
                node.lineno,
                node.col_offset,
                "RPL402",
                f".{node.func.attr}() truncates in place on a durable "
                "path; publish via repro.durability.atomic "
                "(tmp + os.replace) instead",
            )
