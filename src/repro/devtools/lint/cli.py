"""Command-line front end for ``repro lint``.

Exit codes: ``0`` clean, ``1`` violations (or unparseable files) found,
``2`` the tool itself was misused (broken ``[tool.repro-lint]`` table,
unknown ``--rule`` selector).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .config import LintConfigError
from .engine import run_lint

_DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(prog="repro lint")
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks, "
        "whichever exist)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="terse CI mode: one line per violation, no summary line",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the report as JSON (schema version 1)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="RPLxxx",
        help="only report this rule code or family (RPL203 or RPL2xx); "
        "repeatable",
    )
    return parser


def _default_paths() -> List[Path]:
    existing = [Path(name) for name in _DEFAULT_PATHS if Path(name).is_dir()]
    return existing or [Path(".")]


def run(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths] or _default_paths()
    try:
        report = run_lint(paths, rules=args.rule)
    except (LintConfigError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(report.render_json())
    else:
        text = report.render_text(verbose=not args.check)
        if text:
            print(text)
    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
