"""``# repro: noqa`` suppression parsing.

Two forms, both carrying explicit rule codes (exact ``RPL203`` or a
family ``RPL2xx``) and an optional ``--``-separated justification:

* inline — suppresses matching violations on the comment's line::

      return lo + (work - acc) / cap  # repro: noqa RPL202 -- why

* region — a ``noqa-begin`` / ``noqa-end`` pair suppresses matching
  violations on every line between the markers (inclusive)::

      # repro: noqa-begin RPL2xx -- float metric accounting
      ...
      # repro: noqa-end RPL2xx

A bare ``# repro: noqa`` (no codes) suppresses every rule on its line;
regions must name codes.  Comments are found with :mod:`tokenize`, so a
``#`` inside a string never reads as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import List, Tuple

from .model import CODE_RE, FAMILY_RE

_MARKER_RE = re.compile(r"#\s*repro:\s*noqa(?P<kind>-begin|-end)?(?P<rest>[^#]*)")


@dataclass(frozen=True)
class Suppression:
    """One suppressed line range with its code selectors."""

    start: int
    end: int
    #: exact codes ("RPL203") and family prefixes ("RPL2"); empty = all
    codes: Tuple[str, ...]
    prefixes: Tuple[str, ...]

    def matches(self, line: int, code: str) -> bool:
        if not self.start <= line <= self.end:
            return False
        if not self.codes and not self.prefixes:
            return True
        return code in self.codes or any(
            code.startswith(prefix) for prefix in self.prefixes
        )


class SuppressionError(ValueError):
    """A malformed suppression comment (loud beats silently ignored)."""


def _parse_selectors(rest: str, line: int) -> Tuple[List[str], List[str]]:
    codes: List[str] = []
    prefixes: List[str] = []
    spec = rest.split("--", 1)[0]  # anything after -- is justification
    for token in re.split(r"[\s,]+", spec.strip()):
        if not token:
            continue
        if CODE_RE.match(token):
            codes.append(token)
        elif FAMILY_RE.match(token):
            prefixes.append(token[:4])
        else:
            raise SuppressionError(
                f"line {line}: unrecognised rule selector {token!r} in "
                "suppression comment (expected RPLnnn or RPLnxx)"
            )
    return codes, prefixes


def parse_suppressions(source: str) -> List[Suppression]:
    """Every suppression declared in ``source``.

    Raises :class:`SuppressionError` on malformed selectors, a region
    without codes, or an unterminated/unmatched region marker.
    """
    suppressions: List[Suppression] = []
    open_regions: List[Tuple[int, Tuple[str, ...], Tuple[str, ...]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # the engine reports the parse error itself
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        codes, prefixes = _parse_selectors(match.group("rest"), line)
        kind = match.group("kind")
        if kind is None:
            suppressions.append(Suppression(line, line, tuple(codes), tuple(prefixes)))
        elif kind == "-begin":
            if not codes and not prefixes:
                raise SuppressionError(
                    f"line {line}: noqa-begin must name rule codes"
                )
            open_regions.append((line, tuple(codes), tuple(prefixes)))
        else:
            if not open_regions:
                raise SuppressionError(
                    f"line {line}: noqa-end without a matching noqa-begin"
                )
            start, r_codes, r_prefixes = open_regions.pop()
            suppressions.append(Suppression(start, line, r_codes, r_prefixes))
    if open_regions:
        raise SuppressionError(
            f"line {open_regions[-1][0]}: noqa-begin region never closed"
        )
    return suppressions


def is_suppressed(suppressions: List[Suppression], line: int, code: str) -> bool:
    return any(s.matches(line, code) for s in suppressions)
