"""``[tool.repro-lint]`` configuration.

The linter is contract-driven: *which* files hold the determinism
contract, the integer-kernel contract and the backend protocol is
repository knowledge, so it lives in ``pyproject.toml`` next to the other
tool tables — not in the checker.  All paths are POSIX-style and relative
to the directory containing the ``pyproject.toml`` (the *config root*).

Recognised keys (all optional; a missing table disables the scoped rule
families and leaves only the everywhere-rules RPL4xx/RPL5xx active)::

    [tool.repro-lint]
    determinism-paths = ["src/repro/simulation", ...]   # RPL1xx scope
    int-kernel-modules = ["src/repro/core/timebase.py"] # RPL2xx: whole file
    int-kernel-functions = [                            # RPL2xx: one scope
        "src/repro/simulation/replay.py::ReplayState",  #   (class = all
    ]                                                   #   of its methods)
    registry-register-names = ["register", ...]         # RPL501/RPL502
    registry-duplicate-paths = ["src/repro"]            # RPL502 scope
    durable-write-paths = ["src/repro/durability", ...] # RPL402 scope
    engine-internal-names = ["_run_fused", ...]         # RPL503: flagged
    engine-internal-owners = ["src/.../replay.py"]      #   outside owners

    [tool.repro-lint.protocol]                          # RPL3xx
    base = "src/repro/core/profiles/base.py::ProfileBackend"
    backends = ["src/repro/core/profiles/list_backend.py::ListProfile", ...]
    [tool.repro-lint.protocol.require-override]         # RPL304
    "src/repro/core/profiles/array_backend.py::ArrayProfile" = ["fits", ...]
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ReproError


class LintConfigError(ReproError):
    """The ``[tool.repro-lint]`` table is malformed."""


#: Default callable names treated as registry registration points.
DEFAULT_REGISTER_NAMES = (
    "register",
    "register_workload",
    "register_policy",
    "register_metric",
)


@dataclass(frozen=True)
class ScopeRef:
    """A ``path/to/module.py::Qual.Name`` reference (``qualname=None``
    refers to the whole module)."""

    path: str
    qualname: Optional[str] = None

    @classmethod
    def parse(cls, text: str, key: str) -> "ScopeRef":
        if "::" in text:
            path, _, qualname = text.partition("::")
            if not path or not qualname:
                raise LintConfigError(
                    f"{key}: malformed scope {text!r} "
                    "(expected 'path.py::QualName')"
                )
            return cls(path=path, qualname=qualname)
        return cls(path=text)


@dataclass(frozen=True)
class LintConfig:
    """Resolved repo-lint configuration (paths relative to ``root``)."""

    root: Path
    determinism_paths: Tuple[str, ...] = ()
    int_kernel_modules: Tuple[str, ...] = ()
    int_kernel_functions: Tuple[ScopeRef, ...] = ()
    protocol_base: Optional[ScopeRef] = None
    protocol_backends: Tuple[ScopeRef, ...] = ()
    require_override: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    register_names: Tuple[str, ...] = DEFAULT_REGISTER_NAMES
    registry_duplicate_paths: Tuple[str, ...] = ()
    durable_write_paths: Tuple[str, ...] = ()
    engine_internal_names: Tuple[str, ...] = ()
    engine_internal_owners: Tuple[str, ...] = ()


def _string_list(table: Dict[str, object], key: str) -> Tuple[str, ...]:
    raw = table.get(key, [])
    if not isinstance(raw, list) or not all(isinstance(v, str) for v in raw):
        raise LintConfigError(f"[tool.repro-lint] {key} must be a string list")
    return tuple(raw)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    probe = start if start.is_dir() else start.parent
    for directory in (probe, *probe.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(pyproject: Path) -> LintConfig:
    """The :class:`LintConfig` declared by one ``pyproject.toml``."""
    with open(pyproject, "rb") as fh:
        document = tomllib.load(fh)
    tool = document.get("tool", {})
    if not isinstance(tool, dict):
        raise LintConfigError("pyproject [tool] is not a table")
    table = tool.get("repro-lint", {})
    if not isinstance(table, dict):
        raise LintConfigError("[tool.repro-lint] is not a table")
    root = pyproject.parent

    kernel_functions = tuple(
        ScopeRef.parse(entry, "int-kernel-functions")
        for entry in _string_list(table, "int-kernel-functions")
    )
    for ref in kernel_functions:
        if ref.qualname is None:
            raise LintConfigError(
                f"int-kernel-functions entry {ref.path!r} names no "
                "::QualName; whole modules go in int-kernel-modules"
            )

    protocol_base: Optional[ScopeRef] = None
    protocol_backends: Tuple[ScopeRef, ...] = ()
    require_override: Dict[str, Tuple[str, ...]] = {}
    protocol = table.get("protocol", {})
    if not isinstance(protocol, dict):
        raise LintConfigError("[tool.repro-lint.protocol] is not a table")
    if protocol:
        base_raw = protocol.get("base")
        if not isinstance(base_raw, str):
            raise LintConfigError("protocol.base must be 'path.py::Class'")
        protocol_base = ScopeRef.parse(base_raw, "protocol.base")
        protocol_backends = tuple(
            ScopeRef.parse(entry, "protocol.backends")
            for entry in _string_list(protocol, "backends")
        )
        for ref in (protocol_base, *protocol_backends):
            if ref.qualname is None:
                raise LintConfigError(
                    f"protocol scope {ref.path!r} names no ::Class"
                )
        overrides = protocol.get("require-override", {})
        if not isinstance(overrides, dict):
            raise LintConfigError(
                "[tool.repro-lint.protocol.require-override] is not a table"
            )
        for scope_text, methods in overrides.items():
            if not isinstance(methods, list) or not all(
                isinstance(name, str) for name in methods
            ):
                raise LintConfigError(
                    f"require-override[{scope_text!r}] must be a string list"
                )
            require_override[scope_text] = tuple(methods)

    register_names = _string_list(table, "registry-register-names")
    return LintConfig(
        root=root,
        determinism_paths=_string_list(table, "determinism-paths"),
        int_kernel_modules=_string_list(table, "int-kernel-modules"),
        int_kernel_functions=kernel_functions,
        protocol_base=protocol_base,
        protocol_backends=protocol_backends,
        require_override=require_override,
        register_names=register_names or DEFAULT_REGISTER_NAMES,
        registry_duplicate_paths=_string_list(table, "registry-duplicate-paths"),
        durable_write_paths=_string_list(table, "durable-write-paths"),
        engine_internal_names=_string_list(table, "engine-internal-names"),
        engine_internal_owners=_string_list(table, "engine-internal-owners"),
    )


def resolve_config(paths: Sequence[Path]) -> LintConfig:
    """Locate and load the config governing ``paths`` (nearest pyproject
    above the first path, then the CWD); empty config when none exists."""
    candidates: List[Path] = [p.resolve() for p in paths]
    candidates.append(Path.cwd())
    for start in candidates:
        pyproject = find_pyproject(start)
        if pyproject is not None:
            return load_config(pyproject)
    return LintConfig(root=Path.cwd())
