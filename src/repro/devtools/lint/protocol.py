"""RPL3xx — backend-protocol drift.

The three profile backends must stay method-for-method aligned with the
:class:`~repro.core.profiles.base.ProfileBackend` protocol as it grows
(``try_reserve``, ``fits_many_at`` and ``try_reserve_many`` each landed
in separate PRs; drift was previously caught by hand).  This checker
compares the *ASTs* of the protocol class and each backend class:

* **RPL301** — a protocol *primitive* (base body is just ``raise
  NotImplementedError``) is missing from a backend;
* **RPL302** — a backend override's parameter names/order/defaults
  differ from the protocol's (annotations are not compared: times are
  duck-typed exact numerics);
* **RPL303** — a backend grew a public method the protocol does not
  declare (new surface lands in ``base.py`` first, so the other
  backends cannot silently miss it);
* **RPL304** — a backend lost a fast-path override that
  ``[tool.repro-lint.protocol.require-override]`` declares required
  (the replay engine's throughput depends on the array backend's
  vectorised overrides; losing one falls back to the generic scalar
  loop with no functional failure).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .config import LintConfig, LintConfigError, ScopeRef
from .model import Violation
from .source import SourceFile

_METHOD_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_KIND_DECORATORS = ("property", "classmethod", "staticmethod")


@dataclass(frozen=True)
class MethodShape:
    """The drift-relevant shape of one method."""

    name: str
    lineno: int
    col: int
    #: "property" / "classmethod" / "staticmethod" / "method"
    kind: str
    #: positional parameter names (implicit self/cls dropped)
    params: Tuple[str, ...]
    #: how many trailing positional parameters carry defaults
    defaults: int
    vararg: Optional[str]
    #: keyword-only (name, has_default) pairs
    kwonly: Tuple[Tuple[str, bool], ...]
    kwarg: Optional[str]
    is_primitive: bool

    def signature_text(self) -> str:
        parts: List[str] = []
        required = len(self.params) - self.defaults
        for i, name in enumerate(self.params):
            parts.append(name if i < required else f"{name}=...")
        if self.vararg:
            parts.append(f"*{self.vararg}")
        elif self.kwonly:
            parts.append("*")
        for name, has_default in self.kwonly:
            parts.append(f"{name}=..." if has_default else name)
        if self.kwarg:
            parts.append(f"**{self.kwarg}")
        return f"({', '.join(parts)})"

    def drifts_from(self, other: "MethodShape") -> bool:
        return (
            self.kind != other.kind
            or self.params != other.params
            or self.defaults != other.defaults
            or self.vararg != other.vararg
            or self.kwonly != other.kwonly
            or self.kwarg != other.kwarg
        )


def _decorator_kind(node: ast.AST) -> str:
    if isinstance(node, _METHOD_NODES):
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Name) and decorator.id in _KIND_DECORATORS:
                return decorator.id
    return "method"


def _is_primitive_body(body: List[ast.stmt]) -> bool:
    statements = list(body)
    if (
        statements
        and isinstance(statements[0], ast.Expr)
        and isinstance(statements[0].value, ast.Constant)
        and isinstance(statements[0].value.value, str)
    ):
        statements = statements[1:]  # docstring
    if len(statements) != 1 or not isinstance(statements[0], ast.Raise):
        return False
    exc = statements[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _method_shape(node: ast.AST) -> Optional[MethodShape]:
    if not isinstance(node, _METHOD_NODES):
        return None
    kind = _decorator_kind(node)
    args = node.args
    params = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if kind in ("method", "property", "classmethod") and params:
        params = params[1:]  # implicit self / cls
    return MethodShape(
        name=node.name,
        lineno=node.lineno,
        col=node.col_offset,
        kind=kind,
        params=tuple(params),
        defaults=len(args.defaults),
        vararg=args.vararg.arg if args.vararg else None,
        kwonly=tuple(
            (a.arg, d is not None)
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
        ),
        kwarg=args.kwarg.arg if args.kwarg else None,
        is_primitive=_is_primitive_body(node.body),
    )


@dataclass
class ClassShape:
    """Public method shapes of one class, plus its own span."""

    ref: ScopeRef
    lineno: int
    col: int
    methods: Dict[str, MethodShape]


def _class_shape(source: SourceFile, ref: ScopeRef) -> ClassShape:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name == ref.qualname:
            methods: Dict[str, MethodShape] = {}
            for child in node.body:
                shape = _method_shape(child)
                if shape is not None and not shape.name.startswith("_"):
                    methods[shape.name] = shape
            return ClassShape(
                ref=ref,
                lineno=node.lineno,
                col=node.col_offset,
                methods=methods,
            )
    raise LintConfigError(
        f"protocol scope {ref.path}::{ref.qualname} not found "
        "(class missing from the module)"
    )


def check_protocol(
    config: LintConfig,
    load: Callable[[str], Optional[SourceFile]],
) -> Iterator[Violation]:
    """Run the cross-module drift check.

    ``load`` maps a config-relative path to a parsed :class:`SourceFile`
    (the engine serves scanned files from memory and the rest from
    disk); a ``None`` result raises — a configured protocol file that
    does not parse is itself drift.
    """
    if config.protocol_base is None:
        return
    base_source = load(config.protocol_base.path)
    if base_source is None:
        raise LintConfigError(
            f"protocol base {config.protocol_base.path!r} is missing or "
            "does not parse"
        )
    base = _class_shape(base_source, config.protocol_base)
    primitives = {name for name, shape in base.methods.items() if shape.is_primitive}
    for backend_ref in config.protocol_backends:
        backend_source = load(backend_ref.path)
        if backend_source is None:
            raise LintConfigError(
                f"protocol backend {backend_ref.path!r} is missing or "
                "does not parse"
            )
        backend = _class_shape(backend_source, backend_ref)
        rel = backend_source.rel
        for name in sorted(primitives - set(backend.methods)):
            yield Violation(
                rel,
                backend.lineno,
                backend.col,
                "RPL301",
                f"{backend_ref.qualname} does not implement protocol "
                f"primitive {name}() (base raises NotImplementedError)",
            )
        for name, shape in sorted(backend.methods.items()):
            base_shape = base.methods.get(name)
            if base_shape is None:
                yield Violation(
                    rel,
                    shape.lineno,
                    shape.col,
                    "RPL303",
                    f"{backend_ref.qualname}.{name}() is not part of the "
                    f"{config.protocol_base.qualname} protocol; declare it "
                    f"in {config.protocol_base.path} first so every "
                    "backend stays aligned",
                )
            elif shape.drifts_from(base_shape):
                yield Violation(
                    rel,
                    shape.lineno,
                    shape.col,
                    "RPL302",
                    f"{backend_ref.qualname}.{name}{shape.signature_text()} "
                    "drifts from the protocol signature "
                    f"{base_shape.signature_text()}",
                )
        scope_key = f"{backend_ref.path}::{backend_ref.qualname}"
        for name in config.require_override.get(scope_key, ()):
            if name not in backend.methods:
                yield Violation(
                    rel,
                    backend.lineno,
                    backend.col,
                    "RPL304",
                    f"{backend_ref.qualname} must override {name}() (a "
                    "declared fast-path kernel method; without it the "
                    "generic scalar fallback silently takes over)",
                )
