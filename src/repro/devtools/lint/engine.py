"""Lint engine: file discovery, checker orchestration, reporting.

One :func:`run_lint` call resolves the ``[tool.repro-lint]`` config,
parses every target file once, runs the per-file checkers, then the
cross-file checkers (protocol drift reads the configured backend files
even when they are outside the scanned set), applies ``noqa``
suppressions, and returns a :class:`LintReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

from .config import LintConfig, resolve_config
from .determinism import check_determinism
from .durable_io import check_durable_io
from .exactness import check_exactness
from .internals import check_internals
from .model import Violation, expand_rule_selector
from .multiproc import check_multiproc
from .protocol import check_protocol
from .registries import (
    RegisterCall,
    check_register_literals,
    collect_register_calls,
    duplicate_violations,
)
from .source import SourceFile
from .suppress import SuppressionError, is_suppressed

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})

CheckFn = Callable[[SourceFile, LintConfig], Iterator[Violation]]

#: Per-file checkers, run on every scanned module in order.
PER_FILE_CHECKS: Sequence[CheckFn] = (
    check_determinism,
    check_durable_io,
    check_exactness,
    check_internals,
    check_multiproc,
    check_register_literals,
)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation]
    errors: List[str]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors

    def render_text(self, verbose: bool = False) -> str:
        lines = [violation.render() for violation in self.violations]
        lines.extend(f"error: {message}" for message in self.errors)
        if verbose or not lines:
            noun = "file" if self.files_checked == 1 else "files"
            if self.clean:
                lines.append(f"checked {self.files_checked} {noun}: clean")
            else:
                lines.append(
                    f"checked {self.files_checked} {noun}: "
                    f"{len(self.violations)} violation(s), "
                    f"{len(self.errors)} error(s)"
                )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "files_checked": self.files_checked,
                "clean": self.clean,
                "violations": [v.as_json() for v in self.violations],
                "errors": list(self.errors),
            },
            indent=2,
            sort_keys=True,
        )


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through verbatim),
    deterministic order, cache/VCS directories skipped."""
    found: Set[Path] = set()
    for path in paths:
        resolved = path.resolve()
        if resolved.is_file():
            found.add(resolved)
            continue
        for candidate in resolved.rglob("*.py"):
            parts = candidate.relative_to(resolved).parts
            if any(part in _SKIP_DIRS for part in parts[:-1]):
                continue
            found.add(candidate)
    return sorted(found)


def _rel_to_root(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _selected_codes(rules: Optional[Sequence[str]]) -> Optional[Set[str]]:
    if not rules:
        return None
    selected: Set[str] = set()
    for selector in rules:
        matched = expand_rule_selector(selector)
        if not matched:
            raise ValueError(f"unknown rule {selector!r}")
        selected.update(matched)
    return selected


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint ``paths`` and return the report.

    Raises :class:`~.config.LintConfigError` when the pyproject table or
    a configured protocol scope is broken, and :class:`ValueError` for an
    unknown ``--rule`` selector — tool misuse is distinct from findings.
    """
    selected = _selected_codes(rules)
    if config is None:
        config = resolve_config(paths)
    files = discover_files(paths)

    errors: List[str] = []
    sources: Dict[str, SourceFile] = {}
    scanned: List[SourceFile] = []
    for abspath in files:
        rel = _rel_to_root(abspath, config.root)
        try:
            source = SourceFile.parse(abspath, rel)
        except SuppressionError as exc:
            errors.append(f"{rel}: {exc}")
            continue
        except OSError as exc:
            errors.append(f"{rel}: unreadable ({exc})")
            continue
        if source is None:
            errors.append(f"{rel}: syntax error, file skipped")
            continue
        sources[rel] = source
        scanned.append(source)

    violations: List[Violation] = []
    register_calls: List[RegisterCall] = []
    for source in scanned:
        for check in PER_FILE_CHECKS:
            violations.extend(check(source, config))
        if source.in_any(config.registry_duplicate_paths):
            register_calls.extend(collect_register_calls(source, config))
    violations.extend(duplicate_violations(register_calls))

    def load(rel: str) -> Optional[SourceFile]:
        if rel in sources:
            return sources[rel]
        abspath = config.root / rel
        if not abspath.is_file():
            return None
        try:
            source = SourceFile.parse(abspath, rel)
        except (SuppressionError, OSError):
            return None
        if source is not None:
            sources[rel] = source
        return source

    violations.extend(check_protocol(config, load))

    kept: List[Violation] = []
    for violation in violations:
        holder = sources.get(violation.path)
        if holder is not None and is_suppressed(
            holder.suppressions, violation.line, violation.code
        ):
            continue
        if selected is not None and violation.code not in selected:
            continue
        kept.append(violation)
    kept.sort(key=Violation.sort_key)
    return LintReport(violations=kept, errors=errors, files_checked=len(scanned))
