"""RPL1xx — determinism of engine code.

Byte-identical replay (the 24-config identity matrix, serial==sharded
epoch stitching, resume-by-key experiment rows) is only sound while the
code under ``determinism-paths`` never reads a wall clock, OS entropy, or
the process-salted iteration order of a bare ``set``.  ``time.
perf_counter`` stays legal: elapsed-time gauges are stripped from
identity comparisons (``VOLATILE_TOTAL_FIELDS``), whereas ``time.time``
values leak into output.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import LintConfig
from .model import Violation
from .source import SourceFile

#: Wall-clock / OS-entropy callables (fully qualified).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
    }
)

#: ``random.SystemRandom`` is OS entropy no matter how it is seeded.
ENTROPY_TYPES = frozenset({"random.SystemRandom"})


def _is_set_expression(node: ast.expr) -> bool:
    """A literal set, a set comprehension, or a ``set()``/``frozenset()``
    call — the expressions whose iteration order is process-salted."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def check_determinism(source: SourceFile, config: LintConfig) -> Iterator[Violation]:
    if not source.in_any(config.determinism_paths):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            qualname = source.imports.resolve(node.func)
            if qualname in WALL_CLOCK_CALLS:
                yield Violation(
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    "RPL101",
                    f"call to {qualname}() in deterministic engine code; "
                    "replay output may not depend on wall-clock or OS "
                    "entropy",
                )
            elif qualname in ENTROPY_TYPES:
                yield Violation(
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    "RPL102",
                    f"{qualname} draws OS entropy; use a seeded "
                    "random.Random instance",
                )
            elif qualname == "random.Random" and not (node.args or node.keywords):
                yield Violation(
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    "RPL102",
                    "random.Random() without a seed falls back to OS "
                    "entropy; pass an explicit seed",
                )
            elif (
                qualname is not None
                and qualname.startswith("random.")
                and qualname != "random.Random"
            ):
                yield Violation(
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    "RPL102",
                    f"module-level {qualname}() shares the process-global "
                    "unseeded RNG; use a seeded random.Random instance",
                )
        iter_expr = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_expr = node.iter
        elif isinstance(node, ast.comprehension):
            iter_expr = node.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate", "iter")
            and len(node.args) >= 1
        ):
            iter_expr = node.args[0]
        if iter_expr is not None and _is_set_expression(iter_expr):
            yield Violation(
                source.rel,
                iter_expr.lineno,
                iter_expr.col_offset,
                "RPL103",
                "iterating a bare set: element order is salted per "
                "process; sort it (e.g. sorted(...)) before it can feed "
                "ordered output",
            )
