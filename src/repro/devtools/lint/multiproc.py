"""RPL401 — multiprocessing pickling safety.

``ProcessPoolExecutor`` ships work to workers by pickling the callable.
Closures, lambdas and functions defined inside another function pickle
by *qualified name lookup* and fail at runtime — but only on the first
sharded run, which is exactly the configuration CI smoke tests skip.
The sharded replay entry points (``_run_policy_shard``,
``_run_epoch_shard``, ``execute_point``) are module-level for this
reason; this rule keeps it that way.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set

from .config import LintConfig
from .model import Violation
from .source import SourceFile

_EXECUTOR_TYPES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)
_DISPATCH_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}
)
_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_executor_ctor(node: ast.expr, source: SourceFile) -> bool:
    return (
        isinstance(node, ast.Call)
        and source.imports.resolve(node.func) in _EXECUTOR_TYPES
    )


def _executor_names(source: SourceFile) -> FrozenSet[str]:
    """Names bound to executor instances anywhere in the module (via
    ``with ... as pool`` or plain assignment)."""
    names: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_executor_ctor(item.context_expr, source) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign):
            if _is_executor_ctor(node.value, source):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)


def _is_partial(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "partial"
    return isinstance(func, ast.Attribute) and func.attr == "partial"


def _dispatched_callable(node: ast.Call) -> Optional[ast.expr]:
    """The callable argument of an executor dispatch call, unwrapping
    ``functools.partial(...)`` one level."""
    if not node.args:
        return None
    fn = node.args[0]
    if isinstance(fn, ast.Call) and fn.args and _is_partial(fn.func):
        return fn.args[0]
    return fn


def check_multiproc(source: SourceFile, config: LintConfig) -> Iterator[Violation]:
    del config  # rule applies everywhere; pools pickle the same in tests
    executors = _executor_names(source)
    violations: List[Violation] = []
    seen: Set[int] = set()

    def flag(fn: ast.expr, why: str) -> None:
        key = id(fn)
        if key in seen:
            return
        seen.add(key)
        violations.append(
            Violation(
                source.rel,
                fn.lineno,
                fn.col_offset,
                "RPL401",
                f"{why} handed to a process pool; workers unpickle the "
                "callable by module-level name, so this fails at runtime "
                "on the first sharded run — move it to module scope",
            )
        )

    def scan(node: ast.AST, local_defs: FrozenSet[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEF_NODES):
                nested = frozenset(
                    sub.name
                    for sub in ast.walk(child)
                    if isinstance(sub, _DEF_NODES) and sub is not child
                )
                scan(child, local_defs | nested)
                continue
            if isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                receiver = child.func.value
                is_named_pool = (
                    isinstance(receiver, ast.Name) and receiver.id in executors
                )
                is_pool = is_named_pool or _is_executor_ctor(receiver, source)
                if is_pool and child.func.attr in _DISPATCH_METHODS:
                    fn = _dispatched_callable(child)
                    if isinstance(fn, ast.Lambda):
                        flag(fn, "lambda")
                    elif isinstance(fn, ast.Name) and fn.id in local_defs:
                        flag(fn, f"locally-defined function {fn.id!r}")
            scan(child, local_defs)

    scan(source.tree, frozenset())
    yield from violations
