"""``repro lint`` — AST invariant checker for this repository's own
documented contracts.

Five rule families, each grounded in a contract the test suite cannot
cheaply enforce:

* **RPL1xx** determinism — no wall clock / OS entropy / salted set
  order in engine code (byte-identical replay);
* **RPL2xx** int-grid exactness — no floats in declared integer-kernel
  scopes (the int64 array kernel and LCM timebase);
* **RPL3xx** backend-protocol drift — profile backends stay aligned
  with :class:`~repro.core.profiles.base.ProfileBackend`;
* **RPL4xx** multiprocessing safety — pool workers are module-level;
* **RPL5xx** registry hygiene — registered names are unique literals.

Suppress with ``# repro: noqa RPL202 -- justification`` inline or a
``# repro: noqa-begin RPL2xx`` / ``# repro: noqa-end`` region.
Scopes are configured in ``[tool.repro-lint]`` in ``pyproject.toml``.
Pure stdlib (:mod:`ast` + :mod:`tokenize` + :mod:`tomllib`); no runtime
dependencies.
"""

from __future__ import annotations

from .config import LintConfig, LintConfigError, load_config, resolve_config
from .engine import LintReport, discover_files, run_lint
from .model import (
    RULES,
    RULES_BY_CODE,
    Rule,
    Violation,
    expand_rule_selector,
)
from .suppress import Suppression, SuppressionError, parse_suppressions

__all__ = [
    "LintConfig",
    "LintConfigError",
    "LintReport",
    "RULES",
    "RULES_BY_CODE",
    "Rule",
    "Suppression",
    "SuppressionError",
    "Violation",
    "discover_files",
    "expand_rule_selector",
    "load_config",
    "parse_suppressions",
    "resolve_config",
    "run_lint",
]
