"""Import-alias resolution for AST checkers.

Rules match *fully-qualified* names (``time.time``, ``concurrent.
futures.ProcessPoolExecutor``), but source refers to them through
whatever aliases its imports created (``import time as _time``,
``from concurrent.futures import ProcessPoolExecutor``).  This module
builds one alias map per module — imports anywhere in the file count,
because engine code imports executors lazily inside functions — and
resolves ``Name``/``Attribute`` chains through it.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportMap:
    """Alias → fully-qualified dotted name for one module."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else bound
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never shadow stdlib names
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully-qualified dotted name of an expression, or ``None`` for
        anything that is not a plain ``Name``/``Attribute`` chain."""
        parts = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        head = self.aliases.get(cursor.id, cursor.id)
        parts.append(head)
        return ".".join(reversed(parts))
