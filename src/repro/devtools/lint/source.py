"""The per-file parse product every checker consumes."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from .imports import ImportMap
from .suppress import Suppression, parse_suppressions


@dataclass
class SourceFile:
    """One parsed module: path, AST, imports and suppressions."""

    #: absolute location on disk
    abspath: Path
    #: POSIX path relative to the config root (the span path in output)
    rel: str
    text: str
    tree: ast.Module
    imports: ImportMap
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def parse(cls, abspath: Path, rel: str) -> Optional["SourceFile"]:
        """Parse ``abspath``; ``None`` when the file is not valid Python
        (the engine reports that separately)."""
        text = abspath.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(abspath))
        except SyntaxError:
            return None
        return cls(
            abspath=abspath,
            rel=rel,
            text=text,
            tree=tree,
            imports=ImportMap(tree),
            suppressions=parse_suppressions(text),
        )

    def in_any(self, prefixes: Tuple[str, ...]) -> bool:
        """Whether this file lives under any of the given POSIX path
        prefixes (a prefix may name the file itself)."""
        for prefix in prefixes:
            if self.rel == prefix or self.rel.startswith(prefix.rstrip("/") + "/"):
                return True
        return False
