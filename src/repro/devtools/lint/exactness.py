"""RPL2xx — integer-grid exactness.

The int64 array kernel (:mod:`repro.core.profiles.array_backend`), the
LCM timebase (:mod:`repro.core.timebase`) and the replay engine's
decision state all promise *exact* arithmetic: every time on the grid is
a machine int, so a single stray float literal, true division or
``float()`` coercion silently detunes byte-identity.  Scopes are declared
in ``[tool.repro-lint]`` — whole modules via ``int-kernel-modules``,
individual functions or classes via ``int-kernel-functions``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from .config import LintConfig
from .model import Violation
from .source import SourceFile

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def qualified_scopes(
    tree: ast.Module,
) -> Dict[str, List[ast.AST]]:
    """``qualname -> definition nodes`` for every function/class.

    Nesting uses dotted names without the ``<locals>`` marker
    (``ReplayEngine._run_batched``), matching the config syntax.
    """
    scopes: Dict[str, List[ast.AST]] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                qualname = f"{prefix}{child.name}"
                scopes.setdefault(qualname, []).append(child)
                visit(child, f"{qualname}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return scopes


def _scan_scope(
    root: ast.AST, source: SourceFile, seen: Set[Tuple[int, int, str]]
) -> Iterator[Violation]:
    for node in ast.walk(root):
        span = None
        code = ""
        message = ""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            span = (node.lineno, node.col_offset)
            code = "RPL201"
            message = (
                f"float literal {node.value!r} in an integer-kernel scope; "
                "kernel arithmetic must stay on the int grid"
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            span = (node.lineno, node.col_offset)
            code = "RPL202"
            message = (
                "true division in an integer-kernel scope produces floats; "
                "use // on the grid (or Fraction for exact ratios)"
            )
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            span = (node.lineno, node.col_offset)
            code = "RPL202"
            message = (
                "true division in an integer-kernel scope produces floats; "
                "use //= on the grid (or Fraction for exact ratios)"
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            span = (node.lineno, node.col_offset)
            code = "RPL203"
            message = (
                "float() coercion in an integer-kernel scope; kernel "
                "values are never converted to float"
            )
        if span is not None:
            key = (span[0], span[1], code)
            if key not in seen:
                seen.add(key)
                yield Violation(source.rel, span[0], span[1], code, message)


def check_exactness(source: SourceFile, config: LintConfig) -> Iterator[Violation]:
    seen: Set[Tuple[int, int, str]] = set()
    if source.in_any(config.int_kernel_modules):
        yield from _scan_scope(source.tree, source, seen)
        return
    declared = [
        ref.qualname
        for ref in config.int_kernel_functions
        if ref.path == source.rel and ref.qualname is not None
    ]
    if not declared:
        return
    scopes = qualified_scopes(source.tree)
    for qualname in declared:
        for node in scopes.get(qualname, []):
            yield from _scan_scope(node, source, seen)
