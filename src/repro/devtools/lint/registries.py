"""RPL5xx — registry hygiene.

The policy/workload/metric registries are looked up by *string name*
from CLI flags and experiment-grid YAML.  Greppability is the contract:
``repro run --policy easy-backfill`` must lead to the registration site
with a plain text search.

* **RPL501** — a registration call whose name argument is not a string
  literal (f-strings and computed names defeat grep).  Forwarding
  wrappers are exempt: a name argument that is itself a parameter of an
  enclosing function just passes a caller's literal through.
* **RPL502** — the same literal name registered twice in the same
  registry (the second call silently wins or raises, depending on
  ``overwrite``).  Cross-file; scoped by ``registry-duplicate-paths``
  so tests may deliberately re-register fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .config import LintConfig
from .model import Violation
from .source import SourceFile

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _register_callee(
    node: ast.Call, source: SourceFile, config: LintConfig
) -> Optional[str]:
    """A stable registry key when ``node`` is a registration call, else
    ``None``.  The key resolves through import aliases so the same
    registry dedupes across modules."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in config.register_names:
            return source.imports.resolve(func) or func.id
        return None
    if isinstance(func, ast.Attribute) and func.attr in config.register_names:
        receiver = source.imports.resolve(func.value)
        if receiver is None and isinstance(func.value, ast.Name):
            receiver = func.value.id
        if receiver is None:
            return None
        return f"{receiver}.{func.attr}"
    return None


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


@dataclass(frozen=True)
class RegisterCall:
    """One registration with a literal name, for cross-file dedup."""

    registry: str
    name: str
    path: str
    line: int
    col: int


def _scan(
    source: SourceFile, config: LintConfig
) -> Iterator[Tuple[ast.Call, Optional[ast.expr], str, FrozenSet[str]]]:
    """Yield ``(call, name_arg, registry_key, enclosing_params)`` for
    every registration call in the module."""

    def walk(
        node: ast.AST, params: FrozenSet[str]
    ) -> Iterator[Tuple[ast.Call, Optional[ast.expr], str, FrozenSet[str]]]:
        for child in ast.iter_child_nodes(node):
            child_params = params
            if isinstance(child, _DEF_NODES):
                args = child.args
                named = args.posonlyargs + args.args + args.kwonlyargs
                child_params = params | frozenset(a.arg for a in named)
            if isinstance(child, ast.Call):
                registry = _register_callee(child, source, config)
                if registry is not None:
                    yield child, _name_argument(child), registry, params
            yield from walk(child, child_params)

    yield from walk(source.tree, frozenset())


def check_register_literals(
    source: SourceFile, config: LintConfig
) -> Iterator[Violation]:
    """RPL501 — per-file literal-name check."""
    for call, name_arg, registry, params in _scan(source, config):
        if name_arg is None:
            continue  # decorator form: register()(fn) names via __name__
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            continue
        if isinstance(name_arg, ast.Name) and name_arg.id in params:
            continue  # forwarding wrapper passes a caller's name through
        short = registry.rsplit(".", 1)[-1]
        yield Violation(
            source.rel,
            name_arg.lineno,
            name_arg.col_offset,
            "RPL501",
            f"{short}() name is not a string literal; registry names are "
            "the grep contract between CLI flags and code — register "
            "each name literally (or suppress with a justification)",
        )


def collect_register_calls(
    source: SourceFile, config: LintConfig
) -> List[RegisterCall]:
    """Literal registrations in this module, for the cross-file RPL502
    duplicate check."""
    calls: List[RegisterCall] = []
    for call, name_arg, registry, _params in _scan(source, config):
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            calls.append(
                RegisterCall(
                    registry=registry,
                    name=name_arg.value,
                    path=source.rel,
                    line=name_arg.lineno,
                    col=name_arg.col_offset,
                )
            )
    return calls


def duplicate_violations(
    calls: List[RegisterCall],
) -> Iterator[Violation]:
    """RPL502 — every registration after the first of the same literal
    name in the same registry."""
    first: Dict[Tuple[str, str], RegisterCall] = {}
    for call in calls:
        key = (call.registry, call.name)
        origin = first.setdefault(key, call)
        if origin is not call:
            yield Violation(
                call.path,
                call.line,
                call.col,
                "RPL502",
                f"duplicate registration of {call.name!r} in "
                f"{call.registry.rsplit('.', 1)[-1]}() (first registered "
                f"at {origin.path}:{origin.line})",
            )
