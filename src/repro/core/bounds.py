"""Lower bounds on the optimal makespan ``C*max``.

Exact optima are NP-hard (the paper recalls strong NP-hardness for
``m >= 5`` and the 3-PARTITION reduction for reservations), so experiments
compare algorithm makespans against *certified lower bounds*:

* :func:`work_bound` — the classical area argument ``W / m``
  (``W(I) <= m C*max`` in the appendix proof of Theorem 2);
* :func:`area_bound` — the reservation-aware refinement: the earliest time
  ``T`` at which the availability profile has offered ``W`` units of area;
* :func:`pmax_bound` — no job finishes before its own earliest possible
  completion given the reservations (``C*max >= pmax`` in the appendix);
* :func:`squashed_area_bound` — area refinement restricted to processors
  that wide jobs can actually use;
* :func:`lower_bound` — the max of all of the above.

Every function returns a value that is provably ``<= C*max``; the test
suite cross-checks them against the exact solver on small instances.
"""

from __future__ import annotations


from .instance import as_reservation_instance


def work_bound(instance) -> object:
    """``W / m``: total job work spread over the whole machine.

    Valid even with reservations (they only reduce capacity), but then
    :func:`area_bound` dominates it.
    """
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        return 0
    return inst.total_work / inst.m


def area_bound(instance, profile_backend=None):
    """Earliest ``T`` such that the machine offers ``W`` area in ``[0, T]``.

    With no reservations this equals ``W / m``.  With reservations it is
    strictly stronger whenever reservations overlap the interval where the
    work must fit.  Always a valid lower bound: any feasible schedule
    finishing at ``C`` has processed ``W <= area(0, C)`` and area is
    non-decreasing in ``C``.
    """
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        return 0
    profile = inst.availability_profile(profile_backend)
    t = profile.first_time_area_reaches(inst.total_work)
    return t if t is not None else 0


def pmax_bound(instance, profile_backend=None):
    """Max over jobs of the earliest completion the job could achieve alone.

    Without reservations this is the appendix's ``C*max >= pmax``.  With
    reservations a job may be unable to start at 0 (not enough free
    processors), so its solo earliest completion — computed with
    :meth:`~repro.core.profile.ResourceProfile.earliest_fit` on the
    reservation-only profile — is a valid, stronger bound.
    """
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        return 0
    profile = inst.availability_profile(profile_backend)
    best = 0
    for job in inst.jobs:
        start = profile.earliest_fit(job.q, job.p, after=job.release)
        if start is None:
            # No feasible placement ever: the instance cannot be scheduled;
            # treat as unbounded so callers notice.
            raise ValueError(
                f"job {job.id!r} (q={job.q}) never fits in the availability "
                "profile; instance is unschedulable"
            )
        best = max(best, start + job.p)
    return best


def squashed_area_bound(instance, profile_backend=None):
    """Area bound restricted to jobs wider than half the machine.

    Jobs with ``q > m / 2`` can never run concurrently with one another, so
    their processing times simply add up and must fit in the time the
    profile offers at least ``qmin`` processors, where ``qmin`` is the
    smallest width among them.  The bound is the earliest time by which the
    profile has offered ``sum p_i`` time units with capacity ``>= qmin``.
    """
    inst = as_reservation_instance(instance)
    wide = [job for job in inst.jobs if 2 * job.q > inst.m]
    if not wide:
        return 0
    qmin = min(job.q for job in wide)
    need = sum(job.p for job in wide)
    profile = inst.availability_profile(profile_backend)
    # Accumulate time (not area) over segments with capacity >= qmin.
    acc = 0
    for seg_start, seg_end, cap in profile.segments():
        if cap < qmin:
            continue
        if seg_end == float("inf"):
            return seg_start + (need - acc)
        length = seg_end - seg_start
        if acc + length >= need:
            return seg_start + (need - acc)
        acc += length
    return 0  # pragma: no cover - final segment is infinite


def release_bound(instance):
    """``max_i (release_i + p_i)``: no job finishes before its release + p."""
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        return 0
    return max(job.release + job.p for job in inst.jobs)


def lower_bound(instance, profile_backend=None):
    """Best available lower bound: max of all bounds in this module."""
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        return 0
    return max(
        area_bound(inst, profile_backend),
        pmax_bound(inst, profile_backend),
        squashed_area_bound(inst, profile_backend),
        release_bound(inst),
    )


def ratio_to_lower_bound(schedule) -> float:
    """``Cmax / lower_bound`` — an *upper bound* on the true approximation
    ratio achieved on this instance (since ``lower_bound <= C*max``)."""
    lb = lower_bound(schedule.instance)
    if lb == 0:
        return 1.0
    return schedule.makespan / lb
