"""Schedule quality metrics beyond the makespan.

The paper's criterion is the makespan, but production batch schedulers
(the motivation of Section 1) are additionally judged on utilization,
waiting time and slowdown; the examples and the online simulator report
these.  All metrics are exact sums/maxima over the schedule's event
structure — no sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .schedule import Schedule


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary statistics of a schedule.

    Attributes
    ----------
    makespan:
        ``Cmax`` — latest job completion.
    total_work:
        ``W`` — total job area processed.
    utilization:
        ``W / (m * Cmax)``: fraction of the raw machine used by jobs.
    available_utilization:
        ``W / available_area``: fraction of the *reservation-free* capacity
        in ``[0, Cmax)`` used by jobs.  Equals ``utilization`` when there
        are no reservations.
    mean_wait / max_wait:
        Waiting time ``sigma_i - release_i`` statistics.
    mean_slowdown / max_slowdown:
        Bounded slowdown ``(wait + p) / p`` statistics (>= 1).
    idle_area:
        Capacity left unused by jobs within ``[0, Cmax)``, reservations
        excluded: ``available_area - W``.
    n_jobs:
        Number of jobs.
    """

    makespan: float
    total_work: float
    utilization: float
    available_utilization: float
    mean_wait: float
    max_wait: float
    mean_slowdown: float
    max_slowdown: float
    idle_area: float
    n_jobs: int

    def as_dict(self) -> Dict[str, float]:
        """Plain dict, handy for table rows and CSV export."""
        return {
            "makespan": self.makespan,
            "total_work": self.total_work,
            "utilization": self.utilization,
            "available_utilization": self.available_utilization,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "mean_slowdown": self.mean_slowdown,
            "max_slowdown": self.max_slowdown,
            "idle_area": self.idle_area,
            "n_jobs": self.n_jobs,
        }


def waiting_times(schedule: Schedule) -> List:
    """Per-job waiting times ``sigma_i - release_i``."""
    inst = schedule.instance
    return [
        schedule.starts[job.id] - job.release for job in inst.jobs
    ]


def slowdowns(schedule: Schedule) -> List:
    """Per-job slowdowns ``(wait_i + p_i) / p_i``; 1.0 means no wait."""
    inst = schedule.instance
    result = []
    for job in inst.jobs:
        wait = schedule.starts[job.id] - job.release
        result.append((wait + job.p) / job.p)
    return result


def utilization(schedule: Schedule) -> float:
    """``W / (m * Cmax)``: raw machine utilization by jobs."""
    cmax = schedule.makespan
    if cmax == 0:
        return 0.0
    inst = schedule.instance
    return inst.total_work / (inst.m * cmax)


def available_area(schedule: Schedule):
    """Reservation-free capacity area within ``[0, Cmax)``."""
    cmax = schedule.makespan
    if cmax == 0:
        return 0
    return schedule.instance.availability_profile().area(0, cmax)


def summarize(schedule: Schedule) -> ScheduleMetrics:
    """Compute every metric at once."""
    inst = schedule.instance
    cmax = schedule.makespan
    work = inst.total_work
    waits = waiting_times(schedule)
    slows = slowdowns(schedule)
    avail = available_area(schedule)
    n = len(waits)
    return ScheduleMetrics(
        makespan=cmax,
        total_work=work,
        utilization=(work / (inst.m * cmax)) if cmax else 0.0,
        available_utilization=(work / avail) if avail else 0.0,
        mean_wait=(sum(waits) / n) if n else 0.0,
        max_wait=max(waits) if waits else 0.0,
        mean_slowdown=(sum(slows) / n) if n else 0.0,
        max_slowdown=max(slows) if slows else 0.0,
        idle_area=avail - work,
        n_jobs=n,
    )
