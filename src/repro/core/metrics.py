"""Schedule quality metrics beyond the makespan.

The paper's criterion is the makespan, but production batch schedulers
(the motivation of Section 1) are additionally judged on utilization,
waiting time and slowdown; the examples and the online simulator report
these.  All metrics are exact sums/maxima over the schedule's event
structure — no sampling.

Metrics are also *name-addressable* through the :data:`METRICS`
registry: a metric extractor is any ``schedule -> number`` callable, and
the experiment layer (:mod:`repro.run`) selects extractors by name so a
JSON spec can say ``"metrics": ["makespan", "ratio_lb"]``.  Third-party
extractors join via :func:`register_metric`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..errors import InvalidInstanceError
from .registry import Registry
from .schedule import Schedule


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary statistics of a schedule.

    Attributes
    ----------
    makespan:
        ``Cmax`` — latest job completion.
    total_work:
        ``W`` — total job area processed.
    utilization:
        ``W / (m * Cmax)``: fraction of the raw machine used by jobs.
    available_utilization:
        ``W / available_area``: fraction of the *reservation-free* capacity
        in ``[0, Cmax)`` used by jobs.  Equals ``utilization`` when there
        are no reservations.
    mean_wait / max_wait:
        Waiting time ``sigma_i - release_i`` statistics.
    mean_slowdown / max_slowdown:
        Bounded slowdown ``(wait + p) / p`` statistics (>= 1).
    idle_area:
        Capacity left unused by jobs within ``[0, Cmax)``, reservations
        excluded: ``available_area - W``.
    n_jobs:
        Number of jobs.
    """

    makespan: float
    total_work: float
    utilization: float
    available_utilization: float
    mean_wait: float
    max_wait: float
    mean_slowdown: float
    max_slowdown: float
    idle_area: float
    n_jobs: int

    def as_dict(self) -> Dict[str, float]:
        """Plain dict, handy for table rows and CSV export."""
        return {
            "makespan": self.makespan,
            "total_work": self.total_work,
            "utilization": self.utilization,
            "available_utilization": self.available_utilization,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "mean_slowdown": self.mean_slowdown,
            "max_slowdown": self.max_slowdown,
            "idle_area": self.idle_area,
            "n_jobs": self.n_jobs,
        }


def waiting_times(schedule: Schedule) -> List:
    """Per-job waiting times ``sigma_i - release_i``."""
    inst = schedule.instance
    return [
        schedule.starts[job.id] - job.release for job in inst.jobs
    ]


def slowdowns(schedule: Schedule) -> List:
    """Per-job slowdowns ``(wait_i + p_i) / p_i``; 1.0 means no wait."""
    inst = schedule.instance
    result = []
    for job in inst.jobs:
        wait = schedule.starts[job.id] - job.release
        result.append((wait + job.p) / job.p)
    return result


#: Bounded-slowdown runtime threshold (the literature's tau): short jobs
#: are measured against tau instead of their own runtime, so a 1-second
#: job waiting a minute does not read as a 60x degradation.
BSLD_TAU = 10


def bounded_slowdown(wait, p, tau=BSLD_TAU) -> float:
    """One job's bounded slowdown ``max(1, (wait + p) / max(p, tau))``.

    The single definition both the schedule-level extractors below and
    the replay engine's windowed metrics
    (:mod:`repro.simulation.replay`) compute with, so the two stay
    comparable by construction.
    """
    return max(1.0, float(wait + p) / float(max(p, tau)))


def bounded_slowdowns(schedule: Schedule, tau=BSLD_TAU) -> List[float]:
    """Per-job bounded slowdowns — the trace-evaluation standard."""
    inst = schedule.instance
    return [
        bounded_slowdown(schedule.starts[job.id] - job.release, job.p, tau)
        for job in inst.jobs
    ]


#: Default slowdown guarantee level: ``p_slowdown_le`` reports
#: ``P(bounded slowdown <= 10)`` unless asked otherwise — the threshold
#: reservation-based analyses (Palopoli et al.) quote guarantees at.
DEFAULT_SLOWDOWN_THRESHOLD = 10.0

#: The tail quantiles windowed replay rows report.
TAIL_QUANTILES = (0.50, 0.95, 0.99)


def quantile(values, q: float):
    """Nearest-rank quantile of ``values`` (exact, no interpolation).

    Nearest-rank keeps every reported quantile an *observed* sample —
    integer traces yield integer quantiles, so the distributional
    columns obey the same exactness discipline as every other replay
    metric.  Empty input returns 0; ``q`` outside ``[0, 1]`` is a loud
    error.
    """
    if not 0.0 <= q <= 1.0:
        raise InvalidInstanceError(f"quantile level must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0
    k = int(q * n)
    if k < q * n:  # nearest rank is ceil(q * n)
        k += 1
    if k < 1:
        k = 1
    return ordered[k - 1]


def p_slowdown_le(
    values: Iterable[float], threshold: float = DEFAULT_SLOWDOWN_THRESHOLD
) -> float:
    """Empirical ``P(slowdown <= threshold)`` — the distributional
    guarantee level.  Vacuously 1.0 over no samples."""
    count = 0
    n = 0
    for value in values:
        n += 1
        if value <= threshold:
            count += 1
    return (count / n) if n else 1.0


def utilization(schedule: Schedule) -> float:
    """``W / (m * Cmax)``: raw machine utilization by jobs."""
    cmax = schedule.makespan
    if cmax == 0:
        return 0.0
    inst = schedule.instance
    return inst.total_work / (inst.m * cmax)


def available_area(schedule: Schedule):
    """Reservation-free capacity area within ``[0, Cmax)``."""
    cmax = schedule.makespan
    if cmax == 0:
        return 0
    return schedule.instance.availability_profile().area(0, cmax)


def summarize(schedule: Schedule) -> ScheduleMetrics:
    """Compute every metric at once."""
    inst = schedule.instance
    cmax = schedule.makespan
    work = inst.total_work
    waits = waiting_times(schedule)
    slows = slowdowns(schedule)
    avail = available_area(schedule)
    n = len(waits)
    return ScheduleMetrics(
        makespan=cmax,
        total_work=work,
        utilization=(work / (inst.m * cmax)) if cmax else 0.0,
        available_utilization=(work / avail) if avail else 0.0,
        mean_wait=(sum(waits) / n) if n else 0.0,
        max_wait=max(waits) if waits else 0.0,
        mean_slowdown=(sum(slows) / n) if n else 0.0,
        max_slowdown=max(slows) if slows else 0.0,
        idle_area=avail - work,
        n_jobs=n,
    )


# ---------------------------------------------------------------------------
# name-addressable metric extractors
# ---------------------------------------------------------------------------

#: Metric extractor registry: name -> ``schedule -> number``.
METRICS: Registry[Callable[[Schedule], float]] = Registry(
    "metric", error=InvalidInstanceError
)


def register_metric(
    name: str,
    extractor: Optional[Callable[[Schedule], float]] = None,
    *,
    overwrite: Optional[bool] = None,
):
    """Register a ``schedule -> number`` extractor (usable as decorator)."""
    return METRICS.register(name, extractor, overwrite=overwrite)


def get_metric(name: str) -> Callable[[Schedule], float]:
    """The extractor registered under ``name`` (loud error otherwise)."""
    return METRICS.get(name)


def available_metrics() -> List[str]:
    """Sorted names of all registered metric extractors."""
    return METRICS.names()


_SUMMARY_FIELDS = frozenset(ScheduleMetrics.__dataclass_fields__)


def evaluate_metrics(schedule: Schedule, names: Iterable[str]) -> Dict[str, float]:
    """Evaluate the named extractors on one schedule, as ``{name: value}``.

    Built-in extractors share their intermediates: ``summarize`` runs at
    most once however many of its fields are requested, and the certified
    lower bound is computed once for ``lower_bound`` and ``ratio_lb``
    together — a grid run evaluates metrics on every point, so the
    duplicate work would multiply across the whole sweep.
    """
    summary = None
    reference = None
    out: Dict[str, float] = {}
    for name in names:
        extractor = METRICS.get(name)
        if extractor is not _BUILTIN_EXTRACTORS.get(name):
            # a user override replaced the built-in — honour it
            out[name] = extractor(schedule)
        elif name in _SUMMARY_FIELDS:
            if summary is None:
                summary = summarize(schedule)
            out[name] = getattr(summary, name)
        elif name in ("lower_bound", "ratio_lb"):
            if reference is None:
                from .bounds import lower_bound

                reference = lower_bound(schedule.instance)
            out[name] = (
                reference if name == "lower_bound"
                else _checked_ratio(schedule, reference)
            )
        else:
            out[name] = extractor(schedule)
    return out


def _checked_ratio(schedule: Schedule, reference) -> float:
    if reference <= 0:
        raise InvalidInstanceError(
            f"degenerate lower bound {reference!r}; ratio_lb is undefined"
        )
    return float(schedule.makespan) / float(reference)


#: The stock extractor objects; :func:`evaluate_metrics` only takes its
#: shared-intermediate fast path while these are still the registered ones.
_BUILTIN_EXTRACTORS: Dict[str, Callable[[Schedule], float]] = {}


def _register_builtin_metrics() -> None:
    # every ScheduleMetrics field, addressable individually so experiment
    # specs can ask for exactly the columns they need
    for field_name in ScheduleMetrics.__dataclass_fields__:
        _BUILTIN_EXTRACTORS[field_name] = METRICS.register(
            field_name,  # repro: noqa RPL501 -- one name per dataclass field

            (lambda f: lambda schedule: getattr(summarize(schedule), f))(
                field_name
            ),
            overwrite=True,
        )

    def _lower_bound(schedule: Schedule):
        from .bounds import lower_bound

        return lower_bound(schedule.instance)

    def _ratio_lb(schedule: Schedule) -> float:
        return _checked_ratio(schedule, _lower_bound(schedule))

    _BUILTIN_EXTRACTORS["lower_bound"] = METRICS.register(
        "lower_bound", _lower_bound, overwrite=True
    )
    _BUILTIN_EXTRACTORS["ratio_lb"] = METRICS.register(
        "ratio_lb", _ratio_lb, overwrite=True
    )

    def _mean_bsld(schedule: Schedule) -> float:
        values = bounded_slowdowns(schedule)
        return sum(values) / len(values) if values else 0.0

    def _max_bsld(schedule: Schedule) -> float:
        values = bounded_slowdowns(schedule)
        return max(values) if values else 0.0

    _BUILTIN_EXTRACTORS["mean_bounded_slowdown"] = METRICS.register(
        "mean_bounded_slowdown", _mean_bsld, overwrite=True
    )
    _BUILTIN_EXTRACTORS["max_bounded_slowdown"] = METRICS.register(
        "max_bounded_slowdown", _max_bsld, overwrite=True
    )

    def _p_slowdown_le(schedule: Schedule) -> float:
        return p_slowdown_le(bounded_slowdowns(schedule))

    _BUILTIN_EXTRACTORS["p_slowdown_le"] = METRICS.register(
        "p_slowdown_le", _p_slowdown_le, overwrite=True
    )

    # distributional tails: wait_p50/p95/p99 and bsld_p50/p95/p99 —
    # the same columns windowed replay rows report under uncertainty
    for _q in TAIL_QUANTILES:
        _pct = f"p{int(_q * 100)}"
        for _prefix, _values in (
            ("wait", waiting_times), ("bsld", bounded_slowdowns)
        ):
            _name = f"{_prefix}_{_pct}"
            _BUILTIN_EXTRACTORS[_name] = METRICS.register(
                _name,  # repro: noqa RPL501 -- one name per fixed quantile
                (lambda fn, lvl: lambda schedule: quantile(fn(schedule), lvl))(
                    _values, _q
                ),
                overwrite=True,
            )


_register_builtin_metrics()
