"""Schedules: start-time assignments, verification, processor assignment.

A solution of (RESA)SCHEDULING is a set of start times ``(sigma_i)`` such
that at every time the running jobs plus the reservations fit within the
``m`` machines (Section 3.1).  :class:`Schedule` stores the start times,
:meth:`Schedule.verify` checks feasibility *exactly* with a sweep over
event points, and :meth:`Schedule.assign_processors` turns the abstract
capacity schedule into a concrete processor numbering (always possible
because the model does not require contiguity, Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import InfeasibleScheduleError, InvalidInstanceError
from .instance import ReservationInstance, as_reservation_instance
from .job import Job
from .profile import ResourceProfile


@dataclass(frozen=True)
class ScheduledJob:
    """A job together with its assigned start time."""

    job: Job
    start: object

    @property
    def end(self):
        """Completion time ``sigma_i + p_i``."""
        return self.start + self.job.p

    @property
    def q(self) -> int:
        """Processor requirement of the underlying job."""
        return self.job.q


class Schedule:
    """An assignment of start times for every job of an instance.

    Parameters
    ----------
    instance:
        The instance being solved (either flavour; coerced to
        :class:`~repro.core.instance.ReservationInstance`).
    starts:
        Mapping from job id to start time.  Must cover every job exactly.
    algorithm:
        Optional name of the algorithm that produced the schedule (reports).
    """

    def __init__(self, instance, starts: Dict, algorithm: str = ""):
        self.instance: ReservationInstance = as_reservation_instance(instance)
        missing = [j.id for j in self.instance.jobs if j.id not in starts]
        if missing:
            raise InvalidInstanceError(
                f"schedule is missing start times for jobs {missing!r}"
            )
        extra = [jid for jid in starts if jid not in self.instance.job_by_id]
        if extra:
            raise InvalidInstanceError(
                f"schedule has start times for unknown jobs {extra!r}"
            )
        self.starts: Dict = dict(starts)
        self.algorithm = algorithm
        self._processor_assignment: Optional[Dict] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.starts)

    def start_of(self, job_id):
        """Start time of a job."""
        return self.starts[job_id]

    def end_of(self, job_id):
        """Completion time of a job."""
        return self.starts[job_id] + self.instance.job_by_id[job_id].p

    def scheduled_jobs(self) -> List[ScheduledJob]:
        """Jobs with their start times, ordered by (start, id-string)."""
        items = [
            ScheduledJob(job=job, start=self.starts[job.id])
            for job in self.instance.jobs
        ]
        items.sort(key=lambda sj: (sj.start, str(sj.job.id)))
        return items

    @property
    def makespan(self):
        """``Cmax = max_i (sigma_i + p_i)`` — job completions only.

        Consistent with the paper, reservations do not count towards the
        makespan (the adversarial reservation of Theorem 1 ends long after
        the optimal ``Cmax``).
        """
        if not self.starts:
            return 0
        return max(
            self.starts[job.id] + job.p for job in self.instance.jobs
        )

    def event_times(self) -> List:
        """Sorted distinct times where the running set changes
        (job starts/ends and reservation boundaries)."""
        times = set()
        for job in self.instance.jobs:
            times.add(self.starts[job.id])
            times.add(self.starts[job.id] + job.p)
        for res in self.instance.reservations:
            times.add(res.start)
            times.add(res.end)
        times.add(0)
        return sorted(times)

    def running_at(self, t) -> List[Job]:
        """Jobs executing at time ``t`` (the paper's ``I_t``)."""
        return [
            job
            for job in self.instance.jobs
            if self.starts[job.id] <= t < self.starts[job.id] + job.p
        ]

    def usage_at(self, t) -> int:
        """Processors used by *jobs* at time ``t`` (the appendix's ``r(t)``)."""
        return sum(job.q for job in self.running_at(t))

    def usage_profile(self) -> ResourceProfile:
        """``r(t)`` as a profile: processors used by jobs over time.

        Usage is constant between consecutive event points, so sampling at
        each event time fully determines the function
        (:class:`~repro.core.profile.ResourceProfile` merges equal
        neighbouring segments).
        """
        events = self.event_times()  # sorted, always contains 0
        caps = [self.usage_at(t) for t in events]
        return ResourceProfile(events, caps)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def violations(self) -> List[str]:
        """All model-constraint violations, as human-readable strings.

        Checks, per Section 3.1:

        * every start time is ``>= 0`` and ``>= release``;
        * on every maximal interval between event points,
          ``sum_{running} q_i <= m - U(t)``.
        """
        problems: List[str] = []
        inst = self.instance
        for job in inst.jobs:
            s = self.starts[job.id]
            if s < 0:
                problems.append(f"job {job.id!r} starts at negative time {s}")
            if s < job.release:
                problems.append(
                    f"job {job.id!r} starts at {s}, before its release "
                    f"{job.release}"
                )
        profile = inst.availability_profile()
        events = self.event_times()
        for t in events:
            usage = self.usage_at(t)
            available = profile.capacity_at(t) if t >= 0 else 0
            if usage > available:
                running = sorted(
                    (str(j.id) for j in self.running_at(t))
                )
                problems.append(
                    f"at time {t}: jobs use {usage} processors but only "
                    f"{available} are available (running: {running})"
                )
        return problems

    def verify(self) -> None:
        """Raise :class:`~repro.errors.InfeasibleScheduleError` when the
        schedule violates the model; otherwise return silently."""
        problems = self.violations()
        if problems:
            raise InfeasibleScheduleError(
                f"schedule has {len(problems)} violation(s); first: "
                f"{problems[0]}",
                violations=problems,
            )

    def is_feasible(self) -> bool:
        """True when :meth:`violations` finds nothing."""
        return not self.violations()

    # ------------------------------------------------------------------
    # processor assignment
    # ------------------------------------------------------------------
    def assign_processors(self) -> Dict:
        """Concrete processor sets for every job and reservation.

        Returns a dict mapping ``("job", id)`` / ``("res", id)`` to a
        sorted tuple of processor indices in ``range(m)``.  Because the
        model allows any subset of processors (no contiguity), a greedy
        sweep over event times always succeeds on a feasible schedule.

        The result is cached; it is used by the Gantt and SVG renderers.
        """
        if self._processor_assignment is not None:
            return self._processor_assignment
        self.verify()
        inst = self.instance
        intervals: List[Tuple[object, object, int, Tuple[str, object]]] = []
        for job in inst.jobs:
            s = self.starts[job.id]
            intervals.append((s, s + job.p, job.q, ("job", job.id)))
        for res in inst.reservations:
            intervals.append((res.start, res.end, res.q, ("res", res.id)))
        # Sweep event points; release processors of finished intervals,
        # then allocate lowest-numbered free processors to starting ones.
        starts_at: Dict = {}
        ends_at: Dict = {}
        for iv in intervals:
            starts_at.setdefault(iv[0], []).append(iv)
            ends_at.setdefault(iv[1], []).append(iv)
        events = sorted(set(starts_at) | set(ends_at))
        free = list(range(inst.m))
        assignment: Dict = {}
        for t in events:
            for iv in ends_at.get(t, ()):
                free.extend(assignment[iv[3]])
            free.sort()
            # deterministic allocation order: widest first, then key
            for iv in sorted(
                starts_at.get(t, ()), key=lambda iv: (-iv[2], str(iv[3]))
            ):
                need = iv[2]
                if len(free) < need:  # pragma: no cover - verify() prevents this
                    raise InfeasibleScheduleError(
                        f"processor assignment failed at time {t}: need {need}, "
                        f"free {len(free)}"
                    )
                chunk = free[:need]
                del free[:need]
                assignment[iv[3]] = tuple(chunk)
        self._processor_assignment = assignment
        return assignment

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def shifted(self, offset) -> "Schedule":
        """Copy with every start time shifted by ``offset`` (>= 0 check is
        left to :meth:`verify`)."""
        return Schedule(
            self.instance,
            {jid: s + offset for jid, s in self.starts.items()},
            algorithm=self.algorithm,
        )

    def __repr__(self) -> str:
        algo = f" by {self.algorithm}" if self.algorithm else ""
        return (
            f"Schedule({len(self.starts)} jobs{algo}, "
            f"Cmax={self.makespan})"
        )


def left_shifted(schedule: Schedule) -> Schedule:
    """Left-shift every job as far as possible, in start-time order.

    Classical post-processing: jobs are re-placed at their earliest
    feasible start, in non-decreasing order of their current starts.  The
    makespan never increases.  Used to normalise schedules in tests and as
    a cheap improvement step.
    """
    inst = schedule.instance
    profile = inst.availability_profile()
    order = sorted(
        inst.jobs, key=lambda j: (schedule.starts[j.id], str(j.id))
    )
    new_starts: Dict = {}
    for job in order:
        s = profile.earliest_fit(job.q, job.p, after=job.release)
        if s is None or s > schedule.starts[job.id]:
            # cannot improve safely; keep the original position
            s = schedule.starts[job.id]
        profile.reserve(s, job.p, job.q)
        new_starts[job.id] = s
    return Schedule(inst, new_starts, algorithm=schedule.algorithm + "+shift")
