"""The flat-array backend: contiguous int64 columns for the integer grid.

:class:`ArrayProfile` is the cache-friendly kernel of the profile
protocol: breakpoint times and segment capacities live in two contiguous
``array('q')`` (int64) columns, so the structures the replay hot loop
touches every event are two machine-typed buffers instead of trees or
boxed lists.  Three design points give it its speed:

* **offset-bump pruning** — :meth:`prune_before` advances a live-window
  offset and re-anchors the frontier segment in O(1); the dead prefix is
  reclaimed by periodic compaction, so a rolling-horizon sweep
  (:mod:`repro.simulation.replay`) can prune *every* event and keep the
  live window at tens of segments where the list backend's
  prune-every-4096 cadence lets thousands accumulate;
* **branch-light scans** — ``earliest_fit``/``min_capacity`` are tight
  linear scans over the live window (bisected to the query point), which
  on a continuously-pruned profile is the active-jobs frontier only;
* **batched overlay** — :meth:`reserve_many` rebuilds the columns in one
  sweep via the shared :func:`overlay_reservation_blocks` engine.

When numpy is importable (a feature probe, never a requirement), wide
windowed ``min_capacity``/``max_capacity_between`` scans are answered by
vectorised reductions over zero-copy views of the same buffers; the
pure-stdlib scan is the always-available fallback and the semantics are
identical (the reductions do no arithmetic, so there is nothing to
overflow or round).

The int64 columns are also the backend's contract: **breakpoints live on
the integer grid**.  Construction and mutation require machine-int times
(PR 3's ``timebase="auto"`` normalisation produces exactly that grid;
every SWF archive and the synthetic trace pack are integral already) and
raise :class:`~repro.errors.InvalidInstanceError` loudly otherwise —
*queries* accept any ordered numeric, so probing an integer profile at a
``Fraction`` instant still works.  For exact ``Fraction``/``float``
breakpoints use the ``"list"`` or ``"tree"`` backends.
"""

from __future__ import annotations

import math
import numbers
import os
from array import array
from bisect import bisect_left, bisect_right
from types import ModuleType
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...errors import CapacityError, InvalidInstanceError
from .base import (
    ProfileBackend,
    Segment,
    Time,
    check_reserve_args,
    iter_segments,
    merge_equal_segments,
    overlay_reservation_blocks,
    validate_profile_inputs,
)

#: Environment kill-switch for the vectorised path: set (to any non-empty
#: value) before the first import to force the pure-stdlib scalar
#: fallback even when numpy is installed.  CI's numpy-absent bench leg
#: uses it to assert the fallback is output-identical.
NUMPY_DISABLE_ENV = "REPRO_NO_NUMPY"


def _probe_numpy() -> Optional[ModuleType]:
    """The numpy feature probe: import once, honouring the kill-switch.

    Runs exactly once per process (the result is cached in the
    module-level ``_np``), so profile construction never re-probes.
    """
    if os.environ.get(NUMPY_DISABLE_ENV):
        return None
    try:  # feature probe: vectorised reductions/scans are optional
        import numpy
    except ImportError:  # pragma: no cover - numpy ships in the dev image
        return None
    return numpy


#: Cached module-level probe result — the single source of truth every
#: vectorised code path (here and in the replay engine) branches on.
_np: Optional[ModuleType] = _probe_numpy()


def numpy_module() -> Optional[ModuleType]:
    """The cached probe result (``None`` when the scalar fallback rules)."""
    return _np


def vector_info() -> Dict[str, object]:
    """Whether the vectorised path is active, and why not when it isn't.

    Feeds ``repro list --kind backends``; keys: ``active`` (bool),
    ``numpy_version`` (str or None), ``disabled_by_env`` (bool).
    """
    return {
        "active": _np is not None,
        "numpy_version": getattr(_np, "__version__", None),
        "disabled_by_env": bool(os.environ.get(NUMPY_DISABLE_ENV)),
    }

#: Window length (in segments) above which the numpy reduction beats the
#: scalar scan; below it the per-call numpy overhead dominates.
_VECTOR_MIN_SEGMENTS = 64

#: Compaction policy: reclaim the dead prefix once it holds at least
#: this many segments *and* at least half the buffer (so compaction work
#: is always amortised against the O(1) prunes that created the prefix).
_COMPACT_MIN_DEAD = 512

#: Largest representable breakpoint: mutations whose window end exceeds
#: this would otherwise surface as a raw OverflowError from the column
#: insert (and, worse, after a partial boundary split).
_INT64_MAX = 2**63 - 1


def _as_int_time(value: object, what: str) -> int:
    """Coerce an Integral time to ``int``; anything else is a loud error."""
    if isinstance(value, numbers.Integral):
        return int(value)
    raise InvalidInstanceError(
        f"array backend requires integer {what}, got {value!r} "
        f"({type(value).__name__}); use the 'list' or 'tree' backend for "
        f"exact Fraction/float breakpoints, or normalise onto the integer "
        f"grid first (timebase='auto')"
    )


def _int64_column(values: Iterable[int], what: str) -> "array[int]":
    """Build an int64 column, mapping range/type failures to our error."""
    try:
        return array("q", values)
    except (TypeError, OverflowError) as exc:
        raise InvalidInstanceError(
            f"array backend requires machine-int (int64) {what}: {exc}"
        ) from exc


class ArrayProfile(ProfileBackend):
    """Integer-grid capacity profile on flat int64 time/capacity columns.

    Storage is ``self._times[self._lo:]`` / ``self._caps[self._lo:]`` —
    the *live window*; indices before ``_lo`` are a dead prefix left by
    O(1) pruning, invisible to every query and reclaimed by periodic
    compaction.  The first live time is always 0 (re-anchored by
    :meth:`prune_before`), so the live slice stays sorted and bisect
    works with ``lo=self._lo`` untouched.
    """

    __slots__ = ("_times", "_caps", "_lo")

    #: Engine hint: :meth:`prune_before` is O(1), so sweep callers may
    #: prune on every event instead of amortising over a coarse cadence.
    CHEAP_PRUNE = True

    def __init__(
        self,
        times: List[Time],
        caps: List[int],
        _validate: bool = True,
    ) -> None:
        if _validate:
            validate_profile_inputs(times, caps)
        merged_t, merged_c = merge_equal_segments(list(times), list(caps))
        self._times: "array[int]" = _int64_column(
            (_as_int_time(t, "breakpoint times") for t in merged_t), "times"
        )
        self._caps: "array[int]" = _int64_column(
            (int(c) for c in merged_c), "capacities"
        )
        self._lo: int = 0

    def copy(self) -> "ArrayProfile":
        """Independent mutable copy (the dead prefix is not copied)."""
        clone = type(self).__new__(type(self))
        clone._times = self._times[self._lo:]
        clone._caps = self._caps[self._lo:]
        clone._lo = 0
        return clone

    def as_lists(self) -> Tuple[List[Time], List[int]]:
        """Canonical ``(times, caps)`` lists (fresh copies)."""
        lo = self._lo
        return list(self._times[lo:]), list(self._caps[lo:])

    def segment_count(self) -> int:
        """Number of live segments — O(1) (the replay engine samples
        this on every compaction for an exact peak gauge)."""
        return len(self._times) - self._lo

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _index_at(self, t: Time) -> int:
        """Index of the live segment containing time ``t >= 0``."""
        if t < 0:
            raise InvalidInstanceError(f"profile queried at negative time {t!r}")
        return bisect_right(self._times, t, self._lo) - 1

    def _ensure_breakpoint(self, t: int) -> int:
        """Split the segment containing ``t`` so ``t`` is a breakpoint."""
        i = bisect_right(self._times, t, self._lo) - 1
        if self._times[i] == t:
            return i
        self._times.insert(i + 1, t)
        self._caps.insert(i + 1, self._caps[i])
        return i + 1

    def _shift_window(self, start: int, end: int, delta: int) -> None:
        """Add ``delta`` on ``[start, end)`` and restore canonical form
        locally (only the two window boundaries can need merging)."""
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        caps = self._caps
        if j - i == 1:  # the common sweep case: one covered segment
            caps[i] += delta
        else:
            caps[i:j] = array("q", [c + delta for c in caps[i:j]])
        if caps[j] == caps[j - 1]:
            del self._times[j]
            del caps[j]
        if i > self._lo and caps[i] == caps[i - 1]:
            del self._times[i]
            del caps[i]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[Time, ...]:
        """The times at which capacity changes (first is always 0)."""
        return tuple(self._times[self._lo:])

    def capacity_at(self, t: Time) -> int:
        """Number of free processors at time ``t``."""
        return self._caps[self._index_at(t)]

    def final_capacity(self) -> int:
        """Capacity on the unbounded last segment."""
        return self._caps[-1]

    def max_capacity(self) -> int:
        """Largest capacity reached anywhere."""
        return max(self._caps[self._lo:])

    def min_capacity_overall(self) -> int:
        """Smallest capacity reached anywhere."""
        return min(self._caps[self._lo:])

    def segments(self, horizon: Optional[Time] = None) -> Iterator[Segment]:
        """Yield ``(start, end, capacity)``; the last ``end`` is ``horizon``
        (if given) or ``math.inf``."""
        return iter_segments(
            self._times[self._lo:], self._caps[self._lo:], horizon
        )

    def min_capacity(self, start: Time, end: Time) -> int:
        """Minimum capacity over the window ``[start, end)``."""
        if end <= start:
            raise InvalidInstanceError("window must have positive length")
        if start < 0:
            raise InvalidInstanceError(
                f"profile queried at negative time {start!r}"
            )
        times = self._times
        i = bisect_right(times, start, self._lo) - 1
        j = bisect_left(times, end, i + 1)
        caps = self._caps
        if j - i == 1:
            return caps[i]
        if _np is not None and j - i >= _VECTOR_MIN_SEGMENTS:
            return int(_np.frombuffer(caps, dtype=_np.int64)[i:j].min())
        return min(caps[i:j])

    def max_capacity_between(
        self, start: Time, end: Optional[Time] = None
    ) -> int:
        """Largest capacity on ``[start, end)`` (``end=None`` → infinity)."""
        if end is not None and end <= start:
            raise InvalidInstanceError("window must have positive length")
        if start < 0:
            raise InvalidInstanceError(
                f"profile queried at negative time {start!r}"
            )
        times = self._times
        i = bisect_right(times, start, self._lo) - 1
        j = len(times) if end is None else bisect_left(times, end, i + 1)
        caps = self._caps
        if j - i == 1:
            return caps[i]
        if _np is not None and j - i >= _VECTOR_MIN_SEGMENTS:
            return int(_np.frombuffer(caps, dtype=_np.int64)[i:j].max())
        return max(caps[i:j])

    def area(self, start: Time, end: Time) -> Time:
        """Integral of the capacity over ``[start, end)`` (exact for
        integral windows; bisects to the window like the list backend)."""
        if end < start:
            raise InvalidInstanceError("area window must be ordered")
        if end == start:
            return 0
        times, caps = self._times, self._caps
        n = len(times)
        i = self._index_at(start) if start > 0 else self._lo
        total: Time = 0
        for j in range(i, n):
            seg_start = times[j]
            if seg_start >= end:
                break
            seg_end = times[j + 1] if j + 1 < n else math.inf
            lo = seg_start if seg_start > start else start
            hi = seg_end if seg_end < end else end
            if hi > lo:
                total += caps[j] * (hi - lo)
        return total

    def next_breakpoint_after(self, t: Time) -> Optional[Time]:
        """Smallest breakpoint strictly greater than ``t``, or ``None``."""
        i = bisect_right(self._times, t, self._lo)
        return self._times[i] if i < len(self._times) else None

    def earliest_fit(
        self, q: int, duration: Time, after: Time = 0
    ) -> Optional[Time]:
        """Earliest ``s >= after`` with capacity ``>= q`` throughout
        ``[s, s + duration)`` — a branch-light linear scan over the live
        columns (bisected to ``after``), ``None`` exactly when the final
        segment's capacity is below ``q``."""
        if duration <= 0:
            raise InvalidInstanceError("duration must be positive")
        if q < 0:
            raise InvalidInstanceError("width must be non-negative")
        times, caps = self._times, self._caps
        n = len(times)
        if after > 0:
            i = bisect_right(times, after, self._lo) - 1
        else:
            i = self._lo
        candidate: Optional[Time] = None
        while i < n:
            if caps[i] >= q:
                if candidate is None:
                    seg_start = times[i]
                    candidate = seg_start if seg_start > after else after
                if i + 1 == n or times[i + 1] - candidate >= duration:
                    return candidate
            else:
                candidate = None
            i += 1
        return None  # the final (infinite) segment's capacity is below q

    def earliest_fit_many(
        self,
        widths: Sequence[int],
        durations: Sequence[Time],
        after: Time = 0,
    ) -> List[Optional[Time]]:
        """Per-job earliest fits, answered in **one vectorised sweep**.

        Semantically ``[earliest_fit(q, d, after) for q, d in
        zip(widths, durations)]`` — every job is probed against the
        *same* (unmutated) profile, which is exactly the batched decision
        engine's screening question at one event time.  With numpy
        available the whole batch is answered by a handful of
        elementwise passes over the live columns: for each position the
        start of its maximal ``cap >= q`` run (a running maximum of
        failure indices) and the run's end give the candidate start and
        its extent, so the first feasible run per row is one ``argmax``.
        The stdlib fallback (and the tiny-batch case) is the scalar
        loop, property-tested identical.
        """
        qs = list(widths)
        ds = list(durations)
        if len(qs) != len(ds):
            raise InvalidInstanceError(
                "earliest_fit_many needs equal-length widths and durations"
            )
        for q, d in zip(qs, ds):
            if d <= 0:
                raise InvalidInstanceError("duration must be positive")
            if q < 0:
                raise InvalidInstanceError("width must be non-negative")
        if not qs:
            return []
        np = _np
        if (
            np is None
            or len(qs) < 2
            or not isinstance(after, numbers.Integral)
            or not all(isinstance(d, numbers.Integral) for d in ds)
        ):
            return [self.earliest_fit(q, d, after) for q, d in zip(qs, ds)]
        lo = self._lo
        if after > 0:
            i0 = bisect_right(self._times, after, lo) - 1
        else:
            i0 = lo
        t = np.frombuffer(self._times, dtype=np.int64)[i0:]
        c = np.frombuffer(self._caps, dtype=np.int64)[i0:]
        n = len(c)
        after_i = int(after)
        qa = np.asarray(qs, dtype=np.int64)[:, None]
        da = np.asarray(ds, dtype=np.int64)[:, None]
        ok = c[None, :] >= qa                       # (jobs, segments)
        idx = np.arange(n, dtype=np.int64)
        # start index of the ok-run containing each position: one past
        # the most recent failing position (running maximum)
        run_start = np.maximum.accumulate(np.where(ok, -1, idx), axis=1) + 1
        # a failing final position would index one past the columns; its
        # candidate is never read (masked by `ok`), so clamp it
        cand = np.maximum(t[np.minimum(run_start, n - 1)], after_i)
        # first failing position at or after each position (reversed
        # running minimum); n is the "no failure until infinity" sentinel
        nxt = np.minimum.accumulate(
            np.where(ok, n, idx)[:, ::-1], axis=1
        )[:, ::-1]
        t_ext = np.concatenate((t, (np.iinfo(np.int64).max,)))
        feasible = ok & ((nxt == n) | (t_ext[nxt] - cand >= da))
        hit = feasible.any(axis=1)
        first = feasible.argmax(axis=1)
        starts = cand[np.arange(len(qs)), first]
        return [
            int(s) if h else None for s, h in zip(starts.tolist(), hit.tolist())
        ]

    def fits_many_at(
        self,
        start: Time,
        widths: Sequence[int],
        durations: Sequence[Time],
    ) -> List[bool]:
        """Batched "fits at ``start``" from one cumulative minimum.

        All the windows share their left edge, so ``min_capacity(start,
        start + d)`` for every job is a prefix minimum of the live
        capacity column starting at ``start``'s segment: one 1-D
        ``minimum.accumulate`` plus a single ``searchsorted`` over the
        batch's window ends answers the whole batch — the cheap form of
        the :meth:`earliest_fit_many` screen the batched replay loop
        asks at every event time.  Falls back to the scalar loop
        without numpy, for tiny batches, or off-grid arguments.
        """
        qs = list(widths)
        ds = list(durations)
        if len(qs) != len(ds):
            raise InvalidInstanceError(
                "fits_many_at needs equal-length widths and durations"
            )
        np = _np
        if (
            np is None
            or len(qs) < 2
            or type(start) is not int
            or not all(type(d) is int and d > 0 for d in ds)
            or not all(type(q) is int and q >= 0 for q in qs)
        ):
            return [self.fits(q, start, d) for q, d in zip(qs, ds)]
        times, caps = self._times, self._caps
        lo = self._lo
        i0 = bisect_right(times, start, lo) - 1 if start > 0 else lo
        try:
            ends = np.asarray([start + d - 1 for d in ds], dtype=np.int64)
        except OverflowError:
            return [self.fits(q, start, d) for q, d in zip(qs, ds)]
        t = np.frombuffer(times, dtype=np.int64)[i0:]
        cm = np.minimum.accumulate(np.frombuffer(caps, dtype=np.int64)[i0:])
        # the last segment covered by [start, end): the one containing
        # end - 1 (ends beyond the final breakpoint clamp to it, which
        # is exactly the infinite tail segment)
        idx = np.searchsorted(t, ends, side="right") - 1
        fit = cm[idx] >= np.asarray(qs, dtype=np.int64)
        result: List[bool] = fit.tolist()
        return result

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def reserve(self, start: Time, duration: Time, amount: int) -> None:
        """Subtract ``amount`` processors over ``[start, start + duration)``.

        Raises :class:`~repro.errors.CapacityError` (profile unchanged)
        when any covered instant would drop below ``amount``.  ``start``
        and ``duration`` must be integers (the backend's grid contract).
        """
        check_reserve_args(start, duration, amount, "reserved")
        if amount == 0:
            return
        if type(start) is not int:
            start = _as_int_time(start, "reservation start")
        if type(duration) is not int:
            duration = _as_int_time(duration, "reservation duration")
        end = start + duration
        if end > _INT64_MAX:
            raise InvalidInstanceError(
                f"array backend requires machine-int (int64) times: "
                f"window end {end!r} overflows"
            )
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        caps = self._caps
        amount = int(amount)
        lowest = min(caps[i:j])
        if lowest < amount:
            # roll back the breakpoint splits so the profile is untouched
            if caps[j] == caps[j - 1]:
                del self._times[j]
                del caps[j]
            if i > self._lo and caps[i] == caps[i - 1]:
                del self._times[i]
                del caps[i]
            raise CapacityError(
                f"cannot reserve {amount} processors on [{start}, {end}): "
                f"minimum available is {lowest}"
            )
        if j - i == 1:
            caps[i] -= amount
        else:
            caps[i:j] = array("q", [c - amount for c in caps[i:j]])
        if caps[j] == caps[j - 1]:
            del self._times[j]
            del caps[j]
        if i > self._lo and caps[i] == caps[i - 1]:
            del self._times[i]
            del caps[i]

    def add(self, start: Time, duration: Time, amount: int) -> None:
        """Add ``amount`` processors over ``[start, start + duration)``
        (inverse of :meth:`reserve`)."""
        check_reserve_args(start, duration, amount, "added")
        if amount == 0:
            return
        if type(start) is not int:
            start = _as_int_time(start, "start time")
        if type(duration) is not int:
            duration = _as_int_time(duration, "duration")
        end = start + duration
        if end > _INT64_MAX:
            raise InvalidInstanceError(
                f"array backend requires machine-int (int64) times: "
                f"window end {end!r} overflows"
            )
        self._shift_window(start, end, int(amount))

    def fits(self, q: int, start: Time, duration: Time) -> bool:
        """True when a ``q``-wide block of length ``duration`` fits at
        ``start`` (inlined min scan: the hot probe of the replay loop)."""
        if duration <= 0:
            raise InvalidInstanceError("window must have positive length")
        if start < 0:
            raise InvalidInstanceError(
                f"profile queried at negative time {start!r}"
            )
        times = self._times
        i = bisect_right(times, start, self._lo) - 1
        j = bisect_left(times, start + duration, i + 1)
        caps = self._caps
        if j - i == 1:
            return caps[i] >= q
        return min(caps[i:j]) >= q

    def reserve_fitting(self, start: Time, duration: Time, amount: int) -> None:
        """Commit a just-verified reservation without revalidating
        capacity (see :meth:`ProfileBackend.reserve_fitting` for the
        contract; arguments are still validated — only the windowed
        minimum is skipped); one boundary split + windowed shift."""
        check_reserve_args(start, duration, amount, "reserved")
        if amount == 0:
            return
        if type(start) is not int:
            start = _as_int_time(start, "reservation start")
        if type(duration) is not int:
            duration = _as_int_time(duration, "reservation duration")
        end = start + duration
        if end > _INT64_MAX:
            raise InvalidInstanceError(
                f"array backend requires machine-int (int64) times: "
                f"window end {end!r} overflows"
            )
        self._shift_window(start, end, -int(amount))

    def try_reserve(self, start: Time, duration: Time, amount: int) -> bool:
        """Probe-and-commit in one bisection: reserve iff it fits.

        The replay hot loop's placement primitive — the probe's window
        indices are reused for the commit, so a successful placement
        costs one bisect pair instead of the two a ``fits`` +
        ``reserve`` pair pays.
        """
        check_reserve_args(start, duration, amount, "reserved")
        if type(start) is not int:
            start = _as_int_time(start, "reservation start")
        if type(duration) is not int:
            duration = _as_int_time(duration, "reservation duration")
        end = start + duration
        if end > _INT64_MAX:
            # before the capacity screen, so an out-of-grid time is
            # always loud, never masked as an ordinary "does not fit"
            raise InvalidInstanceError(
                f"array backend requires machine-int (int64) times: "
                f"window end {end!r} overflows"
            )
        times, caps = self._times, self._caps
        i = bisect_right(times, start, self._lo) - 1
        if caps[i] < amount:  # the window's first segment already fails
            return False
        j = bisect_left(times, end, i + 1)
        if j - i > 1 and min(caps[i:j]) < amount:
            return False
        if amount == 0:
            return True
        # split the boundaries, reusing the probe's indices
        if times[i] != start:
            i += 1
            times.insert(i, start)
            caps.insert(i, caps[i - 1])
            j += 1
        if j == len(times) or times[j] != end:
            times.insert(j, end)
            caps.insert(j, caps[j - 1])
        amount = int(amount)
        if j - i == 1:
            caps[i] -= amount
        else:
            caps[i:j] = array("q", [c - amount for c in caps[i:j]])
        if caps[j] == caps[j - 1]:
            del times[j]
            del caps[j]
        if i > self._lo and caps[i] == caps[i - 1]:
            del times[i]
            del caps[i]
        return True

    def prune_before(self, t: Time) -> None:
        """Compact behind the frontier ``t`` in O(1): bump the live-window
        offset to the segment containing ``t`` and re-anchor it at time 0
        (see :meth:`ProfileBackend.prune_before` for the soundness
        contract).  The dead prefix is reclaimed once it exceeds
        ``_COMPACT_MIN_DEAD`` segments *and* half the buffer, so memory
        stays proportional to the live window while each prune stays
        constant-time."""
        if t <= 0:
            return
        i = self._index_at(t)
        if i > self._lo:
            self._lo = i
            self._times[i] = 0
        lo = self._lo
        if lo >= _COMPACT_MIN_DEAD and 2 * lo >= len(self._times):
            del self._times[:lo]
            del self._caps[:lo]
            self._lo = 0

    def reserve_many(self, blocks: Iterable[Tuple[Time, Time, int]]) -> None:
        """Apply many ``(start, duration, amount)`` reservations in one
        overlay sweep (all-or-nothing, like the list backend)."""
        new_times, new_caps = overlay_reservation_blocks(
            *self.as_lists(), blocks
        )
        times = _int64_column(
            (_as_int_time(t, "breakpoint times") for t in new_times), "times"
        )
        self._times = times
        self._caps = _int64_column(new_caps, "capacities")
        self._lo = 0

    def try_reserve_many(
        self, start: Time, blocks: Sequence[Tuple[Time, int]]
    ) -> bool:
        """All-or-nothing commit of co-starting blocks, overlay-checked.

        See :meth:`ProfileBackend.try_reserve_many` for the contract.
        Because every block starts at ``start``, the batch's outstanding
        demand is a staircase that only steps *down* at each distinct
        block end — so feasibility is at most ``len(blocks)`` windowed
        minima over the live columns (no profile rebuild), and the
        commit reuses the single-reservation fast path per block.
        """
        pending: List[Tuple[int, int]] = []
        for duration, amount in blocks:
            check_reserve_args(start, duration, amount, "reserved")
            if type(duration) is not int:
                duration = _as_int_time(duration, "reservation duration")
            if amount:
                pending.append((duration, int(amount)))
        if not pending:
            return True
        if type(start) is not int:
            start = _as_int_time(start, "reservation start")
        depth = 0
        ends: List[Tuple[int, int]] = []
        for duration, amount in pending:
            end = start + duration
            if end > _INT64_MAX:
                raise InvalidInstanceError(
                    f"array backend requires machine-int (int64) times: "
                    f"window end {end!r} overflows"
                )
            depth += amount
            ends.append((end, amount))
        ends.sort()
        prev = start
        for end, amount in ends:
            if end > prev and self.min_capacity(prev, end) < depth:
                return False
            prev = end
            depth -= amount
        for duration, amount in pending:
            self.reserve_fitting(start, duration, amount)
        return True

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def first_time_area_reaches(self, work: Time, start: Time = 0) -> Optional[Time]:
        """Smallest ``T`` with ``area(start, T) >= work`` (same division
        semantics as the list backend, so answers are type-identical)."""
        if work <= 0:
            return start
        times, caps = self._times, self._caps
        n = len(times)
        i = self._index_at(start) if start > 0 else self._lo
        acc: Time = 0
        for j in range(i, n):
            seg_start = times[j]
            seg_end = times[j + 1] if j + 1 < n else math.inf
            cap = caps[j]
            if seg_end <= start:
                continue
            lo = seg_start if seg_start > start else start
            if seg_end == math.inf:
                if cap == 0:
                    return None
                # list-backend division parity: type-identical answers
                return lo + (work - acc) / cap  # repro: noqa RPL202
            gain = cap * (seg_end - lo)
            if acc + gain >= work:
                if cap == 0:
                    return seg_end
                # list-backend division parity: type-identical answers
                return lo + (work - acc) / cap  # repro: noqa RPL202
            acc += gain
        return None  # pragma: no cover - the last segment is infinite
