"""The profile-backend protocol: what every availability structure provides.

A *profile backend* represents integer capacity as a piecewise-constant
function of time on ``[0, inf)`` — the availability ``m(t) = m - U(t)`` of
Section 3.1 — and supports the operation set every scheduler in
:mod:`repro.algorithms` is written against:

===========================  ==============================================
point query                  :meth:`ProfileBackend.capacity_at`
window queries               :meth:`ProfileBackend.min_capacity`,
                             :meth:`ProfileBackend.area`
placement query              :meth:`ProfileBackend.earliest_fit`
mutation                     :meth:`ProfileBackend.reserve`,
                             :meth:`ProfileBackend.add`
batch mutation               :meth:`ProfileBackend.reserve_many`
area inversion               :meth:`ProfileBackend.first_time_area_reaches`
===========================  ==============================================

Two invariants are part of the protocol, not of any one implementation:

* **canonical form** — breakpoints are strictly increasing, start at 0,
  and adjacent segments always differ in capacity (mutators re-establish
  this), so ``breakpoints`` is exactly the set of instants where
  availability changes and backends compare equal iff they represent the
  same function;
* **exact arithmetic** — capacities are non-negative ``int``; times may be
  ``int``, ``float`` or :class:`fractions.Fraction` and are never coerced,
  so the worst-case constructions of :mod:`repro.theory` stay exact in
  every backend.

Concrete backends subclass this ABC and implement the primitive set; the
derived operations (``fits``, ``inverted``, ``truncated_after``, equality,
hashing, the constructors) are shared here so all backends agree on their
semantics by construction.

The protocol is *enforced*, not just documented: ``repro lint`` compares
every backend listed in ``[tool.repro-lint.protocol]`` against this
class — a missing primitive is RPL301, a signature that drifts from the
declaration here is RPL302, a public method a backend grows that the
protocol never declared is RPL303, and an inherited fallback where the
config demands an override (the array backend's hot paths) is RPL304.
To extend the protocol, declare the primitive here first (body =
docstring + ``raise NotImplementedError``), then implement it in every
backend in the same CI run.

Mutation-cost tradeoff (the ``_shift_window`` ledger)
-----------------------------------------------------
A ``reserve``/``add`` over a window covering ``w`` of the profile's ``n``
segments costs, per backend:

* ``list`` — O(w + log n): bisect to the window, one C-level slice
  rewrite of the covered capacities, boundary-only re-merging.  PR 3
  replaced the original O(n) full re-merge with this local
  ``_shift_window``; the interior update is still Θ(w), so *wide*
  windows (w → n) remain linear — that is a deliberate gate, not an
  accident: making it sublinear needs lazy range-add aggregates, which
  is exactly the ``tree`` backend, and duplicating that machinery in
  the flat backend would cost its small constants.
* ``tree`` — O(log n) lazy range add regardless of w: wins wide-window
  *churn* asymptotically, loses narrow sweep-local mutation on
  constants.
* ``array`` — same O(w + log n) shape as ``list`` but on int64 columns
  with O(1) ``prune_before``, so a rolling sweep that prunes behind its
  clock keeps n (and hence every w) at the active-window size.

``benchmarks/bench_profile_backends.py`` measures all three per
scenario; pick the backend whose winning column matches the workload
(see the package docstring's "choosing a backend" table).
"""

from __future__ import annotations

import math
import numbers
from bisect import bisect_right
from fractions import Fraction
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ...errors import CapacityError, InvalidInstanceError

#: The time types profiles are exercised with in practice.  The protocol
#: is duck-typed (any ordered numeric with exact +/-/* works), but the
#: alias names the supported surface for annotations and readers.
Time = Union[int, float, Fraction]

Segment = Tuple[object, object, int]  # (start, end, capacity); end may be math.inf

#: One ``(start, duration, amount)`` reservation block.
Block = Tuple[Time, Time, int]


def validate_profile_inputs(times: List[Time], caps: List[int]) -> None:
    """Shared construction-time validation (raises InvalidInstanceError)."""
    if not times or times[0] != 0:
        raise InvalidInstanceError("profile must start at time 0")
    if len(times) != len(caps):
        raise InvalidInstanceError("times and caps must have equal length")
    for i in range(1, len(times)):
        if not times[i - 1] < times[i]:
            raise InvalidInstanceError(
                f"profile breakpoints must be strictly increasing, got "
                f"{times[i - 1]!r} then {times[i]!r}"
            )
    for c in caps:
        if not isinstance(c, numbers.Integral) or c < 0:
            raise InvalidInstanceError(
                f"profile capacities must be non-negative integers, got {c!r}"
            )


def merge_equal_segments(
    times: List[Time], caps: List[int]
) -> Tuple[List[Time], List[int]]:
    """Drop breakpoints where capacity does not change (canonical form)."""
    merged_t, merged_c = [times[0]], [caps[0]]
    for t, c in zip(times[1:], caps[1:]):
        if c != merged_c[-1]:
            merged_t.append(t)
            merged_c.append(c)
    return merged_t, merged_c


def check_reserve_args(start: Time, duration: Time, amount: int,
                       verb: str) -> None:
    """Shared argument validation for reserve/add/reserve_many."""
    if duration <= 0:
        raise InvalidInstanceError("duration must be positive")
    if (type(amount) is not int and not isinstance(amount, numbers.Integral)) \
            or amount < 0:
        raise InvalidInstanceError(
            f"{verb} amount must be a non-negative integer, got {amount!r}"
        )
    if start < 0:
        if verb == "added":
            raise InvalidInstanceError("cannot add capacity before time 0")
        raise InvalidInstanceError("reservation cannot start before time 0")


def overlay_reservation_blocks(
    times: List[Time], caps: List[int], blocks: Iterable[Block]
) -> Tuple[List[Time], List[int]]:
    """Apply many ``(start, duration, amount)`` reservations to canonical
    ``(times, caps)`` lists in **one sweep**, returning fresh merged lists.

    The shared engine behind the backends' atomic :meth:`reserve_many`:
    block boundaries become capacity deltas, a single merge pass overlays
    them on the existing breakpoints, and a :class:`CapacityError` is
    raised (before anything is returned, so callers stay untouched) when
    any instant would drop below zero.
    """
    deltas: dict[Time, int] = {}
    for start, duration, amount in blocks:
        check_reserve_args(start, duration, amount, "reserved")
        if amount == 0:
            continue
        end = start + duration
        deltas[start] = deltas.get(start, 0) - int(amount)
        deltas[end] = deltas.get(end, 0) + int(amount)
    if not deltas:
        return list(times), list(caps)
    new_times = sorted(set(times) | set(deltas))
    new_caps: List[int] = []
    src = 0  # index into the existing segments
    pending = 0  # accumulated reservation depth
    for t in new_times:
        while src + 1 < len(times) and times[src + 1] <= t:
            src += 1
        pending += deltas.get(t, 0)
        cap = caps[src] + pending
        if cap < 0:
            raise CapacityError(
                f"cannot reserve {-cap} processor(s) beyond availability "
                f"at time {t}: batch reservation overflows the profile"
            )
        new_caps.append(cap)
    return merge_equal_segments(new_times, new_caps)


class ProfileBackend:
    """Abstract piecewise-constant availability function on ``[0, inf)``.

    Subclasses implement the primitives marked ``NotImplementedError``;
    everything else is derived here so backends share exact semantics.
    ``repro lint`` (rules RPL301–RPL304) keeps registered backends
    aligned with the primitive set and signatures declared here.
    """

    __slots__ = ()

    # ------------------------------------------------------------------
    # constructors (shared)
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, capacity: int) -> "ProfileBackend":
        """A machine with ``capacity`` processors free at every time."""
        return cls([0], [capacity])

    @classmethod
    def from_reservations(
        cls, m: int, reservations: Iterable[object]
    ) -> "ProfileBackend":
        """Availability of an ``m``-processor machine minus its reservations.

        Uses the batch primitive :meth:`reserve_many`, so construction
        costs one sweep instead of one full rebuild per reservation.
        Raises :class:`~repro.errors.CapacityError` when the reservations
        overlap beyond ``m`` processors (the instance is then infeasible in
        the sense of Section 3.1).
        """
        profile = cls.constant(m)
        profile.reserve_many(
            (res.start, res.p, res.q) for res in reservations
        )
        return profile

    @classmethod
    def from_segments(
        cls, segments: Iterable[Tuple[Time, int]]
    ) -> "ProfileBackend":
        """Build from ``(start, capacity)`` pairs; last extends to infinity."""
        times: List[Time] = []
        caps: List[int] = []
        for start, cap in segments:
            times.append(start)
            caps.append(cap)
        return cls(times, caps)

    # ------------------------------------------------------------------
    # primitives every backend implements
    # ------------------------------------------------------------------
    def as_lists(self) -> Tuple[List[Time], List[int]]:
        """Canonical ``(times, caps)`` lists (fresh copies)."""
        raise NotImplementedError

    def copy(self) -> "ProfileBackend":
        """Independent mutable copy."""
        raise NotImplementedError

    def capacity_at(self, t: Time) -> int:
        """Number of free processors at time ``t``."""
        raise NotImplementedError

    def min_capacity(self, start: Time, end: Time) -> int:
        """Minimum capacity over the window ``[start, end)``."""
        raise NotImplementedError

    def area(self, start: Time, end: Time) -> Time:
        """Integral of the capacity over ``[start, end)`` (available work
        area).  Implementations locate ``start``'s segment by bisection /
        tree descent rather than scanning from time 0."""
        raise NotImplementedError

    def earliest_fit(self, q: int, duration: Time,
                     after: Time = 0) -> Optional[Time]:
        """Earliest ``s >= after`` such that capacity is ``>= q`` throughout
        ``[s, s + duration)``; ``None`` exactly when the final (infinite)
        segment has capacity below ``q``."""
        raise NotImplementedError

    def reserve(self, start: Time, duration: Time, amount: int) -> None:
        """Subtract ``amount`` processors over ``[start, start + duration)``.

        Raises :class:`~repro.errors.CapacityError` (leaving the profile
        unchanged) when any covered instant would drop below zero.
        """
        raise NotImplementedError

    def add(self, start: Time, duration: Time, amount: int) -> None:
        """Add ``amount`` processors over ``[start, start + duration)``
        (inverse of :meth:`reserve`)."""
        raise NotImplementedError

    def reserve_fitting(self, start: Time, duration: Time,
                        amount: int) -> None:
        """Commit a reservation the caller has *just verified* fits
        (``fits(amount, start, duration)`` held with no intervening
        mutation).  Semantically identical to :meth:`reserve`; backends
        may skip capacity revalidation, so violating the precondition on
        such a backend corrupts the profile instead of raising — only
        tight scheduling loops that pair it with :meth:`fits` (the
        replay engine's fused decision passes) should call this.
        """
        self.reserve(start, duration, amount)

    def try_reserve(self, start: Time, duration: Time, amount: int) -> bool:
        """Reserve ``amount`` over ``[start, start + duration)`` iff it
        fits; returns whether it was committed.

        The fused probe-and-commit of every greedy placement loop: one
        call replaces the ``fits`` + ``reserve`` pair (which pays the
        window location twice).  Backends override this with a variant
        that reuses the probe's bisection for the commit.
        """
        if self.min_capacity(start, start + duration) < amount:
            return False
        self.reserve_fitting(start, duration, amount)
        return True

    def first_time_area_reaches(self, work: Time,
                                start: Time = 0) -> Optional[Time]:
        """Smallest ``T`` with ``area(start, T) >= work`` (area bound
        support); ``None`` only on degenerate zero-tail profiles."""
        raise NotImplementedError

    def prune_before(self, t: Time) -> None:
        """Compact the profile behind the time frontier ``t``.

        Every breakpoint strictly before ``t`` is dropped and the
        segment containing ``t`` is re-anchored to start at time 0, so
        the stored size becomes the number of *future* capacity changes
        — the operation the rolling-horizon replay engine
        (:mod:`repro.simulation.replay`) uses to keep a million-job
        trace's profile bounded by its active window.

        **Soundness.**  Pruning rewrites the function on ``[0, t)`` (the
        pre-frontier history becomes one flat segment at the frontier
        segment's capacity) and is the identity on ``[t, inf)``.  It is
        therefore sound for exactly the callers that never look behind
        their own clock: a forward sweep whose current time has reached
        ``t`` only ever issues queries and mutations over windows
        contained in ``[t, inf)`` — ``capacity_at(u)``,
        ``min_capacity``/``max_capacity_between``/``area`` on
        ``[a, b) ⊆ [t, inf)``, ``earliest_fit(..., after >= t)`` and
        ``reserve``/``add`` starting at or after ``t`` — and each of
        these depends only on the function's restriction to ``[t, inf)``:

        * point/window queries with ``a >= t`` bisect into the segment
          containing ``a``; re-anchoring the frontier segment's start to
          0 moves its left edge but no covered instant's capacity, so
          the located segment and every later one are unchanged;
        * ``earliest_fit`` clamps its candidate to
          ``max(segment start, after)``; since the re-anchored start
          ``0 <= t <= after``, the clamp returns ``after`` exactly as it
          did on the unpruned profile;
        * windowed ``area``/``first_time_area_reaches`` integrate
          ``max(segment start, a)`` to ``min(segment end, b)`` with
          ``a >= t``, which never reaches into the rewritten region.

        What pruning deliberately gives up is the *global* protocol
        view: ``breakpoints``, equality/hash, ``area(0, x)`` for
        ``x < t`` and ``inverted``/``truncated_after`` now describe the
        compacted function, not the original — which is why consumers
        must own their profile copy (schedulers and the replay engine
        always do; :meth:`~repro.core.instance.ReservationInstance.
        availability_profile` hands out fresh copies).  A differential
        test (``tests/test_replay.py``) drives pruned and unpruned
        backends through identical post-frontier operation sequences and
        asserts equal answers.
        """
        raise NotImplementedError

    def segments(self, horizon: Optional[Time] = None) -> Iterator[Segment]:
        """Yield ``(start, end, capacity)``; the last ``end`` is ``horizon``
        (if given) or ``math.inf``."""
        raise NotImplementedError

    def next_breakpoint_after(self, t: Time) -> Optional[Time]:
        """Smallest breakpoint strictly greater than ``t``, or ``None``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # derived queries (shared; backends may override with faster variants)
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[Time, ...]:
        """The times at which capacity changes (first is always 0)."""
        return tuple(self.as_lists()[0])

    def segment_count(self) -> int:
        """Number of segments (= breakpoints) the profile holds.

        Derived in O(n) here; backends with cheaper bookkeeping override
        it (the list and array backends answer in O(1)), which is what
        lets the replay engine keep an exact peak-size gauge.
        """
        return len(self.as_lists()[0])

    def final_capacity(self) -> int:
        """Capacity on the unbounded last segment (after every reservation)."""
        return self.as_lists()[1][-1]

    def max_capacity(self) -> int:
        """Largest capacity reached anywhere."""
        return max(self.as_lists()[1])

    def min_capacity_overall(self) -> int:
        """Smallest capacity reached anywhere."""
        return min(self.as_lists()[1])

    def fits(self, q: int, start: Time, duration: Time) -> bool:
        """True when a ``q``-wide block of length ``duration`` fits at ``start``."""
        return self.min_capacity(start, start + duration) >= q

    def earliest_fit_many(
        self,
        widths: Sequence[int],
        durations: Sequence[Time],
        after: Time = 0,
    ) -> List[Optional[Time]]:
        """Per-job earliest fits against the *same* (unmutated) profile.

        Semantically ``[earliest_fit(q, d, after) for q, d in
        zip(widths, durations)]`` — the batched replay engine's
        screening query at one event time.  The generic implementation
        is that scalar loop; the array backend overrides it with a
        single vectorised sweep over its columns when numpy is present.
        """
        qs = list(widths)
        ds = list(durations)
        if len(qs) != len(ds):
            raise InvalidInstanceError(
                "earliest_fit_many needs equal-length widths and durations"
            )
        return [self.earliest_fit(q, d, after) for q, d in zip(qs, ds)]

    def fits_many_at(
        self,
        start: Time,
        widths: Sequence[int],
        durations: Sequence[Time],
    ) -> List[bool]:
        """Per-job "does it fit at ``start``" against the same profile.

        Semantically ``[self.fits(q, start, d) for q, d in zip(widths,
        durations)]`` — the ``after=start`` specialisation of
        :meth:`earliest_fit_many` restricted to the one candidate the
        batched decision pass screens on.  Because every window shares
        the left edge, the array backend answers the whole batch from a
        single cumulative minimum over its live columns.
        """
        qs = list(widths)
        ds = list(durations)
        if len(qs) != len(ds):
            raise InvalidInstanceError(
                "fits_many_at needs equal-length widths and durations"
            )
        return [self.fits(q, start, d) for q, d in zip(qs, ds)]

    def max_capacity_between(self, start: Time,
                             end: Optional[Time] = None) -> int:
        """Largest capacity reached on the window ``[start, end)``.

        ``end=None`` means "until infinity" (the suffix maximum).  This is
        the dual of :meth:`min_capacity` that drives the incremental LSRC
        ready-set: when the maximum until the next decision point is below
        the smallest pending ``q_i``, the whole scan can be skipped.
        Backends override this with sublinear variants.
        """
        if start < 0:
            raise InvalidInstanceError(
                f"profile queried at negative time {start!r}"
            )
        if end is not None and end <= start:
            raise InvalidInstanceError("window must have positive length")
        times, caps = self.as_lists()
        i = bisect_right(times, start) - 1
        if end is None:
            return max(caps[i:])
        best = caps[i]
        n = len(times)
        i += 1
        while i < n and times[i] < end:
            if caps[i] > best:
                best = caps[i]
            i += 1
        return best

    # ------------------------------------------------------------------
    # batch mutation
    # ------------------------------------------------------------------
    def reserve_many(self, blocks: Iterable[Block]) -> None:
        """Apply many ``(start, duration, amount)`` reservations atomically.

        Either every block is applied or (on :class:`CapacityError` or
        invalid arguments) none is.  The generic implementation validates
        every block up front, then reserves one at a time and rolls back
        on a capacity failure; list-based backends override this with a
        single sweep so ``k`` reservations cost one rebuild, not ``k``.
        """
        pending: List[Block] = []
        for start, duration, amount in blocks:
            check_reserve_args(start, duration, amount, "reserved")
            pending.append((start, duration, amount))
        applied: List[Block] = []
        try:
            for start, duration, amount in pending:
                self.reserve(start, duration, amount)
                applied.append((start, duration, amount))
        except CapacityError:
            for start, duration, amount in reversed(applied):
                if amount:
                    self.add(start, duration, amount)
            raise

    def try_reserve_many(
        self, start: Time, blocks: Sequence[Tuple[Time, int]]
    ) -> bool:
        """Commit many ``(duration, amount)`` blocks all starting at
        ``start`` iff they fit **together**; returns whether committed.

        The batched twin of :meth:`try_reserve`: a batched decision pass
        screens each job individually, then commits every accepted
        placement of one event time atomically — ``False`` leaves the
        profile untouched, and the caller falls back to the scalar
        sequential pass (batch interference is possible even when every
        block fits alone).  The generic implementation defers to the
        all-or-nothing :meth:`reserve_many`; the array backend overrides
        it with layered windowed-minimum checks on its live columns.
        """
        pending: List[Tuple[Time, int]] = []
        for duration, amount in blocks:
            check_reserve_args(start, duration, amount, "reserved")
            pending.append((duration, amount))
        try:
            self.reserve_many(
                (start, duration, amount) for duration, amount in pending
            )
        except CapacityError:
            return False
        return True

    # ------------------------------------------------------------------
    # derived transformations (shared)
    # ------------------------------------------------------------------
    def inverted(self, m: int) -> "ProfileBackend":
        """The unavailability profile ``U(t) = m - capacity(t)``.

        Raises when capacity exceeds ``m`` anywhere.
        """
        times, caps = self.as_lists()
        out = []
        for c in caps:
            if c > m:
                raise InvalidInstanceError(
                    f"capacity {c} exceeds machine size {m}; cannot invert"
                )
            out.append(m - c)
        return type(self)(times, out, _validate=False)

    def is_nondecreasing(self) -> bool:
        """True when capacity never decreases over time.

        This is the availability-side phrasing of the paper's
        *non-increasing reservations* restriction (Section 4.1):
        ``U`` non-increasing  ⇔  ``m(t)`` non-decreasing.
        """
        caps = self.as_lists()[1]
        return all(a <= b for a, b in zip(caps, caps[1:]))

    def truncated_after(self, horizon: Time) -> "ProfileBackend":
        """Profile equal to this one before ``horizon`` and constant after.

        The constant is the capacity at ``horizon``.  This is the ``I'``
        transformation in the proof of Proposition 1.
        """
        if horizon < 0:
            raise InvalidInstanceError("horizon must be >= 0")
        all_times, all_caps = self.as_lists()
        cap_at_h = self.capacity_at(horizon)
        times = []
        caps = []
        for t, c in zip(all_times, all_caps):
            if t >= horizon:
                break
            times.append(t)
            caps.append(c)
        if not times:
            return type(self)([0], [cap_at_h], _validate=False)
        if caps[-1] != cap_at_h:
            times.append(horizon)
            caps.append(cap_at_h)
        return type(self)(times, caps, _validate=False)

    # ------------------------------------------------------------------
    # dunder (shared: backends compare by the function they represent)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProfileBackend):
            return NotImplemented
        return self.as_lists() == other.as_lists()

    def __hash__(self) -> int:
        times, caps = self.as_lists()
        return hash((tuple(times), tuple(caps)))

    def __repr__(self) -> str:
        times, caps = self.as_lists()
        parts = ", ".join(f"[{t}:{c}]" for t, c in zip(times, caps))
        return f"{type(self).__name__}({parts})"


def iter_segments(times: Sequence[Time], caps: Sequence[int],
                  horizon: Optional[Time] = None) -> Iterator[Segment]:
    """Shared ``segments()`` semantics over canonical lists."""
    n = len(times)
    for i in range(n):
        start = times[i]
        end = times[i + 1] if i + 1 < n else (
            horizon if horizon is not None else math.inf
        )
        if horizon is not None:
            if start >= horizon:
                return
            end = min(end, horizon)
        yield (start, end, caps[i])
