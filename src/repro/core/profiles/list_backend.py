"""The exact list backend: sorted breakpoint arrays, simple and canonical.

:class:`ListProfile` is the original, deliberately transparent
implementation of the profile protocol: two parallel lists (breakpoint
times and segment capacities) kept in canonical merged form after every
mutation.  Point and window queries bisect into the arrays; mutations
splice and re-merge, which is O(n) per call but with small constants and
zero bookkeeping — the right trade-off for the exact Fraction-heavy
constructions of :mod:`repro.theory` and for small instances.

For large traces the tree backend
(:class:`~repro.core.profiles.tree_backend.TreeProfile`) implements the
same protocol in O(log n) per operation; ``benchmarks/
bench_profile_backends.py`` measures the crossover.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from ...errors import CapacityError, InvalidInstanceError
from .base import (
    Block,
    ProfileBackend,
    Segment,
    Time,
    check_reserve_args,
    iter_segments,
    merge_equal_segments,
    overlay_reservation_blocks,
    validate_profile_inputs,
)


class ListProfile(ProfileBackend):
    """Integer capacity as a piecewise-constant function of time on
    ``[0, inf)``, stored as flat breakpoint/capacity lists."""

    __slots__ = ("_times", "_caps")

    def __init__(self, times: List[Time], caps: List[int],
                 _validate: bool = True) -> None:
        if _validate:
            validate_profile_inputs(times, caps)
        self._times = list(times)
        self._caps = [int(c) for c in caps]
        self._merge_equal()

    def copy(self) -> "ListProfile":
        """Independent mutable copy."""
        clone = type(self).__new__(type(self))
        clone._times = list(self._times)
        clone._caps = list(self._caps)
        return clone

    def as_lists(self) -> Tuple[List[Time], List[int]]:
        """Canonical ``(times, caps)`` lists (fresh copies)."""
        return list(self._times), list(self._caps)

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _merge_equal(self) -> None:
        """Restore the invariant that adjacent segments differ in capacity."""
        self._times, self._caps = merge_equal_segments(self._times, self._caps)

    def _index_at(self, t: Time) -> int:
        """Index of the segment containing time ``t >= 0``."""
        if t < 0:
            raise InvalidInstanceError(f"profile queried at negative time {t!r}")
        return bisect_right(self._times, t) - 1

    def _ensure_breakpoint(self, t: Time) -> int:
        """Split the segment containing ``t`` so ``t`` is a breakpoint.

        Returns the index whose segment now starts at ``t``.
        """
        i = self._index_at(t)
        if self._times[i] == t:
            return i
        self._times.insert(i + 1, t)
        self._caps.insert(i + 1, self._caps[i])
        return i + 1

    def _shift_window(self, start: Time, end: Time, delta: int) -> None:
        """Add ``delta`` to every segment in ``[start, end)`` and restore
        canonical form *locally*: a uniform delta preserves the inequality
        between interior neighbours, so only the two window boundaries can
        need merging — reserve/add are O(window + log n), not O(n).

        The interior update is a single slice rewrite (one C-level
        splice instead of ``w`` indexed ``+=``), which keeps wide-window
        churn competitive with the other backends; the Θ(w) shape
        itself is the documented trade (see the mutation-cost ledger in
        :mod:`repro.core.profiles.base`) — going sublinear needs the
        tree backend's lazy aggregates.
        """
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        caps = self._caps
        if j - i == 1:  # the common sweep-local case
            caps[i] += delta
        else:
            caps[i:j] = [c + delta for c in caps[i:j]]
        if caps[j] == caps[j - 1]:
            del self._times[j]
            del caps[j]
        if i > 0 and caps[i] == caps[i - 1]:
            del self._times[i]
            del caps[i]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[Time, ...]:
        """The times at which capacity changes (first is always 0)."""
        return tuple(self._times)

    def capacity_at(self, t: Time) -> int:
        """Number of free processors at time ``t``."""
        return self._caps[self._index_at(t)]

    def segment_count(self) -> int:
        """Number of segments — O(1)."""
        return len(self._times)

    def final_capacity(self) -> int:
        """Capacity on the unbounded last segment (after every reservation)."""
        return self._caps[-1]

    def max_capacity(self) -> int:
        """Largest capacity reached anywhere."""
        return max(self._caps)

    def min_capacity_overall(self) -> int:
        """Smallest capacity reached anywhere."""
        return min(self._caps)

    def segments(self, horizon: Optional[Time] = None) -> Iterator[Segment]:
        """Yield ``(start, end, capacity)``; the last ``end`` is ``horizon``
        (if given) or ``math.inf``."""
        return iter_segments(self._times, self._caps, horizon)

    def min_capacity(self, start: Time, end: Time) -> int:
        """Minimum capacity over the window ``[start, end)``."""
        if end <= start:
            raise InvalidInstanceError("window must have positive length")
        i = self._index_at(start)
        lo = self._caps[i]
        j = i + 1
        while j < len(self._times) and self._times[j] < end:
            lo = min(lo, self._caps[j])
            j += 1
        return lo

    def area(self, start: Time, end: Time) -> Time:
        """Integral of the capacity over ``[start, end)``.

        Bisects to the segment containing ``start`` so the cost is
        proportional to the number of breakpoints inside the window, not
        to the profile size.
        """
        if end < start:
            raise InvalidInstanceError("area window must be ordered")
        if end == start:
            return 0
        times, caps = self._times, self._caps
        n = len(times)
        i = self._index_at(start) if start > 0 else 0
        total = 0
        for j in range(i, n):
            seg_start = times[j]
            if seg_start >= end:
                break
            seg_end = times[j + 1] if j + 1 < n else math.inf
            lo = max(seg_start, start)
            hi = min(seg_end, end)
            if hi > lo:
                total += caps[j] * (hi - lo)
        return total

    def max_capacity_between(self, start: Time,
                             end: Optional[Time] = None) -> int:
        """Largest capacity on ``[start, end)`` (``end=None`` → infinity);
        bisects to the window like :meth:`min_capacity`."""
        if end is not None and end <= start:
            raise InvalidInstanceError("window must have positive length")
        i = self._index_at(start)
        caps = self._caps
        if end is None:
            return max(caps[i:])
        hi = caps[i]
        times = self._times
        j = i + 1
        while j < len(times) and times[j] < end:
            if caps[j] > hi:
                hi = caps[j]
            j += 1
        return hi

    def next_breakpoint_after(self, t: Time) -> Optional[Time]:
        """Smallest breakpoint strictly greater than ``t``, or ``None``."""
        i = bisect_right(self._times, t)
        return self._times[i] if i < len(self._times) else None

    def earliest_fit(self, q: int, duration: Time,
                     after: Time = 0) -> Optional[Time]:
        """Earliest ``s >= after`` such that capacity is ``>= q`` throughout
        ``[s, s + duration)``.

        Returns ``None`` when no such time exists, which happens exactly when
        the final (infinite) segment has capacity below ``q``.

        This single primitive implements: conservative backfilling placement,
        the FCFS head-of-queue start rule, and the "fit now" test of LSRC
        (by checking whether the returned time equals ``after``).
        """
        if duration <= 0:
            raise InvalidInstanceError("duration must be positive")
        if q < 0:
            raise InvalidInstanceError("width must be non-negative")
        n = len(self._times)
        i = self._index_at(after) if after > 0 else 0
        candidate = None
        while i < n:
            seg_start = self._times[i]
            seg_end = self._times[i + 1] if i + 1 < n else math.inf
            if self._caps[i] >= q:
                if candidate is None:
                    candidate = seg_start if seg_start > after else after
                if seg_end == math.inf or seg_end - candidate >= duration:
                    return candidate
            else:
                candidate = None
            i += 1
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def reserve(self, start: Time, duration: Time, amount: int) -> None:
        """Subtract ``amount`` processors over ``[start, start + duration)``.

        Raises :class:`~repro.errors.CapacityError` when any covered segment
        would drop below zero; the profile is left unchanged in that case.
        """
        check_reserve_args(start, duration, amount, "reserved")
        if amount == 0:
            return
        end = start + duration
        if self.min_capacity(start, end) < amount:
            raise CapacityError(
                f"cannot reserve {amount} processors on [{start}, {end}): "
                f"minimum available is {self.min_capacity(start, end)}"
            )
        self._shift_window(start, end, -int(amount))

    def add(self, start: Time, duration: Time, amount: int) -> None:
        """Add ``amount`` processors over ``[start, start + duration)``.

        Inverse of :meth:`reserve`; used for what-if probing (EASY
        backfilling) and by tests.
        """
        check_reserve_args(start, duration, amount, "added")
        if amount == 0:
            return
        self._shift_window(start, start + duration, int(amount))

    def prune_before(self, t: Time) -> None:
        """Drop breakpoints before ``t`` and re-anchor the frontier
        segment at 0 (see :meth:`ProfileBackend.prune_before` for the
        soundness contract).  One prefix deletion: O(remaining)."""
        if t <= 0:
            return
        i = self._index_at(t)
        if i > 0:
            del self._times[:i]
            del self._caps[:i]
        self._times[0] = 0

    def reserve_many(self, blocks: Iterable[Block]) -> None:
        """Apply many ``(start, duration, amount)`` reservations in one sweep.

        All-or-nothing: the combined result is computed first and the
        profile is only replaced when no instant would drop below zero,
        otherwise :class:`~repro.errors.CapacityError` is raised and the
        profile is untouched.  One sweep over ``O(n + k)`` breakpoints
        replaces ``k`` individual O(n) rebuilds.
        """
        self._times, self._caps = overlay_reservation_blocks(
            self._times, self._caps, blocks
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def first_time_area_reaches(self, work: Time,
                                start: Time = 0) -> Optional[Time]:
        """Smallest ``T`` with ``area(start, T) >= work``.

        Supports the reservation-aware area lower bound
        (:func:`repro.core.bounds.area_bound`): no schedule can finish
        ``work`` units of processing before the machine has offered that
        much capacity.  Bisects to the segment containing ``start``.
        Returns ``None`` if the profile's tail capacity is 0 and the work
        cannot be accumulated (only possible on degenerate profiles).
        """
        if work <= 0:
            return start
        times, caps = self._times, self._caps
        n = len(times)
        i = self._index_at(start) if start > 0 else 0
        acc = 0
        for j in range(i, n):
            seg_start = times[j]
            seg_end = times[j + 1] if j + 1 < n else math.inf
            cap = caps[j]
            if seg_end <= start:
                continue
            lo = max(seg_start, start)
            if seg_end == math.inf:
                if cap == 0:
                    return None
                return lo + (work - acc) / cap
            gain = cap * (seg_end - lo)
            if acc + gain >= work:
                if cap == 0:
                    # gain is 0, cannot happen when acc + gain >= work > acc
                    return seg_end
                return lo + (work - acc) / cap
            acc += gain
        return None  # pragma: no cover - the last segment is infinite
