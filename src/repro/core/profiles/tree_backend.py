"""The tree backend: an augmented balanced tree over profile segments.

:class:`TreeProfile` implements the profile protocol with a treap (a
randomized balanced BST, following the augmented-red-black-tree design of
De Assunção's reservation-scheduling data structure) keyed by segment
start time.  Each node stores one segment ``[key, end)`` with its integer
capacity plus subtree aggregates:

* ``mn`` / ``mx`` — minimum / maximum capacity in the subtree, driving
  O(log n) ``min_capacity`` and the blocking-run skips of
  ``earliest_fit``;
* ``flen`` / ``farea`` — total finite length and capacity-area of the
  subtree, driving O(log n) windowed ``area`` and
  ``first_time_area_reaches``;
* ``lazy`` — a pending capacity delta for the whole subtree, so
  ``reserve``/``add`` are range updates (two boundary splits plus one
  O(1) subtree delta) instead of full-list rebuilds.

All times stay in their original numeric type (``int``, ``float``,
:class:`fractions.Fraction`) and all arithmetic matches the list backend
operation for operation, so both backends produce *identical* values on
exact inputs — the differential tests in ``tests/test_profile_backends.py``
assert schedule-level equality on randomized instances.

Complexities (n = number of breakpoints, expected over treap priorities):

=============================  =======================
``capacity_at``                O(log n)
``min_capacity`` / ``area``    O(log n)
``reserve`` / ``add``          O(log n)
``earliest_fit``               O((1 + runs skipped) log n)
``first_time_area_reaches``    O(log n)
``copy`` / ``as_lists``        O(n)
=============================  =======================
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ...errors import CapacityError, InvalidInstanceError
from .base import (
    Block,
    ProfileBackend,
    Segment,
    Time,
    check_reserve_args,
    merge_equal_segments,
    overlay_reservation_blocks,
    validate_profile_inputs,
)

# Deterministic priority stream: treap shape (and therefore performance)
# is reproducible run to run, while schedules never depend on it.
_prio: Callable[[], float] = random.Random(0x5EED1E55).random

#: One effective segment: ``(key, end, cap)``; ``end`` may be ``math.inf``.
_Triple = Tuple[Time, Time, int]


class _Node:
    __slots__ = (
        "key", "end", "cap", "prio", "left", "right",
        "mn", "mx", "flen", "farea", "lazy",
    )

    key: Time
    end: Time
    cap: int
    prio: float
    left: "Optional[_Node]"
    right: "Optional[_Node]"
    mn: int
    mx: int
    flen: Time
    farea: Time
    lazy: int

    def __init__(self, key: Time, end: Time, cap: int, prio: float) -> None:
        self.key = key
        self.end = end
        self.cap = cap
        self.prio = prio
        self.left = None
        self.right = None
        self.lazy = 0
        _pull(self)


def _pull(node: _Node) -> None:
    """Recompute aggregates from the node and its (up-to-date) children."""
    mn = mx = node.cap
    if node.end == math.inf:
        flen = farea = 0
    else:
        flen = node.end - node.key
        farea = node.cap * flen
    left, right = node.left, node.right
    if left is not None:
        if left.mn < mn:
            mn = left.mn
        if left.mx > mx:
            mx = left.mx
        flen = left.flen + flen
        farea = left.farea + farea
    if right is not None:
        if right.mn < mn:
            mn = right.mn
        if right.mx > mx:
            mx = right.mx
        flen = flen + right.flen
        farea = farea + right.farea
    node.mn = mn
    node.mx = mx
    node.flen = flen
    node.farea = farea


def _apply(node: _Node, delta: int) -> None:
    """Add ``delta`` to every capacity in the subtree (lazily)."""
    node.cap += delta
    node.mn += delta
    node.mx += delta
    node.farea += delta * node.flen
    node.lazy += delta


def _push(node: _Node) -> None:
    """Propagate the pending delta one level down."""
    d = node.lazy
    if d:
        if node.left is not None:
            _apply(node.left, d)
        if node.right is not None:
            _apply(node.right, d)
        node.lazy = 0


def _split(node: Optional[_Node],
           t: Time) -> Tuple[Optional[_Node], Optional[_Node]]:
    """Split by key: segments starting before ``t`` | starting at/after ``t``."""
    if node is None:
        return None, None
    _push(node)
    if node.key < t:
        left, right = _split(node.right, t)
        node.right = left
        _pull(node)
        return node, right
    left, right = _split(node.left, t)
    node.left = right
    _pull(node)
    return left, node


def _merge(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    """Join two treaps; every key in ``a`` precedes every key in ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        _push(a)
        a.right = _merge(a.right, b)
        _pull(a)
        return a
    _push(b)
    b.left = _merge(a, b.left)
    _pull(b)
    return b


def _cut_rightmost(
    node: _Node, t: Time
) -> Tuple[_Node, Optional[Tuple[Time, int]]]:
    """Shrink the rightmost segment to end at ``t`` when it extends past it.

    Returns the (re-pulled) subtree plus ``(old_end, cap)`` of the cut
    piece, or ``None`` when the rightmost segment already ends at ``t``.
    """
    _push(node)
    if node.right is not None:
        node.right, info = _cut_rightmost(node.right, t)
        _pull(node)
        return node, info
    info = None
    if node.end > t:
        info = (node.end, node.cap)
        node.end = t
    _pull(node)
    return node, info


def _remove_leftmost(node: _Node) -> Tuple[Optional[_Node], Time]:
    """Delete the leftmost node; returns the new subtree and its ``end``."""
    _push(node)
    if node.left is None:
        return node.right, node.end
    node.left, end = _remove_leftmost(node.left)
    _pull(node)
    return node, end


def _extend_rightmost(node: _Node, new_end: Time) -> _Node:
    """Stretch the rightmost segment's end to ``new_end``."""
    _push(node)
    if node.right is None:
        node.end = new_end
    else:
        node.right = _extend_rightmost(node.right, new_end)
    _pull(node)
    return node


def _build(triples: List[_Triple]) -> Optional[_Node]:
    """O(n) treap construction from sorted ``(key, end, cap)`` triples."""
    spine: List[_Node] = []  # rightmost spine, root first
    for key, end, cap in triples:
        node = _Node(key, end, cap, _prio())
        last = None
        while spine and spine[-1].prio > node.prio:
            last = spine.pop()
            _pull(last)
        node.left = last
        if spine:
            spine[-1].right = node
        spine.append(node)
    for node in reversed(spine):
        _pull(node)
    return spine[0] if spine else None


class TreeProfile(ProfileBackend):
    """Integer capacity as a piecewise-constant function of time on
    ``[0, inf)``, stored as an augmented treap of segments."""

    __slots__ = ("_root",)

    def __init__(self, times: List[Time], caps: List[int],
                 _validate: bool = True) -> None:
        if _validate:
            validate_profile_inputs(times, caps)
        times, caps = merge_equal_segments(list(times), [int(c) for c in caps])
        n = len(times)
        self._root = _build([
            (times[i], times[i + 1] if i + 1 < n else math.inf, caps[i])
            for i in range(n)
        ])

    def copy(self) -> "TreeProfile":
        """Independent mutable copy (O(n) rebuild, resetting balance)."""
        clone = type(self).__new__(type(self))
        clone._root = _build(self._in_order())
        return clone

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def _in_order(self) -> List[_Triple]:
        """Effective ``(key, end, cap)`` triples, left to right."""
        out: List[_Triple] = []
        stack: List[Tuple[_Node, int]] = []
        node, add = self._root, 0
        while stack or node is not None:
            while node is not None:
                stack.append((node, add))
                add = add + node.lazy
                node = node.left
            node, nadd = stack.pop()
            out.append((node.key, node.end, node.cap + nadd))
            add = nadd + node.lazy
            node = node.right
        return out

    def as_lists(self) -> Tuple[List[Time], List[int]]:
        """Canonical ``(times, caps)`` lists (fresh copies)."""
        triples = self._in_order()
        return [t[0] for t in triples], [t[2] for t in triples]

    def segments(self, horizon: Optional[Time] = None) -> Iterator[Segment]:
        """Yield ``(start, end, capacity)``; the last ``end`` is ``horizon``
        (if given) or ``math.inf``."""
        for key, end, cap in self._in_order():
            if horizon is not None:
                if key >= horizon:
                    return
                end = min(end, horizon)
            yield (key, end, cap)

    @property
    def breakpoints(self) -> Tuple[Time, ...]:
        """The times at which capacity changes (first is always 0)."""
        return tuple(t[0] for t in self._in_order())

    # ------------------------------------------------------------------
    # point / aggregate queries
    # ------------------------------------------------------------------
    def capacity_at(self, t: Time) -> int:
        """Number of free processors at time ``t``."""
        if t < 0:
            raise InvalidInstanceError(f"profile queried at negative time {t!r}")
        node, add = self._root, 0
        while node is not None:
            if t < node.key:
                add += node.lazy
                node = node.left
            elif t >= node.end:
                add += node.lazy
                node = node.right
            else:
                return node.cap + add
        raise InvalidInstanceError(  # pragma: no cover - [0, inf) is covered
            f"profile has no segment containing {t!r}"
        )

    def final_capacity(self) -> int:
        """Capacity on the unbounded last segment (after every reservation)."""
        node, add = self._root, 0
        while node.right is not None:
            add += node.lazy
            node = node.right
        return node.cap + add

    def max_capacity(self) -> int:
        """Largest capacity reached anywhere."""
        return self._root.mx

    def min_capacity_overall(self) -> int:
        """Smallest capacity reached anywhere."""
        return self._root.mn

    def next_breakpoint_after(self, t: Time) -> Optional[Time]:
        """Smallest breakpoint strictly greater than ``t``, or ``None``."""
        node, best = self._root, None
        while node is not None:
            if node.key > t:
                best = node.key
                node = node.left
            else:
                node = node.right
        return best

    def min_capacity(self, start: Time, end: Time) -> int:
        """Minimum capacity over the window ``[start, end)``."""
        if end <= start:
            raise InvalidInstanceError("window must have positive length")
        if start < 0:
            raise InvalidInstanceError(
                f"profile queried at negative time {start!r}"
            )
        return _range_min(self._root, 0, 0, math.inf, start, end)

    def max_capacity_between(self, start: Time,
                             end: Optional[Time] = None) -> int:
        """Largest capacity on ``[start, end)`` (``end=None`` → infinity),
        answered from the ``mx`` subtree aggregates in O(log n).

        This is the query behind the incremental LSRC ready-set skip: one
        descent decides whether *any* pending job could start before the
        next decision point.
        """
        if start < 0:
            raise InvalidInstanceError(
                f"profile queried at negative time {start!r}"
            )
        if end is None:
            end = math.inf
        elif end <= start:
            raise InvalidInstanceError("window must have positive length")
        return _range_max(self._root, 0, 0, math.inf, start, end)

    def area(self, start: Time, end: Time) -> Time:
        """Integral of the capacity over ``[start, end)`` (O(log n))."""
        if end < start:
            raise InvalidInstanceError("area window must be ordered")
        if end == start:
            return 0
        return _range_area(self._root, 0, 0, math.inf, start, end)

    # ------------------------------------------------------------------
    # earliest fit
    # ------------------------------------------------------------------
    def _next_key(self, t: Time, q: int, want_ge: bool) -> Optional[Time]:
        """Smallest segment start ``> t`` whose capacity is ``>= q``
        (``want_ge``) or ``< q`` (otherwise); ``None`` when none exists."""
        return _next_key(self._root, 0, t, q, want_ge)

    def earliest_fit(self, q: int, duration: Time,
                     after: Time = 0) -> Optional[Time]:
        """Earliest ``s >= after`` such that capacity is ``>= q`` throughout
        ``[s, s + duration)``; ``None`` exactly when the final (infinite)
        segment has capacity below ``q``.

        Skips each maximal run of too-narrow segments with one aggregate
        descent instead of visiting its segments one by one.
        """
        if duration <= 0:
            raise InvalidInstanceError("duration must be positive")
        if q < 0:
            raise InvalidInstanceError("width must be non-negative")
        cur = after if after > 0 else 0
        while True:
            if self.capacity_at(cur) >= q:
                blocker = self._next_key(cur, q, want_ge=False)
                if blocker is None or blocker - cur >= duration:
                    return cur
            else:
                blocker = cur
            cur = self._next_key(blocker, q, want_ge=True)
            if cur is None:
                return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _split_cut(
        self, node: Optional[_Node], t: Time
    ) -> Tuple[Optional[_Node], Optional[_Node]]:
        """Split so the left part covers exactly ``[.., t)``: the segment
        straddling ``t`` (if any) is cut in two."""
        left, right = _split(node, t)
        if left is not None:
            left, info = _cut_rightmost(left, t)
            if info is not None:
                old_end, cap = info
                right = _merge(_Node(t, old_end, cap, _prio()), right)
        return left, right

    def _coalesce(self, t: Time) -> None:
        """Merge the segments meeting at ``t`` when their capacities agree,
        restoring canonical form after a boundary update."""
        if t == 0 or not (t < math.inf):
            return
        left, right = _split(self._root, t)
        if left is None or right is None:
            self._root = _merge(left, right)
            return
        node, add = right, 0
        while node.left is not None:
            add += node.lazy
            node = node.left
        right_key, right_cap = node.key, node.cap + add
        node, add = left, 0
        while node.right is not None:
            add += node.lazy
            node = node.right
        left_cap = node.cap + add
        if right_key == t and left_cap == right_cap:
            right, removed_end = _remove_leftmost(right)
            left = _extend_rightmost(left, removed_end)
        self._root = _merge(left, right)

    def _range_update(self, start: Time, end: Time, delta: int,
                      require: int) -> None:
        """Shared body of reserve/add: cut out ``[start, end)``, check its
        minimum against ``require``, shift it by ``delta``, stitch back."""
        left, rest = self._split_cut(self._root, start)
        mid, right = self._split_cut(rest, end)
        if mid is not None and mid.mn < require:
            shortfall = mid.mn
            self._root = _merge(_merge(left, mid), right)
            self._coalesce(start)
            self._coalesce(end)
            raise CapacityError(
                f"cannot reserve {require} processors on [{start}, {end}): "
                f"minimum available is {shortfall}"
            )
        if mid is not None:
            _apply(mid, delta)
        self._root = _merge(_merge(left, mid), right)
        self._coalesce(start)
        self._coalesce(end)

    def reserve(self, start: Time, duration: Time, amount: int) -> None:
        """Subtract ``amount`` processors over ``[start, start + duration)``.

        Raises :class:`~repro.errors.CapacityError` when any covered segment
        would drop below zero; the profile is left unchanged in that case.
        """
        check_reserve_args(start, duration, amount, "reserved")
        if amount == 0:
            return
        self._range_update(start, start + duration, -int(amount), int(amount))

    def add(self, start: Time, duration: Time, amount: int) -> None:
        """Add ``amount`` processors over ``[start, start + duration)``
        (inverse of :meth:`reserve`)."""
        check_reserve_args(start, duration, amount, "added")
        if amount == 0:
            return
        self._range_update(start, start + duration, int(amount), 0)

    def prune_before(self, t: Time) -> None:
        """Drop segments before ``t`` and re-anchor the frontier segment
        at 0 (see :meth:`ProfileBackend.prune_before` for the soundness
        contract).

        Rebuilds the treap from the surviving suffix in O(active): the
        same cost/structure trade :meth:`reserve_many` makes, and the
        rebuild also resets balance for the retained nodes.  Callers
        prune at a coarse cadence (per replay window), so the amortised
        cost per event is O(1).
        """
        if t < 0:
            raise InvalidInstanceError(
                f"profile pruned at negative time {t!r}"
            )
        if t <= 0:
            return
        triples = self._in_order()
        # index of the segment containing t
        keep = 0
        for i, (key, end, _) in enumerate(triples):
            if key <= t < end:
                keep = i
                break
        kept = triples[keep:]
        first_key, first_end, first_cap = kept[0]
        kept[0] = (0, first_end, first_cap)
        self._root = _build(kept)

    def reserve_many(self, blocks: Iterable[Block]) -> None:
        """Apply many ``(start, duration, amount)`` reservations atomically
        in a single sweep.

        ``k`` individual :meth:`reserve` calls would pay ``2k`` boundary
        splits plus merges (and need rollback on failure); instead the
        blocks are overlaid on the in-order segment list in one pass
        (:func:`~repro.core.profiles.base.overlay_reservation_blocks`) and
        the treap is rebuilt in O(n) — all-or-nothing by construction,
        matching the list backend's semantics exactly.
        """
        triples = self._in_order()
        times, caps = overlay_reservation_blocks(
            [t[0] for t in triples], [t[2] for t in triples], blocks
        )
        n = len(times)
        self._root = _build([
            (times[i], times[i + 1] if i + 1 < n else math.inf, caps[i])
            for i in range(n)
        ])

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def first_time_area_reaches(self, work: Time,
                                start: Time = 0) -> Optional[Time]:
        """Smallest ``T`` with ``area(start, T) >= work`` (O(log n) descent
        over the area aggregates)."""
        if work <= 0:
            return start
        need = work + (self.area(0, start) if start > 0 else 0)
        node, add, acc = self._root, 0, 0
        while node is not None:
            child_add = add + node.lazy
            left = node.left
            if left is not None:
                left_area = left.farea + child_add * left.flen
                if acc + left_area >= need:
                    node, add = left, child_add
                    continue
                acc = acc + left_area
            cap = node.cap + add
            if node.end == math.inf:
                if cap == 0:
                    return None
                return self._crossing_time(node.key, start, work, cap)
            gain = cap * (node.end - node.key)
            if acc + gain >= need:
                if cap == 0:
                    # gain is 0, cannot happen when acc + gain >= need > acc
                    return node.end
                return self._crossing_time(node.key, start, work, cap)
            acc = acc + gain
            node, add = node.right, child_add
        return None  # pragma: no cover - the last segment is infinite

    def _crossing_time(self, key: Time, start: Time, work: Time,
                       cap: int) -> Time:
        """Time within the crossing segment at which the area hits ``work``.

        Re-derives the accumulator relative to ``start`` with the same
        left-to-right products the list backend uses, so the returned
        value matches :class:`ListProfile` in numeric *type* as well as
        value (e.g. an all-int prefix divides to the same float)."""
        lo = max(key, start)
        acc = self.area(start, key) if key > start else 0
        return lo + (work - acc) / cap


# ---------------------------------------------------------------------------
# read-only descents (no structural mutation, lazies carried as an offset)
# ---------------------------------------------------------------------------

def _range_min(node: Optional[_Node], add: int, span_lo: Time,
               span_hi: Time, lo: Time, hi: Time) -> Optional[int]:
    """Minimum effective capacity over segments intersecting ``[lo, hi)``;
    the subtree under ``node`` covers exactly ``[span_lo, span_hi)``."""
    if node is None or span_hi <= lo or span_lo >= hi:
        return None
    if lo <= span_lo and span_hi <= hi:
        return node.mn + add
    child_add = add + node.lazy
    best = _range_min(node.left, child_add, span_lo, node.key, lo, hi)
    if node.key < hi and node.end > lo:
        cap = node.cap + add
        if best is None or cap < best:
            best = cap
    right = _range_min(node.right, child_add, node.end, span_hi, lo, hi)
    if right is not None and (best is None or right < best):
        best = right
    return best


def _range_max(node: Optional[_Node], add: int, span_lo: Time,
               span_hi: Time, lo: Time, hi: Time) -> Optional[int]:
    """Maximum effective capacity over segments intersecting ``[lo, hi)``;
    mirror image of :func:`_range_min` over the ``mx`` aggregate."""
    if node is None or span_hi <= lo or span_lo >= hi:
        return None
    if lo <= span_lo and span_hi <= hi:
        return node.mx + add
    child_add = add + node.lazy
    best = _range_max(node.left, child_add, span_lo, node.key, lo, hi)
    if node.key < hi and node.end > lo:
        cap = node.cap + add
        if best is None or cap > best:
            best = cap
    right = _range_max(node.right, child_add, node.end, span_hi, lo, hi)
    if right is not None and (best is None or right > best):
        best = right
    return best


def _range_area(node: Optional[_Node], add: int, span_lo: Time,
                span_hi: Time, lo: Time, hi: Time) -> Time:
    """Capacity-area over ``[lo, hi)`` (finite window) under ``node``."""
    if node is None or span_hi <= lo or span_lo >= hi:
        return 0
    if lo <= span_lo and span_hi <= hi:
        return node.farea + add * node.flen
    child_add = add + node.lazy
    total = _range_area(node.left, child_add, span_lo, node.key, lo, hi)
    # max/min (not conditionals) so ties pick the same numeric
    # representative (e.g. Fraction(20, 1) vs int 20) as the list backend
    seg_lo = max(node.key, lo)
    seg_hi = min(node.end, hi)
    if seg_hi > seg_lo:
        total = total + (node.cap + add) * (seg_hi - seg_lo)
    return total + _range_area(node.right, child_add, node.end, span_hi, lo, hi)


def _next_key(node: Optional[_Node], add: int, t: Time, q: int,
              want_ge: bool) -> Optional[Time]:
    """Smallest key ``> t`` with ``cap >= q`` (``want_ge``) or ``cap < q``."""
    if node is None:
        return None
    if want_ge:
        if node.mx + add < q:
            return None
    elif node.mn + add >= q:
        return None
    child_add = add + node.lazy
    if node.key > t:
        found = _next_key(node.left, child_add, t, q, want_ge)
        if found is not None:
            return found
        cap = node.cap + add
        if (cap >= q) if want_ge else (cap < q):
            return node.key
    return _next_key(node.right, child_add, t, q, want_ge)
