"""Pluggable availability-profile backends.

The availability profile ``m(t) = m - U(t)`` (Section 3.1) is the data
structure every scheduler layer queries and mutates.  This package keeps
the *protocol* (:class:`~repro.core.profiles.base.ProfileBackend`)
separate from its implementations so the library can trade constants for
asymptotics per use case:

``"list"`` — :class:`ListProfile`
    Flat sorted breakpoint arrays, O(n) mutation, tiny constants, fully
    transparent.  The default, and the reference the theory modules'
    Fraction-exact constructions run on.

``"tree"`` — :class:`TreeProfile`
    Augmented treap with subtree min/max/area aggregates and lazy range
    updates: O(log n) ``capacity_at`` / ``min_capacity`` / ``area`` /
    ``reserve`` / ``add`` and run-skipping ``earliest_fit``.  The backend
    for large traces (see ``benchmarks/bench_profile_backends.py``).

Both backends implement identical semantics — exact integer capacities,
times of any ordered numeric type, canonical merged segments — and
compare equal whenever they represent the same function, which the
differential tests exploit to prove schedulers produce byte-identical
schedules under either backend.

Selecting a backend
-------------------
Call sites accept a ``profile_backend`` argument (a registry name or a
backend class); ``None`` defers to the module default:

>>> from repro.core.profiles import set_default_backend
>>> inst.availability_profile(profile_backend="tree")   # one call site
>>> set_default_backend("tree")                          # whole process

Third-party backends can join via :func:`register_backend` as long as
they subclass :class:`ProfileBackend`.

For backward compatibility :data:`ResourceProfile` remains an alias of
:class:`ListProfile`.
"""

from __future__ import annotations

from typing import Dict, Type, Union

from ...errors import InvalidInstanceError
from .base import ProfileBackend, Segment
from .list_backend import ListProfile
from .tree_backend import TreeProfile

#: Backward-compatible name for the historical flat-list implementation.
ResourceProfile = ListProfile

BackendSpec = Union[None, str, Type[ProfileBackend]]

_BACKENDS: Dict[str, Type[ProfileBackend]] = {
    "list": ListProfile,
    "tree": TreeProfile,
}

_default_backend: str = "list"


def register_backend(name: str, backend: Type[ProfileBackend]) -> None:
    """Add a backend class to the registry (overwrites silently, like the
    scheduler registry, so notebook reloads do not error)."""
    if not (isinstance(backend, type) and issubclass(backend, ProfileBackend)):
        raise InvalidInstanceError(
            f"profile backend must subclass ProfileBackend, got {backend!r}"
        )
    _BACKENDS[name] = backend


def available_backends() -> list:
    """Sorted registry names."""
    return sorted(_BACKENDS)


def resolve_backend(spec: BackendSpec = None) -> Type[ProfileBackend]:
    """Map a ``profile_backend`` argument to a backend class.

    ``None`` resolves to the module default; a string is looked up in the
    registry; a :class:`ProfileBackend` subclass passes through.
    """
    if spec is None:
        return _BACKENDS[_default_backend]
    if isinstance(spec, str):
        try:
            return _BACKENDS[spec]
        except KeyError:
            known = ", ".join(available_backends())
            raise InvalidInstanceError(
                f"unknown profile backend {spec!r}; known backends: {known}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, ProfileBackend):
        return spec
    raise InvalidInstanceError(
        f"profile_backend must be None, a registry name or a ProfileBackend "
        f"subclass, got {spec!r}"
    )


def set_default_backend(spec: BackendSpec) -> None:
    """Set the process-wide default backend (name or registered class)."""
    global _default_backend
    cls = resolve_backend(spec if spec is not None else _default_backend)
    for name, registered in _BACKENDS.items():
        if registered is cls:
            _default_backend = name
            return
    raise InvalidInstanceError(
        f"backend {cls.__name__} is not registered; call register_backend first"
    )


def get_default_backend() -> Type[ProfileBackend]:
    """The backend class used when ``profile_backend`` is ``None``."""
    return _BACKENDS[_default_backend]


def get_default_backend_name() -> str:
    """Registry name of the default backend."""
    return _default_backend


def make_profile(times, caps, profile_backend: BackendSpec = None) -> ProfileBackend:
    """Construct a profile on the selected (or default) backend."""
    return resolve_backend(profile_backend)(times, caps)


def convert_profile(profile: ProfileBackend, profile_backend: BackendSpec = None) -> ProfileBackend:
    """Re-house a profile on another backend (fresh copy either way)."""
    cls = resolve_backend(profile_backend)
    if type(profile) is cls:
        return profile.copy()
    times, caps = profile.as_lists()
    return cls(times, caps, _validate=False)


__all__ = [
    "ProfileBackend",
    "Segment",
    "ResourceProfile",
    "ListProfile",
    "TreeProfile",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
    "get_default_backend_name",
    "make_profile",
    "convert_profile",
]
