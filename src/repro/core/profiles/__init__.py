"""Pluggable availability-profile backends.

The availability profile ``m(t) = m - U(t)`` (Section 3.1) is the data
structure every scheduler layer queries and mutates.  This package keeps
the *protocol* (:class:`~repro.core.profiles.base.ProfileBackend`)
separate from its implementations so the library can trade constants for
asymptotics per use case:

``"list"`` — :class:`ListProfile`
    Flat sorted breakpoint arrays, O(n) mutation, tiny constants, fully
    transparent.  The *reference* backend: the theory modules'
    Fraction-exact worst-case constructions cite it, and the
    differential tests measure every other implementation against it.

``"tree"`` — :class:`TreeProfile`
    Augmented treap with subtree min/max/area aggregates and lazy range
    updates: O(log n) ``capacity_at`` / ``min_capacity`` /
    ``max_capacity_between`` / ``area`` / ``reserve`` / ``add`` and
    run-skipping ``earliest_fit``.  The process-wide **default** since
    the backends are proven schedule-identical; its structural edge is
    wide windowed *queries* answered from subtree aggregates (~100× on
    20k-breakpoint profiles), while the list backend's O(window) local
    mutation wins sweep-local ``reserve``/``add`` on constants (see
    ``benchmarks/bench_profile_backends.py``).

``"array"`` — :class:`ArrayProfile`
    Contiguous int64 ``array('q')`` time/capacity columns with O(1)
    offset-bump ``prune_before`` and optional numpy-vectorised wide
    windowed min/max (a feature probe with a pure-stdlib fallback): the
    rolling-horizon replay kernel.  **Integer-grid only** — breakpoints
    must be machine ints (what ``timebase="auto"`` normalisation, SWF
    archives and the synthetic pack produce); queries accept any
    numeric, construction/mutation with ``Fraction``/``float`` times
    raise loudly.

All backends implement identical semantics — exact integer capacities,
canonical merged segments, times of any ordered numeric type (integer
grid only for ``"array"``) — and compare equal whenever they represent
the same function, which the differential tests exploit to prove
schedulers produce byte-identical schedules under any backend.

When exactness costs you
------------------------
Profiles are exact at *every* layer: capacities are ints, times keep
whatever exact type the instance uses (``int``/``Fraction``), and every
query is answered without rounding.  That is what makes the paper's
worst-case certificates checkable, but it has a price ladder worth
knowing:

1. ``Fraction`` times pay a gcd per arithmetic op — an order of
   magnitude over machine ints.  Schedulers therefore normalise exact
   instances onto an integer grid first (``timebase="auto"``, see
   :mod:`repro.core.timebase`) and only denormalise the final schedule;
   the profile then never sees a Fraction in the hot loop.
2. The ``"list"`` backend pays O(window + log n) per mutation and
   O(window) per windowed query; ``"tree"`` pays O(log n) for both,
   with a larger constant.  Sweep-local work (schedulers reserving near
   a moving front) favors the flat list; wide windows deep inside big
   profiles (analysis, bounds, ``first_time_area_reaches``) favor the
   tree by ~100×.

Pick ``"list"`` when auditing a construction step by step or writing a
tight scheduling loop against the exact path, ``"tree"`` (the default)
for general/analysis workloads at scale, ``"array"`` for rolling-horizon
sweeps on the integer grid (trace replay prunes behind its clock, where
O(1) ``prune_before`` keeps the live window tiny), and leave schedulers
on ``timebase="auto"`` unless you are debugging the exact path itself.

Selecting a backend
-------------------
Call sites accept a ``profile_backend`` argument (a registry name or a
backend class); ``None`` defers to the module default:

>>> from repro.core.profiles import set_default_backend
>>> inst.availability_profile(profile_backend="list")   # one call site
>>> set_default_backend("list")                          # whole process

Third-party backends can join via :func:`register_backend` as long as
they subclass :class:`ProfileBackend`.

For backward compatibility :data:`ResourceProfile` remains an alias of
:class:`ListProfile`.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from ...errors import InvalidInstanceError
from .array_backend import (
    NUMPY_DISABLE_ENV,
    ArrayProfile,
    numpy_module,
    vector_info,
)
from .base import ProfileBackend, Segment, Time
from .list_backend import ListProfile
from .tree_backend import TreeProfile

#: Backward-compatible name for the historical flat-list implementation.
ResourceProfile = ListProfile

BackendSpec = Union[None, str, Type[ProfileBackend]]

_BACKENDS: Dict[str, Type[ProfileBackend]] = {
    "list": ListProfile,
    "tree": TreeProfile,
    "array": ArrayProfile,
}

#: Process-wide default.  ``"tree"`` since the differential tests prove
#: both backends schedule-identical; ``"list"`` remains the documented
#: reference backend for the theory modules (pass it explicitly there).
_default_backend: str = "tree"


def register_backend(name: str, backend: Type[ProfileBackend]) -> None:
    """Add a backend class to the registry (overwrites silently, like the
    scheduler registry, so notebook reloads do not error)."""
    if not (isinstance(backend, type) and issubclass(backend, ProfileBackend)):
        raise InvalidInstanceError(
            f"profile backend must subclass ProfileBackend, got {backend!r}"
        )
    _BACKENDS[name] = backend


def available_backends() -> List[str]:
    """Sorted registry names."""
    return sorted(_BACKENDS)


def backend_details() -> List[str]:
    """Sorted registry names, annotated with runtime capabilities.

    The ``array`` row reports whether its vectorised (numpy) path is
    active — the feature ``repro list --kind backends`` surfaces so a
    deployment can tell at a glance which kernel its replays run on.
    """
    info = vector_info()
    rows = []
    for name in available_backends():
        if _BACKENDS[name] is ArrayProfile:
            if info["active"]:
                detail = f"vectorized: numpy {info['numpy_version']}"
            elif info["disabled_by_env"]:
                detail = (
                    f"vectorized: off (disabled via {NUMPY_DISABLE_ENV}; "
                    f"scalar fallback)"
                )
            else:
                detail = "vectorized: off (numpy not importable; scalar fallback)"
            rows.append(f"{name}  [{detail}]")
        else:
            rows.append(name)
    return rows


def resolve_backend(spec: BackendSpec = None) -> Type[ProfileBackend]:
    """Map a ``profile_backend`` argument to a backend class.

    ``None`` resolves to the module default; a string is looked up in the
    registry; a :class:`ProfileBackend` subclass passes through.
    """
    if spec is None:
        return _BACKENDS[_default_backend]
    if isinstance(spec, str):
        try:
            return _BACKENDS[spec]
        except KeyError:
            known = ", ".join(available_backends())
            raise InvalidInstanceError(
                f"unknown profile backend {spec!r}; known backends: {known}"
            ) from None
    if isinstance(spec, type) and issubclass(spec, ProfileBackend):
        return spec
    raise InvalidInstanceError(
        f"profile_backend must be None, a registry name or a ProfileBackend "
        f"subclass, got {spec!r}"
    )


def set_default_backend(spec: BackendSpec) -> None:
    """Set the process-wide default backend (name or registered class)."""
    global _default_backend
    cls = resolve_backend(spec if spec is not None else _default_backend)
    for name, registered in _BACKENDS.items():
        if registered is cls:
            _default_backend = name
            return
    raise InvalidInstanceError(
        f"backend {cls.__name__} is not registered; call register_backend first"
    )


def get_default_backend() -> Type[ProfileBackend]:
    """The backend class used when ``profile_backend`` is ``None``."""
    return _BACKENDS[_default_backend]


def get_default_backend_name() -> str:
    """Registry name of the default backend."""
    return _default_backend


def make_profile(times: List[Time], caps: List[int],
                 profile_backend: BackendSpec = None) -> ProfileBackend:
    """Construct a profile on the selected (or default) backend."""
    return resolve_backend(profile_backend)(times, caps)


def convert_profile(profile: ProfileBackend,
                    profile_backend: BackendSpec = None) -> ProfileBackend:
    """Re-house a profile on another backend (fresh copy either way)."""
    cls = resolve_backend(profile_backend)
    if type(profile) is cls:
        return profile.copy()
    times, caps = profile.as_lists()
    return cls(times, caps, _validate=False)


__all__ = [
    "ProfileBackend",
    "Segment",
    "Time",
    "ResourceProfile",
    "ListProfile",
    "TreeProfile",
    "ArrayProfile",
    "register_backend",
    "available_backends",
    "backend_details",
    "numpy_module",
    "vector_info",
    "NUMPY_DISABLE_ENV",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
    "get_default_backend_name",
    "make_profile",
    "convert_profile",
]
