"""Shared name → object registry.

Promoted from the private dict in :mod:`repro.algorithms.base` so every
name-addressable surface of the library — schedulers, workload
generators, online simulation policies, metric extractors — shares one
behaviour: deterministic sorted listings, unknown-name errors that list
what *is* known, decorator-style registration, and collision handling
that is silent for explicit overwrites (reloading modules in notebooks
must not error) but *warns* on accidental ones.

>>> from repro.core.registry import Registry
>>> PARSERS = Registry("parser")
>>> @PARSERS.register("csv")
... def parse_csv(text): ...
>>> PARSERS.get("csv") is parse_csv
True
>>> sorted(PARSERS)
['csv']
"""

from __future__ import annotations

import warnings
from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from ..errors import SchedulingError

T = TypeVar("T")


class RegistryCollisionWarning(UserWarning):
    """A registered name was silently replaced without ``overwrite=True``."""


class Registry(Generic[T]):
    """A name → object mapping with explicit collision semantics.

    Parameters
    ----------
    kind:
        Singular noun for error messages (``"scheduler"``, ``"policy"``).
    plural:
        Plural form; defaults to ``kind + "s"``.
    error:
        Exception class raised for unknown names (and for collisions when
        ``overwrite=False``).

    The mapping protocol is implemented (``in``, ``len``, iteration in
    sorted name order, ``registry[name]``) so a registry can stand in for
    the plain dicts it replaced.
    """

    def __init__(
        self,
        kind: str,
        plural: Optional[str] = None,
        error: type = SchedulingError,
    ):
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self.error = error
        self._items: Dict[str, T] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, obj: Optional[T] = None, *,
                 overwrite: Optional[bool] = None):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``overwrite`` keeps the historical overwrite-by-default semantics
        (an explicit ``True`` replaces silently, so notebook reloads do
        not error) but when it is *left implicit* a collision emits a
        :class:`RegistryCollisionWarning` — accidental name clashes were
        previously invisible.  ``overwrite=False`` turns a collision into
        an error of the registry's ``error`` class.
        """
        if obj is None:
            def decorate(fn: T) -> T:
                self.register(name, fn, overwrite=overwrite)
                return fn
            return decorate
        if name in self._items and self._items[name] is not obj:
            if overwrite is False:
                raise self.error(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"overwrite=True to replace it"
                )
            if overwrite is None:
                warnings.warn(
                    f"{self.kind} {name!r} was already registered and has "
                    f"been replaced; pass overwrite=True to silence this",
                    RegistryCollisionWarning,
                    stacklevel=2,
                )
        self._items[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove ``name`` if present (no error when absent)."""
        self._items.pop(name, None)

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> T:
        """The object registered under ``name``.

        Raises the registry's ``error`` class for unknown names, listing
        the available ones.
        """
        try:
            return self._items[name]
        except KeyError:
            known = ", ".join(self.names())
            raise self.error(
                f"unknown {self.kind} {name!r}; known {self.plural}: {known}"
            ) from None

    def names(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._items)

    def items(self) -> List[Tuple[str, T]]:
        """``(name, object)`` pairs in sorted name order."""
        return sorted(self._items.items())

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"<Registry of {len(self._items)} {self.plural}>"
