"""Core model: jobs, reservations, instances, profiles, schedules, bounds.

This package implements the paper's problem definitions:

* RIGIDSCHEDULING (``P | p_j, size_j | Cmax``, Section 2.1) via
  :class:`~repro.core.instance.RigidInstance`;
* RESASCHEDULING (Section 3.1) via
  :class:`~repro.core.instance.ReservationInstance`;
* the α-restricted variant (Section 4.2) via
  :meth:`~repro.core.instance.ReservationInstance.validate_alpha`;

plus the shared machinery every scheduler uses: the availability profile
``m(t) = m - U(t)``, exact schedule verification, certified lower bounds
and schedule metrics.
"""

from .bounds import (
    area_bound,
    lower_bound,
    pmax_bound,
    ratio_to_lower_bound,
    release_bound,
    squashed_area_bound,
    work_bound,
)
from .instance import (
    ReservationInstance,
    RigidInstance,
    as_reservation_instance,
)
from .job import Job, Reservation, Time, make_jobs, make_reservations
from .metrics import (
    METRICS,
    ScheduleMetrics,
    available_area,
    available_metrics,
    bounded_slowdown,
    bounded_slowdowns,
    evaluate_metrics,
    get_metric,
    register_metric,
    slowdowns,
    summarize,
    utilization,
    waiting_times,
)
from .registry import Registry, RegistryCollisionWarning
from .profiles import (
    ListProfile,
    ProfileBackend,
    ResourceProfile,
    TreeProfile,
    available_backends,
    convert_profile,
    get_default_backend,
    get_default_backend_name,
    make_profile,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from .schedule import Schedule, ScheduledJob, left_shifted
from .timebase import (
    TIMEBASE_POLICIES,
    IntSweepProfile,
    Timebase,
    check_timebase_policy,
    exactify_instance,
    on_int_timebase,
    timebase_for,
)
from .serialize import (
    dumps_instance,
    dumps_schedule,
    load_instance,
    load_schedule,
    loads_instance,
    loads_schedule,
    save_instance,
    save_schedule,
)

__all__ = [
    "Job",
    "Reservation",
    "Time",
    "make_jobs",
    "make_reservations",
    "RigidInstance",
    "ReservationInstance",
    "as_reservation_instance",
    "ResourceProfile",
    "ListProfile",
    "TreeProfile",
    "ProfileBackend",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
    "get_default_backend_name",
    "make_profile",
    "convert_profile",
    "Schedule",
    "ScheduledJob",
    "left_shifted",
    "Timebase",
    "IntSweepProfile",
    "TIMEBASE_POLICIES",
    "check_timebase_policy",
    "timebase_for",
    "exactify_instance",
    "on_int_timebase",
    "work_bound",
    "area_bound",
    "pmax_bound",
    "squashed_area_bound",
    "release_bound",
    "lower_bound",
    "ratio_to_lower_bound",
    "ScheduleMetrics",
    "summarize",
    "utilization",
    "waiting_times",
    "slowdowns",
    "bounded_slowdown",
    "bounded_slowdowns",
    "available_area",
    "METRICS",
    "register_metric",
    "get_metric",
    "available_metrics",
    "evaluate_metrics",
    "Registry",
    "RegistryCollisionWarning",
    "dumps_instance",
    "loads_instance",
    "save_instance",
    "load_instance",
    "dumps_schedule",
    "loads_schedule",
    "save_schedule",
    "load_schedule",
]
