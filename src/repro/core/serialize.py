"""JSON serialisation for instances and schedules.

A library a downstream user adopts needs durable artifacts: the exact
instance an experiment ran on and the exact schedule an algorithm
produced.  This module defines a stable JSON encoding with:

* loss-less numbers — integers stay integers, floats stay floats, and
  :class:`fractions.Fraction` values (used by every theory construction)
  are encoded as ``{"num": ..., "den": ...}`` so worst-case instances
  round-trip exactly;
* schema versioning (``"format": "repro-instance/1"``) so future
  revisions can migrate;
* validation on load — a loaded instance passes through the ordinary
  constructors, so malformed files fail loudly.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Dict, Union

from ..errors import TraceFormatError
from .instance import ReservationInstance, RigidInstance
from .job import Job, Reservation
from .schedule import Schedule

INSTANCE_FORMAT = "repro-instance/1"
SCHEDULE_FORMAT = "repro-schedule/1"
#: Experiment-spec documents share these serialization conventions; the
#: loader/dumper live in :mod:`repro.run.spec` (which imports this
#: constant) and are re-exported below so this module stays the one-stop
#: shop for every on-disk format.
SPEC_FORMAT = "repro-spec/1"


# ---------------------------------------------------------------------------
# number encoding
# ---------------------------------------------------------------------------

def _encode_number(value):
    if isinstance(value, bool):
        raise TraceFormatError(f"booleans are not times: {value!r}")
    if isinstance(value, Fraction):
        return {"num": value.numerator, "den": value.denominator}
    if isinstance(value, (int, float)):
        return value
    raise TraceFormatError(f"cannot encode number {value!r}")


def _decode_number(value):
    if isinstance(value, dict):
        try:
            return Fraction(value["num"], value["den"])
        except (KeyError, TypeError, ZeroDivisionError) as exc:
            raise TraceFormatError(f"malformed fraction {value!r}") from exc
    if isinstance(value, (int, float)):
        return value
    raise TraceFormatError(f"cannot decode number {value!r}")


def _encode_id(value):
    # ids are arbitrary hashables in memory; on disk they must be JSON
    # scalars.  Non-string/int ids are stringified (documented lossy edge).
    if isinstance(value, (str, int)):
        return value
    return str(value)


# ---------------------------------------------------------------------------
# instances
# ---------------------------------------------------------------------------

def instance_to_dict(instance: Union[RigidInstance, ReservationInstance]) -> Dict:
    """Encode either instance flavour as a plain dict."""
    reservations = []
    if isinstance(instance, ReservationInstance):
        reservations = [
            {
                "id": _encode_id(res.id),
                "start": _encode_number(res.start),
                "p": _encode_number(res.p),
                "q": res.q,
                "name": res.name,
            }
            for res in instance.reservations
        ]
    return {
        "format": INSTANCE_FORMAT,
        "m": instance.m,
        "name": instance.name,
        "jobs": [
            {
                "id": _encode_id(job.id),
                "p": _encode_number(job.p),
                "q": job.q,
                "release": _encode_number(job.release),
                "name": job.name,
            }
            for job in instance.jobs
        ],
        "reservations": reservations,
    }


def instance_from_dict(data: Dict) -> ReservationInstance:
    """Decode an instance dict (validates through the constructors)."""
    if not isinstance(data, dict):
        raise TraceFormatError("instance document must be a JSON object")
    if data.get("format") != INSTANCE_FORMAT:
        raise TraceFormatError(
            f"unsupported instance format {data.get('format')!r}; "
            f"expected {INSTANCE_FORMAT!r}"
        )
    try:
        jobs = tuple(
            Job(
                id=j["id"],
                p=_decode_number(j["p"]),
                q=int(j["q"]),
                release=_decode_number(j.get("release", 0)),
                name=j.get("name", ""),
            )
            for j in data["jobs"]
        )
        reservations = tuple(
            Reservation(
                id=r["id"],
                start=_decode_number(r["start"]),
                p=_decode_number(r["p"]),
                q=int(r["q"]),
                name=r.get("name", ""),
            )
            for r in data.get("reservations", ())
        )
        return ReservationInstance(
            m=int(data["m"]),
            jobs=jobs,
            reservations=reservations,
            name=data.get("name", ""),
        )
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed instance document: {exc}") from exc


def dumps_instance(instance, indent: int = 2) -> str:
    """Instance → JSON text."""
    return json.dumps(instance_to_dict(instance), indent=indent)


def loads_instance(text: str) -> ReservationInstance:
    """JSON text → instance."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON: {exc}") from exc
    return instance_from_dict(data)


def save_instance(instance, path: str) -> str:
    """Write an instance JSON file; returns the path."""
    with open(path, "w") as fh:
        fh.write(dumps_instance(instance))
    return path


def load_instance(path: str) -> ReservationInstance:
    """Read an instance JSON file."""
    with open(path) as fh:
        return loads_instance(fh.read())


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------

def schedule_to_dict(schedule: Schedule) -> Dict:
    """Encode a schedule together with its instance (self-contained)."""
    return {
        "format": SCHEDULE_FORMAT,
        "algorithm": schedule.algorithm,
        "makespan": _encode_number(schedule.makespan),
        "instance": instance_to_dict(schedule.instance),
        "starts": [
            {"job": _encode_id(jid), "start": _encode_number(s)}
            for jid, s in sorted(
                schedule.starts.items(), key=lambda kv: str(kv[0])
            )
        ],
    }


def schedule_from_dict(data: Dict) -> Schedule:
    """Decode a schedule document; re-verifies nothing by default (call
    ``.verify()`` for a full feasibility check) but the recorded makespan
    must match the decoded one — guarding against tampered files."""
    if not isinstance(data, dict):
        raise TraceFormatError("schedule document must be a JSON object")
    if data.get("format") != SCHEDULE_FORMAT:
        raise TraceFormatError(
            f"unsupported schedule format {data.get('format')!r}; "
            f"expected {SCHEDULE_FORMAT!r}"
        )
    instance = instance_from_dict(data["instance"])
    try:
        starts = {
            entry["job"]: _decode_number(entry["start"])
            for entry in data["starts"]
        }
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed schedule starts: {exc}") from exc
    schedule = Schedule(instance, starts, algorithm=data.get("algorithm", ""))
    recorded = _decode_number(data.get("makespan", schedule.makespan))
    if recorded != schedule.makespan:
        raise TraceFormatError(
            f"recorded makespan {recorded!r} does not match decoded "
            f"schedule's {schedule.makespan!r}"
        )
    return schedule


def dumps_schedule(schedule: Schedule, indent: int = 2) -> str:
    """Schedule → JSON text."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def loads_schedule(text: str) -> Schedule:
    """JSON text → schedule."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON: {exc}") from exc
    return schedule_from_dict(data)


def save_schedule(schedule: Schedule, path: str) -> str:
    """Write a schedule JSON file; returns the path."""
    with open(path, "w") as fh:
        fh.write(dumps_schedule(schedule))
    return path


def load_schedule(path: str) -> Schedule:
    """Read a schedule JSON file."""
    with open(path) as fh:
        return loads_schedule(fh.read())


# ---------------------------------------------------------------------------
# experiment specs (lazy delegation — repro.run sits above repro.core)
# ---------------------------------------------------------------------------

def dumps_spec(spec, indent: int = 2) -> str:
    """Experiment spec → JSON text (see :mod:`repro.run.spec`)."""
    from ..run.spec import dumps_spec as _dumps

    return _dumps(spec, indent=indent)


def loads_spec(text: str):
    """JSON text → :class:`repro.run.ExperimentSpec`."""
    from ..run.spec import loads_spec as _loads

    return _loads(text)


def save_spec(spec, path: str) -> str:
    """Write a spec JSON file; returns the path."""
    from ..run.spec import save_spec as _save

    return _save(spec, path)


def load_spec(path: str):
    """Read a spec JSON file."""
    from ..run.spec import load_spec as _load

    return _load(path)
