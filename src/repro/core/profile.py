"""Backward-compatibility shim: the profile moved to :mod:`repro.core.profiles`.

``ResourceProfile`` (the historical flat-list implementation) is now
:class:`repro.core.profiles.ListProfile`; the O(log n) tree variant lives
beside it as :class:`repro.core.profiles.TreeProfile`, both behind the
:class:`repro.core.profiles.ProfileBackend` protocol.  Import from
:mod:`repro.core.profiles` in new code.
"""

from .profiles import (  # noqa: F401
    ListProfile,
    ProfileBackend,
    ResourceProfile,
    Segment,
    TreeProfile,
    available_backends,
    convert_profile,
    get_default_backend,
    get_default_backend_name,
    make_profile,
    register_backend,
    resolve_backend,
    set_default_backend,
)

__all__ = [
    "ResourceProfile",
    "ListProfile",
    "TreeProfile",
    "ProfileBackend",
    "Segment",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
    "get_default_backend_name",
    "make_profile",
    "convert_profile",
]
