"""Piecewise-constant resource availability profiles.

This is the central data structure of the library.  The paper models the
reservations of an instance as an *unavailability function* ``U(t)``
(Section 3.1); schedulers instead work with the complementary *availability
profile* ``m(t) = m - U(t)``: how many processors are free at every time.

A :class:`ResourceProfile` stores a sorted sequence of breakpoints
``times[0] = 0 < times[1] < ...`` and integer capacities ``caps[i]`` on the
half-open segments ``[times[i], times[i+1])``; the last segment extends to
infinity.  Capacities are maintained as non-negative integers (processor
counts) while times may be any real type (``int``, ``float``,
:class:`fractions.Fraction`), so the exact worst-case constructions of
:mod:`repro.theory` stay exact.

Supported operations (all used by the schedulers in
:mod:`repro.algorithms`):

* point query :meth:`capacity_at`,
* window queries :meth:`min_capacity` and :meth:`area`,
* :meth:`earliest_fit` — earliest start of a ``q``-wide, ``p``-long block,
* :meth:`reserve` / :meth:`add` — subtract or restore capacity,
* :meth:`first_time_area_reaches` — support for the area lower bound.

The structure is mutable (schedulers commit placements into their private
copy); use :meth:`copy` to branch, as the exact solver does.
"""

from __future__ import annotations

import math
import numbers
from bisect import bisect_right, insort
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import CapacityError, InvalidInstanceError

Segment = Tuple[object, object, int]  # (start, end, capacity); end may be math.inf


class ResourceProfile:
    """Integer capacity as a piecewise-constant function of time on ``[0, inf)``."""

    __slots__ = ("_times", "_caps")

    def __init__(self, times: List, caps: List[int], _validate: bool = True):
        if _validate:
            if not times or times[0] != 0:
                raise InvalidInstanceError("profile must start at time 0")
            if len(times) != len(caps):
                raise InvalidInstanceError("times and caps must have equal length")
            for i in range(1, len(times)):
                if not times[i - 1] < times[i]:
                    raise InvalidInstanceError(
                        f"profile breakpoints must be strictly increasing, got "
                        f"{times[i - 1]!r} then {times[i]!r}"
                    )
            for c in caps:
                if not isinstance(c, numbers.Integral) or c < 0:
                    raise InvalidInstanceError(
                        f"profile capacities must be non-negative integers, got {c!r}"
                    )
        self._times = list(times)
        self._caps = [int(c) for c in caps]
        self._merge_equal()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, capacity: int) -> "ResourceProfile":
        """A machine with ``capacity`` processors free at every time."""
        return cls([0], [capacity])

    @classmethod
    def from_reservations(cls, m: int, reservations: Iterable) -> "ResourceProfile":
        """Availability of an ``m``-processor machine minus its reservations.

        Raises :class:`~repro.errors.CapacityError` when the reservations
        overlap beyond ``m`` processors (the instance is then infeasible in
        the sense of Section 3.1).
        """
        profile = cls.constant(m)
        for res in reservations:
            profile.reserve(res.start, res.p, res.q)
        return profile

    @classmethod
    def from_segments(cls, segments: Iterable[Tuple]) -> "ResourceProfile":
        """Build from ``(start, capacity)`` pairs; last extends to infinity."""
        times, caps = [], []
        for start, cap in segments:
            times.append(start)
            caps.append(cap)
        return cls(times, caps)

    def copy(self) -> "ResourceProfile":
        """Independent mutable copy."""
        clone = ResourceProfile.__new__(ResourceProfile)
        clone._times = list(self._times)
        clone._caps = list(self._caps)
        return clone

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _merge_equal(self) -> None:
        """Restore the invariant that adjacent segments differ in capacity."""
        times, caps = self._times, self._caps
        merged_t, merged_c = [times[0]], [caps[0]]
        for t, c in zip(times[1:], caps[1:]):
            if c != merged_c[-1]:
                merged_t.append(t)
                merged_c.append(c)
        self._times, self._caps = merged_t, merged_c

    def _index_at(self, t) -> int:
        """Index of the segment containing time ``t >= 0``."""
        if t < 0:
            raise InvalidInstanceError(f"profile queried at negative time {t!r}")
        return bisect_right(self._times, t) - 1

    def _ensure_breakpoint(self, t) -> int:
        """Split the segment containing ``t`` so ``t`` is a breakpoint.

        Returns the index whose segment now starts at ``t``.
        """
        i = self._index_at(t)
        if self._times[i] == t:
            return i
        self._times.insert(i + 1, t)
        self._caps.insert(i + 1, self._caps[i])
        return i + 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple:
        """The times at which capacity changes (first is always 0)."""
        return tuple(self._times)

    def capacity_at(self, t) -> int:
        """Number of free processors at time ``t``."""
        return self._caps[self._index_at(t)]

    def final_capacity(self) -> int:
        """Capacity on the unbounded last segment (after every reservation)."""
        return self._caps[-1]

    def max_capacity(self) -> int:
        """Largest capacity reached anywhere."""
        return max(self._caps)

    def min_capacity_overall(self) -> int:
        """Smallest capacity reached anywhere."""
        return min(self._caps)

    def segments(self, horizon=None) -> Iterator[Segment]:
        """Yield ``(start, end, capacity)``; the last ``end`` is ``horizon``
        (if given) or ``math.inf``."""
        n = len(self._times)
        for i in range(n):
            start = self._times[i]
            end = self._times[i + 1] if i + 1 < n else (
                horizon if horizon is not None else math.inf
            )
            if horizon is not None:
                if start >= horizon:
                    return
                end = min(end, horizon)
            yield (start, end, self._caps[i])

    def min_capacity(self, start, end) -> int:
        """Minimum capacity over the window ``[start, end)``."""
        if end <= start:
            raise InvalidInstanceError("window must have positive length")
        i = self._index_at(start)
        lo = self._caps[i]
        j = i + 1
        while j < len(self._times) and self._times[j] < end:
            lo = min(lo, self._caps[j])
            j += 1
        return lo

    def fits(self, q: int, start, duration) -> bool:
        """True when a ``q``-wide block of length ``duration`` fits at ``start``."""
        return self.min_capacity(start, start + duration) >= q

    def area(self, start, end):
        """Integral of the capacity over ``[start, end)`` (available work area)."""
        if end < start:
            raise InvalidInstanceError("area window must be ordered")
        if end == start:
            return 0
        total = 0
        for seg_start, seg_end, cap in self.segments():
            if seg_end <= start:
                continue
            if seg_start >= end:
                break
            lo = max(seg_start, start)
            hi = min(seg_end, end)
            total += cap * (hi - lo)
        return total

    def next_breakpoint_after(self, t):
        """Smallest breakpoint strictly greater than ``t``, or ``None``."""
        i = bisect_right(self._times, t)
        return self._times[i] if i < len(self._times) else None

    def earliest_fit(self, q: int, duration, after=0) -> Optional[object]:
        """Earliest ``s >= after`` such that capacity is ``>= q`` throughout
        ``[s, s + duration)``.

        Returns ``None`` when no such time exists, which happens exactly when
        the final (infinite) segment has capacity below ``q``.

        This single primitive implements: conservative backfilling placement,
        the FCFS head-of-queue start rule, and the "fit now" test of LSRC
        (by checking whether the returned time equals ``after``).
        """
        if duration <= 0:
            raise InvalidInstanceError("duration must be positive")
        if q < 0:
            raise InvalidInstanceError("width must be non-negative")
        n = len(self._times)
        i = self._index_at(after) if after > 0 else 0
        candidate = None
        while i < n:
            seg_start = self._times[i]
            seg_end = self._times[i + 1] if i + 1 < n else math.inf
            if self._caps[i] >= q:
                if candidate is None:
                    candidate = seg_start if seg_start > after else after
                if seg_end == math.inf or seg_end - candidate >= duration:
                    return candidate
            else:
                candidate = None
            i += 1
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def reserve(self, start, duration, amount: int) -> None:
        """Subtract ``amount`` processors over ``[start, start + duration)``.

        Raises :class:`~repro.errors.CapacityError` when any covered segment
        would drop below zero; the profile is left unchanged in that case.
        """
        if duration <= 0:
            raise InvalidInstanceError("duration must be positive")
        if not isinstance(amount, numbers.Integral) or amount < 0:
            raise InvalidInstanceError(
                f"reserved amount must be a non-negative integer, got {amount!r}"
            )
        if start < 0:
            raise InvalidInstanceError("reservation cannot start before time 0")
        if amount == 0:
            return
        end = start + duration
        if self.min_capacity(start, end) < amount:
            raise CapacityError(
                f"cannot reserve {amount} processors on [{start}, {end}): "
                f"minimum available is {self.min_capacity(start, end)}"
            )
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        for k in range(i, j):
            self._caps[k] -= int(amount)
        self._merge_equal()

    def add(self, start, duration, amount: int) -> None:
        """Add ``amount`` processors over ``[start, start + duration)``.

        Inverse of :meth:`reserve`; used for what-if probing (EASY
        backfilling) and by tests.
        """
        if duration <= 0:
            raise InvalidInstanceError("duration must be positive")
        if not isinstance(amount, numbers.Integral) or amount < 0:
            raise InvalidInstanceError(
                f"added amount must be a non-negative integer, got {amount!r}"
            )
        if start < 0:
            raise InvalidInstanceError("cannot add capacity before time 0")
        if amount == 0:
            return
        end = start + duration
        i = self._ensure_breakpoint(start)
        j = self._ensure_breakpoint(end)
        for k in range(i, j):
            self._caps[k] += int(amount)
        self._merge_equal()

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def first_time_area_reaches(self, work, start=0):
        """Smallest ``T`` with ``area(start, T) >= work``.

        Supports the reservation-aware area lower bound
        (:func:`repro.core.bounds.area_bound`): no schedule can finish
        ``work`` units of processing before the machine has offered that
        much capacity.  Returns ``None`` if the profile's tail capacity is 0
        and the work cannot be accumulated (only possible on degenerate
        profiles).
        """
        if work <= 0:
            return start
        acc = 0
        for seg_start, seg_end, cap in self.segments():
            if seg_end <= start:
                continue
            lo = max(seg_start, start)
            if seg_end == math.inf:
                if cap == 0:
                    return None
                return lo + (work - acc) / cap
            gain = cap * (seg_end - lo)
            if acc + gain >= work:
                if cap == 0:
                    # gain is 0, cannot happen when acc + gain >= work > acc
                    return seg_end
                return lo + (work - acc) / cap
            acc += gain
        return None  # pragma: no cover - segments() always ends with inf

    def inverted(self, m: int) -> "ResourceProfile":
        """The unavailability profile ``U(t) = m - capacity(t)``.

        Raises when capacity exceeds ``m`` anywhere.
        """
        caps = []
        for c in self._caps:
            if c > m:
                raise InvalidInstanceError(
                    f"capacity {c} exceeds machine size {m}; cannot invert"
                )
            caps.append(m - c)
        return ResourceProfile(list(self._times), caps, _validate=False)

    def is_nondecreasing(self) -> bool:
        """True when capacity never decreases over time.

        This is the availability-side phrasing of the paper's
        *non-increasing reservations* restriction (Section 4.1):
        ``U`` non-increasing  ⇔  ``m(t)`` non-decreasing.
        """
        return all(a <= b for a, b in zip(self._caps, self._caps[1:]))

    def truncated_after(self, horizon) -> "ResourceProfile":
        """Profile equal to this one before ``horizon`` and constant after.

        The constant is the capacity at ``horizon``.  This is the ``I'``
        transformation in the proof of Proposition 1.
        """
        if horizon < 0:
            raise InvalidInstanceError("horizon must be >= 0")
        times, caps = [], []
        cap_at_h = self.capacity_at(horizon)
        for t, c in zip(self._times, self._caps):
            if t >= horizon:
                break
            times.append(t)
            caps.append(c)
        if not times:
            return ResourceProfile([0], [cap_at_h], _validate=False)
        if caps[-1] != cap_at_h:
            times.append(horizon)
            caps.append(cap_at_h)
        return ResourceProfile(times, caps, _validate=False)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, ResourceProfile):
            return NotImplemented
        return self._times == other._times and self._caps == other._caps

    def __hash__(self):
        return hash((tuple(self._times), tuple(self._caps)))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{t}:{c}]" for t, c in zip(self._times, self._caps)
        )
        return f"ResourceProfile({parts})"
