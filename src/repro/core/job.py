"""Jobs and reservations: the atoms of the scheduling model.

The paper's model (Sections 2.1 and 3.1) features two kinds of entities:

* **rigid parallel jobs** ``T_i`` characterised by a processing time
  ``p_i > 0`` and a fixed number of required processors ``q_i in [1..m]``;
  the scheduler chooses their start times;
* **reservations** ``R_j`` characterised by a processing time ``p_j > 0``,
  a processor count ``q_j in [1..m]`` *and* a fixed start time ``r_j``;
  the scheduler must work around them.

Times are deliberately generic: any :class:`numbers.Real` works (``int``,
``float``, :class:`fractions.Fraction`).  The theory constructions in
:mod:`repro.theory` use exact integers or fractions so that worst-case
ratios are verified without floating-point noise, while randomly generated
workloads use floats.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, replace
from typing import Union

from ..errors import InvalidInstanceError

#: Any real-number-like time value accepted by the library.
Time = Union[int, float]


def _check_real(value, what: str, owner: str) -> None:
    # exact-type fast path: the ABC instance check costs ~10x a type
    # check, and ints/floats are ~all values on trace-scale hot paths
    if type(value) is int or type(value) is float:
        return
    if not isinstance(value, numbers.Real):
        raise InvalidInstanceError(
            f"{owner}: {what} must be a real number, got {value!r}"
        )


@dataclass(frozen=True, order=False)
class Job:
    """A rigid parallel job ``(p, q)``.

    Attributes
    ----------
    id:
        Identifier, unique within an instance.  Any hashable value works;
        generators use small integers, traces use the trace's job numbers.
    p:
        Processing time ``p > 0`` (the paper's :math:`p_i`).
    q:
        Number of required processors ``q >= 1`` (the paper's :math:`q_i`).
        The job may run on *any* subset of ``q`` processors (no contiguity,
        Section 2.1).
    release:
        Earliest time the job may start.  The paper's core model is offline
        (all jobs available at 0, the default); the online simulation and
        the batch-doubling wrapper of Section 2.1 use positive releases.
    name:
        Optional human-readable label used by Gantt renderers.
    """

    id: object
    p: Time
    q: int
    release: Time = 0
    name: str = ""

    def __post_init__(self):
        # the f-string owner labels are only needed on the error paths;
        # building them eagerly would dominate trace-scale construction
        if not (type(self.p) is int or type(self.p) is float):
            _check_real(self.p, "processing time", f"job {self.id!r}")
        if not (type(self.release) is int or type(self.release) is float):
            _check_real(self.release, "release time", f"job {self.id!r}")
        if self.p <= 0:
            raise InvalidInstanceError(
                f"job {self.id!r}: processing time must be positive, got {self.p}"
            )
        if type(self.q) is not int and (
            not isinstance(self.q, numbers.Integral) or isinstance(self.q, bool)
        ):
            raise InvalidInstanceError(
                f"job {self.id!r}: processor count must be an integer, got {self.q!r}"
            )
        if self.q < 1:
            raise InvalidInstanceError(
                f"job {self.id!r}: processor count must be >= 1, got {self.q}"
            )
        if self.release < 0:
            raise InvalidInstanceError(
                f"job {self.id!r}: release time must be >= 0, got {self.release}"
            )

    @classmethod
    def trusted(cls, id: object, p: Time, q: int, release: Time) -> "Job":
        """Construct without re-validation — for generators whose values
        are valid *by construction* (the synthetic trace pack builds
        millions of jobs; the dataclass ``__init__``'s five frozen
        ``object.__setattr__`` calls plus ``__post_init__`` would be
        ~half its cost).  The result is indistinguishable from a normal
        ``Job``; callers feeding unchecked external data must use the
        regular constructor.
        """
        job = object.__new__(cls)
        d = job.__dict__  # mutating the dict sidesteps the frozen setattr
        d["id"] = id
        d["p"] = p
        d["q"] = q
        d["release"] = release
        d["name"] = ""
        return job

    @property
    def area(self) -> Time:
        """Work of the job, ``p * q`` — its contribution to ``W(I)``."""
        return self.p * self.q

    @property
    def label(self) -> str:
        """Display label: explicit ``name`` if set, else the id."""
        return self.name or str(self.id)

    def with_release(self, release: Time) -> "Job":
        """Copy of this job with a different release time."""
        return replace(self, release=release)

    def scaled(self, time_factor: Time) -> "Job":
        """Copy with processing time and release multiplied by a factor.

        Used by the theory constructions to turn fractional instances (for
        example the ``p = 1/k`` tasks of Proposition 2) into exact integer
        ones, which leaves all makespan *ratios* unchanged.
        """
        if time_factor <= 0:
            raise InvalidInstanceError("time factor must be positive")
        return replace(
            self, p=self.p * time_factor, release=self.release * time_factor
        )


@dataclass(frozen=True, order=False)
class Reservation:
    """An advance reservation: a fixed block of ``q`` processors.

    Attributes
    ----------
    id:
        Identifier, unique among the reservations of an instance.
    start:
        Fixed start time ``r >= 0`` (the paper's :math:`r_j`).
    p:
        Duration ``p > 0``.
    q:
        Number of processors removed from the machine during
        ``[start, start + p)``.
    name:
        Optional label for rendering.
    """

    id: object
    start: Time
    p: Time
    q: int
    name: str = ""

    def __post_init__(self):
        _check_real(self.start, "start time", f"reservation {self.id!r}")
        _check_real(self.p, "duration", f"reservation {self.id!r}")
        if self.p <= 0:
            raise InvalidInstanceError(
                f"reservation {self.id!r}: duration must be positive, got {self.p}"
            )
        if not isinstance(self.q, numbers.Integral) or isinstance(self.q, bool):
            raise InvalidInstanceError(
                f"reservation {self.id!r}: processor count must be an integer, "
                f"got {self.q!r}"
            )
        if self.q < 1:
            raise InvalidInstanceError(
                f"reservation {self.id!r}: processor count must be >= 1, got {self.q}"
            )
        if self.start < 0:
            raise InvalidInstanceError(
                f"reservation {self.id!r}: start time must be >= 0, got {self.start}"
            )

    @property
    def end(self) -> Time:
        """Completion time ``start + p``."""
        return self.start + self.p

    @property
    def area(self) -> Time:
        """Capacity consumed: ``p * q``."""
        return self.p * self.q

    @property
    def label(self) -> str:
        """Display label: explicit ``name`` if set, else the id."""
        return self.name or f"R{self.id}"

    def overlaps(self, t: Time) -> bool:
        """True when the reservation is active at time ``t``."""
        return self.start <= t < self.end

    def scaled(self, time_factor: Time) -> "Reservation":
        """Copy with start and duration multiplied by a factor."""
        if time_factor <= 0:
            raise InvalidInstanceError("time factor must be positive")
        return replace(
            self, start=self.start * time_factor, p=self.p * time_factor
        )


def make_jobs(specs, start_id: int = 0) -> tuple:
    """Build a tuple of jobs from ``(p, q)`` or ``(p, q, release)`` tuples.

    A convenience used heavily in tests and constructions::

        jobs = make_jobs([(3, 2), (1, 4), (2, 1)])
    """
    jobs = []
    for offset, spec in enumerate(specs):
        if len(spec) == 2:
            p, q = spec
            release = 0
        elif len(spec) == 3:
            p, q, release = spec
        else:
            raise InvalidInstanceError(
                f"job spec must have 2 or 3 fields, got {spec!r}"
            )
        jobs.append(Job(id=start_id + offset, p=p, q=q, release=release))
    return tuple(jobs)


def make_reservations(specs, start_id: int = 0) -> tuple:
    """Build a tuple of reservations from ``(start, p, q)`` tuples."""
    reservations = []
    for offset, spec in enumerate(specs):
        if len(spec) != 3:
            raise InvalidInstanceError(
                f"reservation spec must have 3 fields (start, p, q), got {spec!r}"
            )
        start, p, q = spec
        reservations.append(Reservation(id=start_id + offset, start=start, p=p, q=q))
    return tuple(reservations)
