"""Problem instances: RIGIDSCHEDULING and RESASCHEDULING.

Two instance classes mirror the two problems of the paper:

* :class:`RigidInstance` — the classical problem
  ``P | p_j, size_j | Cmax`` of Section 2.1: ``n`` independent rigid jobs
  on ``m`` identical processors, no reservations;
* :class:`ReservationInstance` — the RESASCHEDULING problem of Section 3.1:
  the same jobs plus ``n'`` advance reservations, inducing an
  unavailability function ``U(t)``.

The α-restricted problem of Section 4.2 is not a separate class but a
*validation predicate* on :class:`ReservationInstance`
(:meth:`ReservationInstance.validate_alpha`): an instance belongs to
α-RESASCHEDULING when every reservation point uses at most ``(1 - α) m``
processors and every job at most ``α m``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from functools import cached_property
from typing import Dict, Iterable, Optional, Tuple

from ..errors import (
    AlphaViolationError,
    CapacityError,
    InfeasibleInstanceError,
    InvalidInstanceError,
)
from .job import Job, Reservation, make_jobs, make_reservations
from .profiles import BackendSpec, ProfileBackend, ResourceProfile, convert_profile


def _check_machine_count(m) -> None:
    if not isinstance(m, int) or isinstance(m, bool) or m < 1:
        raise InvalidInstanceError(
            f"machine count must be a positive integer, got {m!r}"
        )


def _check_unique_ids(items, what: str) -> None:
    seen = set()
    for item in items:
        if item.id in seen:
            raise InvalidInstanceError(f"duplicate {what} id {item.id!r}")
        seen.add(item.id)


@dataclass(frozen=True)
class RigidInstance:
    """An instance of RIGIDSCHEDULING: ``m`` machines and rigid jobs.

    Attributes
    ----------
    m:
        Number of identical processors.
    jobs:
        The rigid jobs; each must satisfy ``1 <= q_i <= m``.
    name:
        Optional label used in reports.
    """

    m: int
    jobs: Tuple[Job, ...]
    name: str = ""

    def __post_init__(self):
        _check_machine_count(self.m)
        object.__setattr__(self, "jobs", tuple(self.jobs))
        _check_unique_ids(self.jobs, "job")
        for job in self.jobs:
            if job.q > self.m:
                raise InvalidInstanceError(
                    f"job {job.id!r} requires {job.q} processors but the "
                    f"machine only has {self.m}"
                )

    # -- convenience constructors ------------------------------------
    @classmethod
    def from_specs(cls, m: int, specs, name: str = "") -> "RigidInstance":
        """Build from ``(p, q)`` / ``(p, q, release)`` tuples."""
        return cls(m=m, jobs=make_jobs(specs), name=name)

    # -- basic aggregates ---------------------------------------------
    @property
    def n(self) -> int:
        """Number of jobs."""
        return len(self.jobs)

    @cached_property
    def total_work(self):
        """``W(I) = sum p_i q_i`` (appendix notation)."""
        return sum(job.area for job in self.jobs)

    @cached_property
    def pmax(self):
        """Longest processing time, the appendix's ``pmax``."""
        return max(job.p for job in self.jobs) if self.jobs else 0

    @cached_property
    def qmax(self) -> int:
        """Largest processor requirement among the jobs."""
        return max(job.q for job in self.jobs) if self.jobs else 0

    @cached_property
    def max_release(self):
        """Latest release time (0 for purely offline instances)."""
        return max((job.release for job in self.jobs), default=0)

    @cached_property
    def job_by_id(self) -> Dict:
        """Mapping from job id to job."""
        return {job.id: job for job in self.jobs}

    # -- transformations ------------------------------------------------
    def with_jobs(self, jobs: Iterable[Job]) -> "RigidInstance":
        """Copy with a different job set."""
        return replace(self, jobs=tuple(jobs))

    def scaled(self, time_factor) -> "RigidInstance":
        """Copy with all processing/release times multiplied by a factor."""
        return replace(
            self, jobs=tuple(job.scaled(time_factor) for job in self.jobs)
        )

    def to_reservation_instance(
        self, reservations: Iterable[Reservation] = ()
    ) -> "ReservationInstance":
        """Lift into RESASCHEDULING, optionally adding reservations."""
        return ReservationInstance(
            m=self.m,
            jobs=self.jobs,
            reservations=tuple(reservations),
            name=self.name,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"RigidInstance{label}(m={self.m}, n={self.n})"


@dataclass(frozen=True)
class ReservationInstance:
    """An instance of RESASCHEDULING: jobs plus advance reservations.

    Only *feasible* instances are representable: construction fails with
    :class:`~repro.errors.InfeasibleInstanceError` when the reservations
    overlap beyond the machine size (``U(t) > m`` for some ``t``), matching
    the paper's Section 3.1 restriction to feasible instances.
    """

    m: int
    jobs: Tuple[Job, ...]
    reservations: Tuple[Reservation, ...] = ()
    name: str = ""

    def __post_init__(self):
        _check_machine_count(self.m)
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(self, "reservations", tuple(self.reservations))
        _check_unique_ids(self.jobs, "job")
        _check_unique_ids(self.reservations, "reservation")
        for job in self.jobs:
            if job.q > self.m:
                raise InvalidInstanceError(
                    f"job {job.id!r} requires {job.q} processors but the "
                    f"machine only has {self.m}"
                )
        for res in self.reservations:
            if res.q > self.m:
                raise InfeasibleInstanceError(
                    f"reservation {res.id!r} requires {res.q} processors but "
                    f"the machine only has {self.m}"
                )
        # Feasibility: build the availability profile once; overlapping
        # reservations beyond m processors surface as a CapacityError.
        try:
            master = ResourceProfile.from_reservations(self.m, self.reservations)
        except CapacityError as exc:
            raise InfeasibleInstanceError(
                f"reservations are infeasible on {self.m} machines: {exc}"
            ) from exc
        object.__setattr__(self, "_master_profile", master)

    # -- convenience constructors ------------------------------------
    @classmethod
    def from_specs(
        cls, m: int, job_specs, reservation_specs=(), name: str = ""
    ) -> "ReservationInstance":
        """Build from ``(p, q[, release])`` job tuples and
        ``(start, p, q)`` reservation tuples."""
        return cls(
            m=m,
            jobs=make_jobs(job_specs),
            reservations=make_reservations(reservation_specs),
            name=name,
        )

    @classmethod
    def from_rigid(
        cls, rigid: RigidInstance, reservations: Iterable[Reservation] = ()
    ) -> "ReservationInstance":
        """Lift a RIGIDSCHEDULING instance (``n' = 0`` when no reservations)."""
        return cls(
            m=rigid.m,
            jobs=rigid.jobs,
            reservations=tuple(reservations),
            name=rigid.name,
        )

    # -- aggregates -----------------------------------------------------
    @property
    def n(self) -> int:
        """Number of jobs."""
        return len(self.jobs)

    @property
    def n_reservations(self) -> int:
        """Number of reservations, the paper's ``n'``."""
        return len(self.reservations)

    @cached_property
    def total_work(self):
        """Total job work ``W = sum p_i q_i`` (reservations excluded)."""
        return sum(job.area for job in self.jobs)

    @cached_property
    def pmax(self):
        """Longest job processing time."""
        return max(job.p for job in self.jobs) if self.jobs else 0

    @cached_property
    def qmax(self) -> int:
        """Largest job processor requirement."""
        return max(job.q for job in self.jobs) if self.jobs else 0

    @cached_property
    def job_by_id(self) -> Dict:
        """Mapping from job id to job."""
        return {job.id: job for job in self.jobs}

    @cached_property
    def reservation_by_id(self) -> Dict:
        """Mapping from reservation id to reservation."""
        return {res.id: res for res in self.reservations}

    @cached_property
    def last_reservation_end(self):
        """Completion time of the latest reservation (0 when none)."""
        return max((res.end for res in self.reservations), default=0)

    # -- availability -----------------------------------------------------
    def availability_profile(
        self, profile_backend: BackendSpec = None
    ) -> ProfileBackend:
        """Fresh mutable copy of ``m(t) = m - U(t)``.

        Each call returns an independent copy so schedulers can commit
        placements without corrupting the instance.  ``profile_backend``
        selects the availability structure (a name such as ``"list"`` or
        ``"tree"``, or a :class:`~repro.core.profiles.ProfileBackend`
        subclass); ``None`` uses the module default
        (:func:`repro.core.profiles.set_default_backend`).
        """
        return convert_profile(
            self._master_profile, profile_backend  # type: ignore[attr-defined]
        )

    def availability_lists(self) -> Tuple[list, list]:
        """Canonical ``(times, caps)`` breakpoint lists of ``m(t)`` (fresh
        copies).  The raw-array view the integer-timebase fast path
        (:mod:`repro.core.timebase`) normalises without paying for a full
        backend conversion."""
        return self._master_profile.as_lists()  # type: ignore[attr-defined]

    def unavailability_at(self, t) -> int:
        """The paper's ``U(t)``: processors blocked by reservations at ``t``."""
        return self.m - self._master_profile.capacity_at(t)  # type: ignore[attr-defined]

    @cached_property
    def max_unavailability(self) -> int:
        """``max_t U(t)`` — determines the α feasible for this instance."""
        return self.m - self._master_profile.min_capacity_overall()  # type: ignore[attr-defined]

    def has_nonincreasing_reservations(self) -> bool:
        """True when ``U`` is non-increasing (Section 4.1's restriction)."""
        return self._master_profile.is_nondecreasing()  # type: ignore[attr-defined]

    # -- alpha restrictions (Section 4.2) ---------------------------------
    @property
    def min_alpha(self) -> Fraction:
        """Smallest α compatible with the jobs: ``qmax / m``."""
        return Fraction(self.qmax, self.m) if self.jobs else Fraction(0)

    @property
    def max_alpha(self) -> Fraction:
        """Largest α compatible with the reservations: ``1 - Umax / m``."""
        return 1 - Fraction(self.max_unavailability, self.m)

    def is_alpha_restricted(self, alpha) -> bool:
        """True when the instance belongs to α-RESASCHEDULING."""
        if not 0 < alpha <= 1:
            return False
        return self.min_alpha <= alpha <= self.max_alpha

    def validate_alpha(self, alpha) -> None:
        """Raise :class:`~repro.errors.AlphaViolationError` if the instance
        is outside α-RESASCHEDULING for the given α."""
        if not 0 < alpha <= 1:
            raise AlphaViolationError(f"alpha must lie in (0, 1], got {alpha!r}")
        if self.min_alpha > alpha:
            raise AlphaViolationError(
                f"a job requires {self.qmax}/{self.m} = {self.min_alpha} of the "
                f"machine, exceeding alpha = {alpha}"
            )
        if self.max_alpha < alpha:
            raise AlphaViolationError(
                f"reservations block {self.max_unavailability}/{self.m} "
                f"processors, exceeding (1 - alpha) = {1 - alpha}"
            )

    @property
    def admissible_alpha(self) -> Optional[Fraction]:
        """The largest valid α, or ``None`` when no α makes the instance
        α-restricted (jobs wider than what reservations leave over)."""
        if self.min_alpha <= self.max_alpha and self.max_alpha > 0:
            return self.max_alpha
        return None

    # -- transformations ------------------------------------------------
    def with_jobs(self, jobs: Iterable[Job]) -> "ReservationInstance":
        """Copy with a different job set."""
        return replace(self, jobs=tuple(jobs))

    def with_reservations(
        self, reservations: Iterable[Reservation]
    ) -> "ReservationInstance":
        """Copy with a different reservation set."""
        return replace(self, reservations=tuple(reservations))

    def without_reservations(self) -> RigidInstance:
        """Drop the reservations, yielding the underlying RIGID instance."""
        return RigidInstance(m=self.m, jobs=self.jobs, name=self.name)

    def scaled(self, time_factor) -> "ReservationInstance":
        """Copy with every time (jobs and reservations) multiplied by a
        positive factor.  Makespans scale by the same factor, so all
        performance *ratios* are preserved."""
        return ReservationInstance(
            m=self.m,
            jobs=tuple(job.scaled(time_factor) for job in self.jobs),
            reservations=tuple(
                res.scaled(time_factor) for res in self.reservations
            ),
            name=self.name,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"ReservationInstance{label}(m={self.m}, n={self.n}, "
            f"n'={self.n_reservations})"
        )


def as_reservation_instance(instance) -> ReservationInstance:
    """Coerce either instance type into a :class:`ReservationInstance`.

    Schedulers accept both problem flavours; this is the single conversion
    point.
    """
    if isinstance(instance, ReservationInstance):
        return instance
    if isinstance(instance, RigidInstance):
        return ReservationInstance.from_rigid(instance)
    raise InvalidInstanceError(
        f"expected RigidInstance or ReservationInstance, got {type(instance)!r}"
    )
