"""repro — reproduction of *Analysis of Scheduling Algorithms with
Reservations* (Eyraud-Dubois, Mounié, Trystram; IPDPS 2007).

A library for scheduling rigid parallel jobs on a homogeneous cluster in
the presence of advance reservations:

* exact problem models (RIGIDSCHEDULING, RESASCHEDULING,
  α-RESASCHEDULING) — :mod:`repro.core`;
* the paper's algorithms and the production policies it discusses (LSRC
  list scheduling, FCFS, conservative/EASY backfilling, shelf heuristics,
  an exact branch-and-bound) — :mod:`repro.algorithms`;
* the paper's theory as executable artifacts (Graham's bound and its
  continuous proof, the α bounds B1/B2/2α, the 3-PARTITION reduction, the
  adversarial instance families) — :mod:`repro.theory`;
* workload and reservation generators plus SWF trace I/O —
  :mod:`repro.workloads`;
* a discrete-event online cluster simulator — :mod:`repro.simulation`;
* the experiment layer: declarative JSON specs, a parallel resumable
  runner and name-addressable registries — :mod:`repro.run`;
* statistics and reporting — :mod:`repro.analysis`;
* Gantt/SVG rendering — :mod:`repro.viz`.

Quickstart::

    from repro import ReservationInstance, list_schedule

    inst = ReservationInstance.from_specs(
        m=4,
        job_specs=[(3, 2), (2, 1), (4, 2), (1, 4)],
        reservation_specs=[(2, 2, 2)],   # 2 processors blocked on [2, 4)
    )
    sched = list_schedule(inst)
    sched.verify()
    print(sched.makespan)
"""

from .core import (
    Job,
    ListProfile,
    ProfileBackend,
    Reservation,
    ReservationInstance,
    ResourceProfile,
    RigidInstance,
    Schedule,
    ScheduleMetrics,
    TreeProfile,
    area_bound,
    as_reservation_instance,
    available_backends,
    get_default_backend,
    left_shifted,
    lower_bound,
    make_jobs,
    make_profile,
    make_reservations,
    pmax_bound,
    ratio_to_lower_bound,
    register_backend,
    set_default_backend,
    summarize,
    work_bound,
)
from .errors import (
    AlphaViolationError,
    CapacityError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    ReproError,
    SchedulingError,
    SearchBudgetExceeded,
    TraceFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "Job",
    "Reservation",
    "RigidInstance",
    "ReservationInstance",
    "ResourceProfile",
    "ListProfile",
    "TreeProfile",
    "ProfileBackend",
    "available_backends",
    "register_backend",
    "set_default_backend",
    "get_default_backend",
    "make_profile",
    "Schedule",
    "ScheduleMetrics",
    "as_reservation_instance",
    "make_jobs",
    "make_reservations",
    "left_shifted",
    "summarize",
    # bounds
    "lower_bound",
    "work_bound",
    "area_bound",
    "pmax_bound",
    "ratio_to_lower_bound",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "AlphaViolationError",
    "InfeasibleScheduleError",
    "SchedulingError",
    "CapacityError",
    "SearchBudgetExceeded",
    "TraceFormatError",
    # algorithms (lazily resolved)
    "list_schedule",
    "fcfs_schedule",
    "conservative_backfill",
    "easy_backfill",
    "optimal_schedule",
    # experiment layer (lazily resolved)
    "ExperimentSpec",
    "WorkloadSpec",
    "Runner",
    "RunResult",
    "run_experiment",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid import cycles.
    if name in {
        "list_schedule",
        "fcfs_schedule",
        "conservative_backfill",
        "easy_backfill",
        "optimal_schedule",
    }:
        from . import algorithms

        return getattr(algorithms, name)
    if name in {
        "ExperimentSpec",
        "WorkloadSpec",
        "Runner",
        "RunResult",
        "run_experiment",
    }:
        from . import run

        return getattr(run, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
