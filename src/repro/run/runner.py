"""Grid execution: serial or process-parallel, resumable, deterministic.

The runner expands an :class:`~repro.run.spec.ExperimentSpec` into
:class:`ExperimentPoint` s in a fixed order (workload → grid combo →
profile backend → algorithm → seed), executes each point, and streams
one JSON-safe row per point to an optional
:class:`~repro.run.store.JsonlStore`.

Determinism
-----------
Every point carries a *derived seed* — a SHA-256 digest of its factor
values and base seed — so workload generation never depends on process
identity, execution order, or Python's per-process string-hash salt.
Rows are emitted in point order under both execution modes, which makes
serial and parallel runs of the same spec produce byte-identical JSONL
files (a test asserts this).

Resume
------
A point's ``key`` is a digest of its factor values.  When a store is
given, rows whose keys are already present are *skipped*, so re-running
a spec after a crash (or after appending new factor values) computes
only the missing points.
"""

from __future__ import annotations

import hashlib
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import InvalidInstanceError
from .spec import (
    DEFAULT_TIMEBASE,
    DEFAULT_UNCERTAINTY,
    ONLINE_PREFIX,
    SYNTH_TRACE_PREFIX,
    TRACE_WORKLOAD,
    ExperimentSpec,
    canonical_json,
    encode_value,
)
from .store import JsonlStore


# ---------------------------------------------------------------------------
# points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentPoint:
    """One fully-resolved grid cell."""

    index: int
    workload: str
    params: Mapping
    algorithm: str
    profile_backend: str
    seed: int
    metrics: Tuple[str, ...]
    timebase: str = DEFAULT_TIMEBASE
    uncertainty: str = DEFAULT_UNCERTAINTY

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))

    @property
    def factors(self) -> Dict:
        """The identity of the point — everything but index and metrics.

        The ``timebase`` factor joins the identity only when it differs
        from :data:`~repro.run.spec.DEFAULT_TIMEBASE`: the fast path is
        schedule-identical by construction, and every pre-timebase store
        row was computed under the default, so default-timebase keys must
        keep matching them on resume.  ``uncertainty`` follows the same
        rule: the default exact model is byte-identical to no model, so
        pre-uncertainty rows keep resuming.
        """
        factors = {
            "workload": self.workload,
            "params": self.params,
            "algorithm": self.algorithm,
            "profile_backend": self.profile_backend,
            "seed": self.seed,
        }
        if self.timebase != DEFAULT_TIMEBASE:
            factors["timebase"] = self.timebase
        if self.uncertainty != DEFAULT_UNCERTAINTY:
            factors["uncertainty"] = self.uncertainty
        return factors

    @property
    def key(self) -> str:
        """Stable digest of the factor values: the resume/store key."""
        digest = hashlib.sha256(canonical_json(self.factors).encode())
        return digest.hexdigest()[:16]

    @property
    def derived_seed(self) -> int:
        """Per-point RNG seed: stable across processes and spec edits that
        do not touch this point (unlike ``hash()``, which is salted)."""
        basis = canonical_json(
            {"workload": self.workload, "params": self.params,
             "seed": self.seed}
        )
        digest = hashlib.sha256(basis.encode()).digest()
        return int.from_bytes(digest[:4], "big") % (2**31)


def expand_points(spec: ExperimentSpec) -> Iterator[ExperimentPoint]:
    """The spec's grid cells, in the canonical deterministic order.

    Trace points come after workload points.  They cross with the
    algorithm/backend/seed factors like everything else, but pin the
    timebase factor (the replay engine's integer fast path is intrinsic)
    and carry their trace source in ``params["source"]`` under the
    reserved workload name :data:`~repro.run.spec.TRACE_WORKLOAD`.
    """
    index = 0
    for workload in spec.workloads:
        for params in workload.expand():
            for backend in spec.profile_backends:
                for timebase in spec.timebases:
                    for algorithm in spec.algorithms:
                        for seed in spec.seeds:
                            yield ExperimentPoint(
                                index=index,
                                workload=workload.name,
                                params=params,
                                algorithm=algorithm,
                                profile_backend=backend,
                                seed=seed,
                                metrics=spec.metrics,
                                timebase=timebase,
                            )
                            index += 1
    for trace in spec.traces:
        for backend in spec.profile_backends:
            for uncertainty in spec.uncertainties:
                for algorithm in spec.algorithms:
                    for seed in spec.seeds:
                        yield ExperimentPoint(
                            index=index,
                            workload=TRACE_WORKLOAD,
                            params={"source": trace.source, **trace.params},
                            algorithm=algorithm,
                            profile_backend=backend,
                            seed=seed,
                            metrics=spec.metrics,
                            uncertainty=uncertainty,
                        )
                        index += 1


def _execute_trace_point(point: ExperimentPoint) -> Dict:
    """Replay a trace grid cell; returns ``{metric: value}``.

    Synthetic sources are seeded with the point's derived seed; file
    sources are deterministic (the seed factor only names the row).
    """
    from ..simulation.replay import ReplayEngine, replay_swf
    from ..workloads.swf import synth_swf_jobs
    from ..workloads.uncertainty import parse_uncertainty

    params = dict(point.params)
    source = params.pop("source")
    policy = point.algorithm[len(ONLINE_PREFIX):]
    kwargs = dict(
        policy=policy,
        profile_backend=point.profile_backend,
        window=params.pop("window", 10_000),
    )
    if point.uncertainty != DEFAULT_UNCERTAINTY:
        # the model draws from the point's derived seed unless the spec
        # string pins seed= itself — every grid cell gets its own world
        kwargs["uncertainty"] = parse_uncertainty(
            point.uncertainty, default_seed=point.derived_seed
        )
    if source.startswith(SYNTH_TRACE_PREFIX):
        profile = source[len(SYNTH_TRACE_PREFIX):]
        m = params.pop("m", 256)
        n = params.pop("n", 10_000)
        max_jobs = params.pop("max_jobs", None)
        if max_jobs is not None:  # same truncation semantics as the CLI
            n = min(n, max_jobs)
        engine = ReplayEngine(m, **kwargs)
        result = engine.run(
            synth_swf_jobs(profile, n, m=m, seed=point.derived_seed)
        )
    else:
        result = replay_swf(
            source,
            m=params.pop("m", None),
            max_jobs=params.pop("max_jobs", None),
            **kwargs,
        )
    missing = [name for name in point.metrics if name not in result.totals]
    if missing:
        raise InvalidInstanceError(
            f"metric(s) {missing} are not in the replay totals for this "
            f"point; distributional/event metrics require a stochastic "
            f"uncertainty factor (this point ran {point.uncertainty!r})"
        )
    return {name: result.totals[name] for name in point.metrics}


def execute_point(point: ExperimentPoint) -> Dict:
    """Run one grid cell and return its JSON-safe result row.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; workers re-import the registries, so only workloads,
    algorithms and metrics registered at import time are addressable in
    parallel mode.
    """
    from ..algorithms.base import get_scheduler
    from ..core.metrics import evaluate_metrics
    from ..core.profiles import get_default_backend_name, set_default_backend
    from ..simulation.online_sim import simulate
    from ..workloads.registry import make_workload

    if point.workload == TRACE_WORKLOAD:
        values = _execute_trace_point(point)
        row = {
            "key": point.key,
            "workload": point.workload,
            "params": encode_value(point.params),
            "algorithm": point.algorithm,
            "profile_backend": point.profile_backend,
            "seed": point.seed,
            "derived_seed": point.derived_seed,
            "timebase": point.timebase,
            "uncertainty": point.uncertainty,
        }
        for name, value in values.items():
            row[name] = encode_value(value)
        return row

    instance = make_workload(
        point.workload, seed=point.derived_seed, **point.params
    )
    previous_backend = get_default_backend_name()
    set_default_backend(point.profile_backend)
    try:
        if point.algorithm.startswith(ONLINE_PREFIX):
            policy = point.algorithm[len(ONLINE_PREFIX):]
            schedule = simulate(
                instance, policy, profile_backend=point.profile_backend,
                timebase=point.timebase,
            ).schedule
        else:
            scheduler = get_scheduler(point.algorithm)
            if hasattr(scheduler, "timebase"):
                scheduler.timebase = point.timebase
            elif point.timebase != DEFAULT_TIMEBASE:
                import warnings

                warnings.warn(
                    f"scheduler {point.algorithm!r} has no timebase knob; "
                    f"the timebase={point.timebase!r} grid cell runs the "
                    "scheduler's only engine (row label is aspirational)",
                    stacklevel=2,
                )
            schedule = scheduler.schedule(instance)
        values = evaluate_metrics(schedule, point.metrics)
    finally:
        set_default_backend(previous_backend)
    row = {
        "key": point.key,
        "workload": point.workload,
        "params": encode_value(point.params),
        "algorithm": point.algorithm,
        "profile_backend": point.profile_backend,
        "seed": point.seed,
        "derived_seed": point.derived_seed,
        "timebase": point.timebase,
    }
    for name, value in values.items():
        row[name] = encode_value(value)
    return row


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass
class RunResult:
    """All rows of one grid execution, with provenance."""

    spec: ExperimentSpec
    rows: List[Dict] = field(default_factory=list)
    computed: int = 0       #: points executed this run
    skipped: int = 0        #: points resumed from the store
    elapsed_seconds: float = 0.0
    store_path: Optional[str] = None

    def column(self, name: str) -> List:
        return [row[name] for row in self.rows]

    def filtered(self, **conditions) -> List[Dict]:
        """Rows matching all ``column=value`` conditions (params included:
        a condition key absent from the row is looked up in ``params``).
        Values are decoded before comparison, so Fraction-valued grid
        parameters match ``filtered(alpha=Fraction(1, 2))`` — and, since
        Fractions equal their float value, ``filtered(alpha=0.5)``."""
        from .spec import decode_value

        out = []
        for row in self.rows:
            params = row.get("params", {})
            if all(
                decode_value(row[k] if k in row else params.get(k)) == v
                for k, v in conditions.items()
            ):
                out.append(row)
        return out


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

class Runner:
    """Executes specs serially or on a process pool.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs in-process, which is
        also the mode that can address workloads/metrics registered at
        runtime (worker processes only see import-time registrations).
    store:
        Optional JSONL path.  Rows stream to it as they are computed and
        existing rows are *skipped by key* on re-runs (resume).
    progress:
        Optional ``callable(done, total, row)`` invoked after every
        computed point — the CLI uses it for a live counter.
    """

    def __init__(
        self,
        jobs: int = 1,
        store=None,
        progress: Optional[Callable[[int, int, Dict], None]] = None,
    ):
        if jobs < 1:
            raise InvalidInstanceError("jobs must be >= 1")
        self.jobs = jobs
        self.store = JsonlStore(store) if store is not None else None
        self.progress = progress

    def run(self, spec: ExperimentSpec, resume: bool = True) -> RunResult:
        """Execute the spec's grid; returns every row of the grid (both
        freshly computed and resumed), in canonical point order.

        ``resume=False`` truncates the store first, so the file never
        accumulates duplicate rows per key."""
        spec.validate()
        started = _time.perf_counter()
        points = list(expand_points(spec))

        rows_by_key: Dict[str, Dict] = {}
        if self.store is not None:
            if resume:
                for row in self.store.load():
                    if "key" in row:
                        rows_by_key[row["key"]] = row
            else:
                self.store.delete()

        def satisfies(point: ExperimentPoint) -> bool:
            # a stored row only stands in for the point if it carries every
            # requested metric — a spec that grew a metric recomputes
            row = rows_by_key.get(point.key)
            return row is not None and all(m in row for m in point.metrics)

        skipped = sum(1 for point in points if satisfies(point))
        todo: List[ExperimentPoint] = []
        seen = set()
        for point in points:
            if not satisfies(point) and point.key not in seen:
                seen.add(point.key)
                todo.append(point)

        done = 0
        for row in self._execute(todo):
            rows_by_key[row["key"]] = row
            if self.store is not None:
                self.store.append(row)
            done += 1
            if self.progress is not None:
                self.progress(done, len(todo), row)

        return RunResult(
            spec=spec,
            rows=[rows_by_key[p.key] for p in points],
            computed=len(todo),
            skipped=skipped,
            elapsed_seconds=_time.perf_counter() - started,
            store_path=self.store.path if self.store is not None else None,
        )

    def _execute(self, todo: List[ExperimentPoint]) -> Iterator[Dict]:
        if not todo:
            return
        if self.jobs == 1:
            for point in todo:
                yield execute_point(point)
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(todo))) as pool:
            # map() preserves submission order, so rows stream to the
            # store in canonical point order — identical to a serial run.
            yield from pool.map(execute_point, todo)


def run_experiment(
    spec: ExperimentSpec,
    jobs: int = 1,
    store=None,
    resume: bool = True,
) -> RunResult:
    """Convenience one-call façade over :class:`Runner`."""
    return Runner(jobs=jobs, store=store).run(spec, resume=resume)
