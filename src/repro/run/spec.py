"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a *factor grid* — algorithms (registry
names, with ``"online:<policy>"`` addressing the simulation policies),
workloads (registry name + parameters, with an optional per-parameter
value grid), profile backends (any registered name: ``"list"``,
``"tree"``, ``"array"``, ...), seeds and metric extractors — and
round-trips to JSON (format ``repro-spec/1``) so an experiment is a
durable artifact like instances and schedules, not a script.

The grid semantics mirror the paper's evaluation: every figure is an
algorithm × workload × α × seed sweep of makespan ratios, and the spec
is exactly that cross product, written down once and executed by
:class:`repro.run.Runner`.

>>> spec = ExperimentSpec(
...     name="demo",
...     algorithms=("lsrc", "online:easy"),
...     workloads=(WorkloadSpec("alpha-uniform", params={"n": 12, "m": 16},
...                             grid={"alpha": [0.25, 0.5]}),),
...     seeds=(0, 1),
...     metrics=("makespan", "ratio_lb"),
... )
>>> spec == loads_spec(dumps_spec(spec))
True
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from ..core.serialize import SPEC_FORMAT, _decode_number, _encode_number
from ..errors import InvalidInstanceError, TraceFormatError

#: Row fields the runner owns; metric names must not shadow them.
RESERVED_ROW_FIELDS = frozenset(
    {"key", "workload", "params", "algorithm", "profile_backend",
     "seed", "derived_seed", "timebase", "uncertainty"}
)

#: The timebase factor value every pre-existing row implicitly ran
#: under; points using it omit the factor from their key so old stores
#: keep resuming.
DEFAULT_TIMEBASE = "auto"

#: The uncertainty factor value every pre-existing row implicitly ran
#: under (the degenerate exact model); points using it omit the factor
#: from their key so old stores keep resuming.
DEFAULT_UNCERTAINTY = "exact"

#: Prefix routing an "algorithm" entry to the online-policy registry.
ONLINE_PREFIX = "online:"

#: Reserved ``workload`` value marking a trace-replay grid point (the
#: rolling-horizon engine instead of a registered generator).
TRACE_WORKLOAD = "trace"

#: Prefix selecting a synthetic scenario-pack trace as a replay source.
SYNTH_TRACE_PREFIX = "synth:"

#: Parameters a :class:`TraceSpec` accepts (anything else is a typo).
TRACE_PARAMS = frozenset({"m", "n", "max_jobs", "window"})


# ---------------------------------------------------------------------------
# JSON value encoding (numbers via the repro.core.serialize conventions)
# ---------------------------------------------------------------------------

def encode_value(value):
    """Encode a parameter value losslessly for JSON.

    Fractions become ``{"num": ..., "den": ...}`` (the
    :mod:`repro.core.serialize` convention); tuples become lists; dicts
    and lists recurse.  Anything else must already be a JSON scalar.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, Fraction):
        return _encode_number(value)
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): encode_value(v) for k, v in value.items()}
    raise TraceFormatError(f"cannot encode spec value {value!r}")


def decode_value(value):
    """Inverse of :func:`encode_value` (``{"num", "den"}`` → Fraction)."""
    if isinstance(value, Mapping):
        if set(value) == {"num", "den"}:
            return _decode_number(dict(value))
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def canonical_json(value) -> str:
    """Deterministic JSON text (sorted keys, no whitespace) used for
    point keys and derived seeds — stable across processes and runs."""
    return json.dumps(encode_value(value), sort_keys=True,
                      separators=(",", ":"))


def iter_grid(factors: Mapping[str, Sequence]) -> Iterator[Dict]:
    """Cartesian product of ``{factor: values}`` in declaration order."""
    names = list(factors)
    if not names:
        yield {}
        return
    for combo in itertools.product(*(list(factors[k]) for k in names)):
        yield dict(zip(names, combo))


# ---------------------------------------------------------------------------
# workload spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """One workload family of the grid.

    ``params`` are fixed keyword arguments for the registered generator;
    ``grid`` maps parameter names to value lists that are expanded as
    factors (so ``grid={"alpha": [0.25, 0.5]}`` contributes two grid
    columns per seed/algorithm/backend combination).
    """

    name: str
    params: Mapping = field(default_factory=dict)
    grid: Mapping[str, Sequence] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(
            self, "grid", {k: list(v) for k, v in dict(self.grid).items()}
        )
        overlap = set(self.params) & set(self.grid)
        if overlap:
            raise InvalidInstanceError(
                f"workload {self.name!r} lists {sorted(overlap)} in both "
                f"params and grid"
            )
        for param, values in self.grid.items():
            if len({canonical_json(v) for v in values}) != len(values):
                raise InvalidInstanceError(
                    f"workload {self.name!r} grid {param!r} repeats a value"
                )

    def expand(self) -> Iterator[Dict]:
        """Concrete parameter dicts, one per grid combination."""
        for combo in iter_grid(self.grid):
            yield {**self.params, **combo}

    def to_dict(self) -> Dict:
        out: Dict = {"name": self.name}
        if self.params:
            out["params"] = encode_value(self.params)
        if self.grid:
            out["grid"] = encode_value(self.grid)
        return out

    @classmethod
    def from_dict(cls, data) -> "WorkloadSpec":
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, Mapping) or "name" not in data:
            raise TraceFormatError(
                f"workload entry must be a name or an object with a "
                f"'name' field, got {data!r}"
            )
        unknown = sorted(set(data) - {"name", "params", "grid"})
        if unknown:
            raise TraceFormatError(
                f"unknown workload field(s) {unknown}; known fields: "
                f"['grid', 'name', 'params']"
            )
        return cls(
            name=data["name"],
            params=decode_value(data.get("params", {})),
            grid=decode_value(data.get("grid", {})),
        )


# ---------------------------------------------------------------------------
# trace spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceSpec:
    """One replay trace of the grid's ``traces`` factor.

    ``source`` is an SWF path (``.swf`` / ``.swf.gz``) streamed through
    :func:`repro.simulation.replay.replay_swf`, or ``synth:<profile>``
    naming the deterministic scenario pack
    (:func:`repro.workloads.swf.synth_swf_jobs`, seeded per point).
    ``params`` tune the replay: ``m`` (machine size), ``n`` (synthetic
    trace length), ``max_jobs`` (file truncation) and ``window``
    (metrics window).  Trace points cross with the ``algorithms``
    (online policies only), ``profile_backends`` and ``seeds`` factors;
    file traces are deterministic, so give them ``seeds=[0]``.
    """

    source: str
    params: Mapping = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))
        unknown = sorted(set(self.params) - TRACE_PARAMS)
        if unknown:
            raise InvalidInstanceError(
                f"trace {self.source!r} has unknown parameter(s) {unknown}; "
                f"known parameters: {sorted(TRACE_PARAMS)}"
            )

    def to_dict(self) -> Dict:
        out: Dict = {"source": self.source}
        if self.params:
            out["params"] = encode_value(self.params)
        return out

    @classmethod
    def from_dict(cls, data) -> "TraceSpec":
        if isinstance(data, str):
            return cls(source=data)
        if not isinstance(data, Mapping) or "source" not in data:
            raise TraceFormatError(
                f"trace entry must be a path/synth name or an object with "
                f"a 'source' field, got {data!r}"
            )
        unknown = sorted(set(data) - {"source", "params"})
        if unknown:
            raise TraceFormatError(
                f"unknown trace field(s) {unknown}; known fields: "
                f"['params', 'source']"
            )
        return cls(
            source=data["source"],
            params=decode_value(data.get("params", {})),
        )


# ---------------------------------------------------------------------------
# experiment spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative factor grid: the unit of work of :mod:`repro.run`."""

    name: str
    algorithms: Tuple[str, ...]
    workloads: Tuple[WorkloadSpec, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    metrics: Tuple[str, ...] = ("makespan", "ratio_lb")
    profile_backends: Tuple[str, ...] = ("list",)
    timebases: Tuple[str, ...] = (DEFAULT_TIMEBASE,)
    traces: Tuple[TraceSpec, ...] = ()
    #: uncertainty-model spec strings, a trace-replay-only factor: each
    #: trace point runs once per entry, with the point's derived seed
    #: unless the entry pins ``seed=`` itself.
    uncertainties: Tuple[str, ...] = (DEFAULT_UNCERTAINTY,)

    def __post_init__(self):
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(
            self,
            "workloads",
            tuple(
                w if isinstance(w, WorkloadSpec) else WorkloadSpec.from_dict(w)
                for w in self.workloads
            ),
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(
            self, "profile_backends", tuple(self.profile_backends)
        )
        object.__setattr__(self, "timebases", tuple(self.timebases))
        object.__setattr__(
            self, "uncertainties", tuple(self.uncertainties)
        )
        object.__setattr__(
            self,
            "traces",
            tuple(
                t if isinstance(t, TraceSpec) else TraceSpec.from_dict(t)
                for t in self.traces
            ),
        )
        if not self.workloads and not self.traces:
            raise InvalidInstanceError(
                "spec needs at least one workload or trace"
            )
        if self.uncertainties != (DEFAULT_UNCERTAINTY,) and not self.traces:
            raise InvalidInstanceError(
                "the uncertainties factor applies to trace replay points "
                "only; add traces or drop it"
            )
        for label, values in [
            ("algorithms", self.algorithms),
            ("seeds", self.seeds),
            ("metrics", self.metrics),
            ("profile_backends", self.profile_backends),
            ("timebases", self.timebases),
            ("uncertainties", self.uncertainties),
        ]:
            if not values:
                raise InvalidInstanceError(f"spec needs at least one of {label}")
        # duplicate factor values are almost certainly typos, and they
        # would break the computed+skipped==rows accounting of the runner
        for label, values in [
            ("algorithms", self.algorithms),
            ("seeds", self.seeds),
            ("metrics", self.metrics),
            ("profile_backends", self.profile_backends),
            ("timebases", self.timebases),
            ("uncertainties", self.uncertainties),
            ("workloads", tuple(
                canonical_json(w.to_dict()) for w in self.workloads
            )),
            ("traces", tuple(
                canonical_json(t.to_dict()) for t in self.traces
            )),
        ]:
            if len(set(values)) != len(values):
                raise InvalidInstanceError(f"spec repeats a value in {label}")

    @property
    def n_points(self) -> int:
        """Grid size (number of result rows a full run produces)."""
        per_workload = sum(
            max(1, len(list(w.expand()))) for w in self.workloads
        )
        # trace points pin the timebase factor (replay's fast path is
        # intrinsic) but cross with the uncertainties factor; workload
        # points are the mirror image (timebases yes, uncertainty no)
        return (
            per_workload
            * len(self.algorithms)
            * len(self.seeds)
            * len(self.profile_backends)
            * len(self.timebases)
        ) + (
            len(self.traces)
            * len(self.algorithms)
            * len(self.seeds)
            * len(self.profile_backends)
            * len(self.uncertainties)
        )

    def validate(self) -> None:
        """Resolve every name against its registry — loud, early errors
        instead of a grid that dies on point 37."""
        from ..algorithms.base import SCHEDULERS
        from ..core.metrics import METRICS
        from ..core.profiles import resolve_backend
        from ..core.timebase import check_timebase_policy
        from ..simulation.online_sim import POLICIES
        from ..workloads.registry import WORKLOADS

        for algo in self.algorithms:
            if algo.startswith(ONLINE_PREFIX):
                POLICIES.get(algo[len(ONLINE_PREFIX):])
            else:
                SCHEDULERS.get(algo)
        for workload in self.workloads:
            WORKLOADS.get(workload.name)
        for metric in self.metrics:
            if metric in RESERVED_ROW_FIELDS:
                raise InvalidInstanceError(
                    f"metric name {metric!r} shadows a reserved row field"
                )
            if self.workloads:
                # trace-only specs may use replay-only metric names
                # (requeues, kills, ...) that have no schedule extractor;
                # _validate_traces checks those against the replay fields
                METRICS.get(metric)
        for backend in self.profile_backends:
            resolve_backend(backend)
        for timebase in self.timebases:
            check_timebase_policy(timebase)
        from ..workloads.uncertainty import parse_uncertainty

        for uncertainty in self.uncertainties:
            parse_uncertainty(uncertainty)
        if self.traces:
            self._validate_traces()

    def _validate_traces(self) -> None:
        import os

        from ..simulation.replay import REPLAY_METRIC_FIELDS
        from ..workloads.swf import SYNTH_PROFILES

        for algo in self.algorithms:
            if not algo.startswith(ONLINE_PREFIX):
                raise InvalidInstanceError(
                    f"trace replay runs online policies only; algorithm "
                    f"{algo!r} is offline — use 'online:<policy>' or move "
                    f"the traces to their own spec"
                )
        for metric in self.metrics:
            if metric not in REPLAY_METRIC_FIELDS:
                raise InvalidInstanceError(
                    f"metric {metric!r} is not produced by trace replay; "
                    f"replay metrics: {sorted(REPLAY_METRIC_FIELDS)}"
                )
        if self.timebases != (DEFAULT_TIMEBASE,):
            raise InvalidInstanceError(
                "trace replay pins the timebase factor (its integer fast "
                "path is intrinsic); use the default timebases with traces"
            )
        for trace in self.traces:
            if trace.source.startswith(SYNTH_TRACE_PREFIX):
                profile = trace.source[len(SYNTH_TRACE_PREFIX):]
                if profile not in SYNTH_PROFILES:
                    raise InvalidInstanceError(
                        f"unknown synthetic trace profile {profile!r}; "
                        f"known profiles: {', '.join(SYNTH_PROFILES)}"
                    )
            elif not os.path.exists(trace.source):
                raise InvalidInstanceError(
                    f"trace file {trace.source!r} does not exist"
                )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        out = {
            "format": SPEC_FORMAT,
            "name": self.name,
            "algorithms": list(self.algorithms),
            "workloads": [w.to_dict() for w in self.workloads],
            "seeds": list(self.seeds),
            "metrics": list(self.metrics),
            "profile_backends": list(self.profile_backends),
            "timebases": list(self.timebases),
        }
        if self.traces:
            out["traces"] = [t.to_dict() for t in self.traces]
        if self.uncertainties != (DEFAULT_UNCERTAINTY,):
            out["uncertainties"] = list(self.uncertainties)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise TraceFormatError("spec document must be a JSON object")
        if data.get("format") != SPEC_FORMAT:
            raise TraceFormatError(
                f"unsupported spec format {data.get('format')!r}; "
                f"expected {SPEC_FORMAT!r}"
            )
        known = {"format", "name", "algorithms", "workloads", "seeds",
                 "repeats", "metrics", "profile_backends", "timebases",
                 "traces", "uncertainties"}
        unknown = sorted(set(data) - known)
        if unknown:
            # a typo ("seed" for "seeds") must not silently shrink a grid
            raise TraceFormatError(
                f"unknown spec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        if "seeds" in data and "repeats" in data:
            raise TraceFormatError("give either 'seeds' or 'repeats', not both")
        if "repeats" in data:
            repeats = int(data["repeats"])
            if repeats < 1:
                raise TraceFormatError("repeats must be >= 1")
            seeds: Sequence[int] = range(repeats)
        else:
            seeds = data.get("seeds", (0,))
        try:
            return cls(
                name=data.get("name", "experiment"),
                algorithms=data["algorithms"],
                workloads=[
                    WorkloadSpec.from_dict(w)
                    for w in data.get("workloads", [])
                ],
                seeds=seeds,
                metrics=data.get("metrics", ("makespan", "ratio_lb")),
                profile_backends=data.get("profile_backends", ("list",)),
                timebases=data.get("timebases", (DEFAULT_TIMEBASE,)),
                traces=[
                    TraceSpec.from_dict(t) for t in data.get("traces", [])
                ],
                uncertainties=data.get(
                    "uncertainties", (DEFAULT_UNCERTAINTY,)
                ),
            )
        except KeyError as exc:
            raise TraceFormatError(
                f"spec document is missing field {exc}"
            ) from exc


def dumps_spec(spec: ExperimentSpec, indent: int = 2) -> str:
    """Spec → JSON text."""
    return json.dumps(spec.to_dict(), indent=indent)


def loads_spec(text: str) -> ExperimentSpec:
    """JSON text → spec."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON: {exc}") from exc
    return ExperimentSpec.from_dict(data)


def save_spec(spec: ExperimentSpec, path: str) -> str:
    """Write a spec JSON file atomically; returns the path."""
    from ..durability.atomic import atomic_write_text

    atomic_write_text(path, dumps_spec(spec))
    return path


def load_spec(path: str) -> ExperimentSpec:
    """Read a spec JSON file."""
    with open(path) as fh:
        return loads_spec(fh.read())
