"""The experiment layer: declarative specs, a parallel runner, durable rows.

The paper's results are grids — algorithm × workload × α × seed sweeps
of makespan ratios — and this package makes a grid a first-class, durable
object instead of a script:

* :class:`ExperimentSpec` (:mod:`repro.run.spec`) declares the factor
  grid by *registry names*: algorithms
  (:data:`repro.algorithms.base.SCHEDULERS`, with ``"online:<policy>"``
  routed to :data:`repro.simulation.POLICIES`), workloads
  (:data:`repro.workloads.WORKLOADS`) and metric extractors
  (:data:`repro.core.METRICS`).  Specs round-trip to JSON
  (``repro-spec/1``) via :mod:`repro.core.serialize`.
* :class:`Runner` (:mod:`repro.run.runner`) executes the grid serially
  or on a :class:`~concurrent.futures.ProcessPoolExecutor` with
  per-point derived seeds, streaming rows to a JSONL store
  (:mod:`repro.run.store`) and *resuming* past completed points by key.
* :mod:`repro.run.presets` holds the built-in paper grid.

Quickstart::

    from repro.run import ExperimentSpec, WorkloadSpec, Runner

    spec = ExperimentSpec(
        name="alpha-sweep",
        algorithms=["lsrc", "backfill-cons", "online:easy"],
        workloads=[WorkloadSpec("alpha-uniform",
                                params={"n": 30, "m": 64},
                                grid={"alpha": [0.25, 0.5, 0.75]})],
        seeds=range(10),
        metrics=["makespan", "ratio_lb"],
    )
    result = Runner(jobs=4, store="alpha-sweep.jsonl").run(spec)
    lsrc = result.filtered(algorithm="lsrc")

The same spec runs from the command line: ``repro run spec.json --jobs 4``.
"""

from .presets import (
    PAPER_GRID_ALGORITHMS,
    PAPER_GRID_ALPHAS,
    mean_metric_series,
    paper_grid_spec,
    summary_rows,
)
from .runner import (
    ExperimentPoint,
    RunResult,
    Runner,
    execute_point,
    expand_points,
    run_experiment,
)
from .spec import (
    ONLINE_PREFIX,
    SPEC_FORMAT,
    SYNTH_TRACE_PREFIX,
    TRACE_WORKLOAD,
    ExperimentSpec,
    TraceSpec,
    WorkloadSpec,
    decode_value,
    dumps_spec,
    encode_value,
    iter_grid,
    load_spec,
    loads_spec,
    save_spec,
)
from .store import JsonlStore

__all__ = [
    "ExperimentSpec",
    "WorkloadSpec",
    "TraceSpec",
    "TRACE_WORKLOAD",
    "SYNTH_TRACE_PREFIX",
    "Runner",
    "RunResult",
    "ExperimentPoint",
    "run_experiment",
    "expand_points",
    "execute_point",
    "JsonlStore",
    "SPEC_FORMAT",
    "ONLINE_PREFIX",
    "iter_grid",
    "encode_value",
    "decode_value",
    "dumps_spec",
    "loads_spec",
    "save_spec",
    "load_spec",
    "paper_grid_spec",
    "PAPER_GRID_ALGORITHMS",
    "PAPER_GRID_ALPHAS",
    "mean_metric_series",
    "summary_rows",
]
