"""Append-only JSONL result store with resume support.

One line per result row, written with sorted keys and compact floats so
that two runs computing the same grid produce byte-identical files —
the property the serial-vs-parallel determinism test pins down.

A store survives killed runs: rows are flushed per line, and a torn
final line (the signature of a mid-write crash) is *repaired* on load —
the partial line is truncated away (or its missing newline restored)
with a warning, so the next append starts a fresh line instead of
concatenating onto the wreckage.  Mid-file damage is only skipped, never
truncated: truncating there would discard the good rows after it.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, List, Optional, Set

from ..devtools.failpoints import fire


class JsonlStore:
    """A ``.jsonl`` file of result rows keyed by ``row["key"]``."""

    def __init__(self, path):
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> List[Dict]:
        """All parseable rows, in file order, repairing a torn tail.

        A torn trailing line — the signature of a mid-write crash — is
        truncated off the file with a warning so the store is again a
        clean sequence of newline-terminated rows; a trailing row whose
        newline alone went missing gets it restored (a JSON object only
        parses at its final brace, so a parseable unterminated tail is
        the complete row).  Mid-file lines that fail to parse are
        skipped with a warning but left in place: one bad line must not
        discard an otherwise resumable store.
        """
        if not self.exists():
            return []
        with open(self.path, "rb") as fh:
            data = fh.read()
        rows: List[Dict] = []
        lines = data.splitlines(keepends=True)
        offset = 0
        for lineno, raw in enumerate(lines, 1):
            last = lineno == len(lines)
            stripped = raw.strip()
            if stripped:
                row: Optional[Dict] = None
                try:
                    parsed = json.loads(stripped.decode("utf-8"))
                    if isinstance(parsed, dict):
                        row = parsed
                except (UnicodeDecodeError, ValueError):
                    row = None
                if row is None:
                    if last:
                        warnings.warn(
                            f"{self.path}:{lineno}: truncating torn "
                            "trailing row (interrupted run); resuming "
                            "from the intact prefix"
                        )
                        os.truncate(self.path, offset)
                    else:
                        warnings.warn(
                            f"{self.path}:{lineno}: skipping unparseable "
                            "row (torn write from an interrupted run?)"
                        )
                else:
                    if last and not raw.endswith(b"\n"):
                        warnings.warn(
                            f"{self.path}:{lineno}: restoring missing "
                            "newline on trailing row (interrupted run)"
                        )
                        with open(self.path, "a") as fh:
                            fh.write("\n")
                    rows.append(row)
            offset += len(raw)
        return rows

    def keys(self) -> Set[str]:
        """The ``key`` values present in the store."""
        return {row["key"] for row in self.load() if "key" in row}

    def append(self, row: Dict) -> None:
        """Append one row (sorted keys, one line) and flush."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fire("store.append")
        with open(self.path, "a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()

    def delete(self) -> None:
        """Remove the backing file if present."""
        if self.exists():
            os.remove(self.path)

    def __repr__(self) -> str:
        return f"<JsonlStore {self.path!r}>"
