"""Append-only JSONL result store with resume support.

One line per result row, written with sorted keys and compact floats so
that two runs computing the same grid produce byte-identical files —
the property the serial-vs-parallel determinism test pins down.

A store survives killed runs: rows are flushed per line, and a torn
final line (the signature of a mid-write crash) is skipped with a
warning on load instead of poisoning the resume.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, List, Set


class JsonlStore:
    """A ``.jsonl`` file of result rows keyed by ``row["key"]``."""

    def __init__(self, path):
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> List[Dict]:
        """All parseable rows, in file order.

        Lines that fail to parse are skipped with a warning: a torn tail
        line is expected after a killed run, and one bad line must not
        discard an otherwise resumable store.
        """
        if not self.exists():
            return []
        rows: List[Dict] = []
        with open(self.path) as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping unparseable row "
                        f"(torn write from an interrupted run?)"
                    )
                    continue
                if isinstance(row, dict):
                    rows.append(row)
        return rows

    def keys(self) -> Set[str]:
        """The ``key`` values present in the store."""
        return {row["key"] for row in self.load() if "key" in row}

    def append(self, row: Dict) -> None:
        """Append one row (sorted keys, one line) and flush."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()

    def delete(self) -> None:
        """Remove the backing file if present."""
        if self.exists():
            os.remove(self.path)

    def __repr__(self) -> str:
        return f"<JsonlStore {self.path!r}>"
