"""Built-in experiment specs and small result-shaping helpers.

:func:`paper_grid_spec` is the canonical grid of the paper's empirical
story — algorithm × α × seed over α-RESASCHEDULING workloads, reporting
makespan ratios against the certified lower bound.  ``repro figure 4
--empirical`` overlays its measured curves on the theoretical bounds,
and ``examples/paper_grid.json`` is this spec serialized.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import RunResult
from .spec import ExperimentSpec, WorkloadSpec, decode_value

#: Algorithms of the default paper grid: the paper's LSRC (with its LPT
#: variant), the production backfilling policies, and online LSRC.
PAPER_GRID_ALGORITHMS = (
    "lsrc",
    "lsrc-lpt",
    "backfill-cons",
    "online:greedy",
)

PAPER_GRID_ALPHAS = (0.25, 0.5, 0.75)


def paper_grid_spec(
    alphas: Sequence = PAPER_GRID_ALPHAS,
    algorithms: Sequence[str] = PAPER_GRID_ALGORITHMS,
    n: int = 24,
    m: int = 32,
    seeds: Sequence[int] = range(5),
    metrics: Sequence[str] = ("makespan", "lower_bound", "ratio_lb"),
    profile_backends: Sequence[str] = ("list",),
    name: str = "paper-grid",
) -> ExperimentSpec:
    """The algorithm × α × seed makespan-ratio grid of the paper."""
    return ExperimentSpec(
        name=name,
        algorithms=tuple(algorithms),
        workloads=(
            WorkloadSpec(
                "alpha-uniform",
                params={"n": n, "m": m, "reservations": 6, "horizon": 150.0},
                grid={"alpha": list(alphas)},
            ),
        ),
        seeds=tuple(seeds),
        metrics=tuple(metrics),
        profile_backends=tuple(profile_backends),
    )


def mean_metric_series(
    result: RunResult,
    metric: str,
    x_param: str = "alpha",
    algorithm: Optional[str] = None,
) -> List[Tuple[float, float]]:
    """``(x, mean(metric))`` pairs grouped by a workload parameter.

    Used by the figure overlay: for each distinct ``x_param`` value in
    the rows (optionally restricted to one algorithm), average the
    metric over seeds/workloads.
    """
    groups: Dict[float, List[float]] = {}
    for row in result.rows:
        if algorithm is not None and row.get("algorithm") != algorithm:
            continue
        params = row.get("params", {})
        if x_param not in params:
            continue
        x = float(decode_value(params[x_param]))
        groups.setdefault(x, []).append(float(decode_value(row[metric])))
    return sorted((x, mean(values)) for x, values in groups.items())


def summary_rows(result: RunResult, metric: str = "ratio_lb") -> List[Dict]:
    """Per-algorithm aggregate table rows (mean/max of one metric)."""
    groups: Dict[str, List[float]] = {}
    for row in result.rows:
        if metric in row:
            groups.setdefault(row["algorithm"], []).append(
                float(decode_value(row[metric]))
            )
    return [
        {
            "algorithm": algorithm,
            "n": len(values),
            f"mean_{metric}": round(mean(values), 4),
            f"max_{metric}": round(max(values), 4),
        }
        for algorithm, values in sorted(groups.items())
    ]
