"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class.  The hierarchy distinguishes *model* errors
(instances that are malformed or infeasible) from *algorithmic* errors
(schedulers failing or exceeding their search budget) and *verification*
errors (produced schedules that violate the model constraints).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidInstanceError(ReproError, ValueError):
    """A job, reservation, or instance violates basic model constraints.

    Examples: non-positive processing time, a job requiring more than ``m``
    processors, a reservation with a negative start time.
    """


class InfeasibleInstanceError(InvalidInstanceError):
    """The reservations of an instance cannot coexist on ``m`` machines.

    The paper only considers *feasible* instances, i.e. those whose
    unavailability function satisfies ``U(t) <= m`` for all ``t``
    (Section 3.1).  This error signals a violation.
    """


class AlphaViolationError(InvalidInstanceError):
    """An instance does not satisfy the alpha-RESASCHEDULING restrictions.

    The restricted problem of Section 4.2 requires ``U(t) <= (1 - alpha) m``
    at every time and ``q_i <= alpha m`` for every job.
    """


class InfeasibleScheduleError(ReproError):
    """A schedule violates the resource constraint or the model rules.

    Raised by :meth:`repro.core.schedule.Schedule.verify` with a list of
    human-readable violation descriptions attached as ``violations``.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        #: Detailed description of each constraint violation found.
        self.violations: list[str] = violations or []


class SchedulingError(ReproError):
    """A scheduler could not produce a schedule for a (feasible) instance."""


class CapacityError(SchedulingError):
    """A profile reservation request exceeds the available capacity."""


class SearchBudgetExceeded(SchedulingError):
    """An exact solver exhausted its node or time budget.

    The partially-explored incumbent, if any, is attached as ``incumbent``.
    """

    def __init__(self, message: str, incumbent=None):
        super().__init__(message)
        #: Best (possibly non-optimal) solution found before the budget ran out.
        self.incumbent = incumbent


class ReplayRelayError(SchedulingError):
    """The epoch-checkpoint relay between sharded replay workers broke.

    Raised by a successor epoch when its predecessor published a
    structured failure record, stopped heartbeating (died without
    publishing anything), or exceeded the relay's bounded wait.  The
    self-healing orchestrator catches it, retries the failed epoch, and
    degrades to serial re-execution before giving up.
    """


class JournalError(ReproError):
    """A replay journal directory cannot be used as requested.

    Examples: creating a journal in a non-empty directory, resuming
    from a directory with no journal, or resuming with an engine
    configuration that does not match the journal's recorded header.
    """


class JournalCorruptError(JournalError):
    """A journal failed validation *before* its recoverable tail.

    A torn tail — an incomplete or CRC-failing final record in the last
    segment — is expected after a crash and is truncated silently; this
    error means damage anywhere else (a mid-file CRC mismatch, a
    non-JSON payload, a snapshot whose bytes no longer match the marker
    record), which re-execution cannot repair.
    """


class TraceFormatError(ReproError, ValueError):
    """A workload trace file (for example SWF) could not be parsed."""


class ServeError(ReproError):
    """A scheduler-service request could not be honoured.

    The daemon maps these onto the structured ``repro-serve/1`` error
    envelope (:func:`repro.serve.api.error_envelope`) instead of
    tearing down the connection: the request was understood but
    rejected.
    """


class ServeProtocolError(ServeError):
    """A serve request is malformed at the protocol level.

    Examples: a body that is not a JSON object, a missing or unknown
    ``format`` tag, a payload field of the wrong type.  Distinct from
    :class:`ServeError` so clients can tell "fix your request" from
    "the scheduler refused the operation".
    """
