"""Crash-safe journaled replay: chunked ``run_slice`` + the journal.

The driver wraps the replay engine *outside* its hot loops — the engine
itself is untouched, which is what makes the journal's cost zero when
disabled.  The arrival stream is cut into chunks of
``snapshot_interval`` jobs (each cut pushed past ties in release time,
the same frontier-quiescence rule as :func:`~repro.simulation.replay.
epoch_boundaries`), and each chunk runs through
:meth:`~repro.simulation.replay.ReplayEngine.run_slice`:

* after a non-final chunk, the engine's
  :class:`~repro.simulation.replay.ReplayCheckpoint` is snapshotted and
  the chunk's window rows are journaled;
* the final chunk drains, journals its rows plus the totals row, and
  writes the commit record.

``resume=True`` repairs the journal (truncating a torn tail), loads the
latest committed snapshot, **rewrites the JSONL store** to exactly the
committed rows, skips the checkpoint's ``arrived`` jobs of a freshly
re-opened stream, and continues.  Because chunk boundaries are
recomputed identically and ``run_slice`` chaining is byte-identical to
a serial run, the stitched output after any number of kills equals the
uninterrupted run's output byte for byte (the kill-anywhere matrix in
``tests/test_durability.py`` asserts this for every registered
failpoint).

Totals rows written under a journal strip the volatile wall-clock
fields (:data:`~repro.simulation.replay.VOLATILE_TOTAL_FIELDS`) — a
resumed run's wall time is necessarily different, so identity is only
possible over the deterministic fields.  The returned
:class:`~repro.simulation.replay.ReplayResult` still reports
``elapsed_seconds`` for this invocation.
"""

from __future__ import annotations

import json
import pickle
import time as _time
import warnings
from itertools import chain, islice
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..devtools.failpoints import fire
from ..errors import (
    JournalCorruptError,
    JournalError,
    SchedulingError,
    TraceFormatError,
)
from ..simulation.replay import (
    DEFAULT_SYNTH_JOBS,
    DEFAULT_WINDOW,
    SYNTH_PREFIX,
    VOLATILE_TOTAL_FIELDS,
    ReplayCheckpoint,
    ReplayEngine,
    ReplayResult,
    parse_synth_source,
)
from .atomic import atomic_write_bytes
from .journal import JOURNAL_VERSION, Journal

#: Jobs replayed between snapshots (and journal segment rolls).  At the
#: engine's millions-of-jobs/s throughput this bounds recomputation
#: after a kill to well under a second of lost work.
DEFAULT_SNAPSHOT_INTERVAL = 100_000


def _open_stream(source, m, n, max_jobs, seed) -> Tuple[Iterator, int]:
    """Resolve a replay source to ``(arrival iterator, machine size)``.

    Accepts the same sources as :func:`~repro.simulation.replay.
    replay_policies` — an SWF path, ``synth:<profile>[:<n>]``, or any
    in-memory iterable of jobs (``m`` then required).  Streaming: the
    trace is never materialised.
    """
    if isinstance(source, str) and source.startswith(SYNTH_PREFIX):
        from ..workloads.swf import synth_swf_jobs

        profile, parsed_n = parse_synth_source(source)
        jobs_n = n if n is not None else (parsed_n or DEFAULT_SYNTH_JOBS)
        if max_jobs is not None:
            jobs_n = min(jobs_n, max_jobs)
        machine = m or 256
        return synth_swf_jobs(profile, jobs_n, m=machine, seed=seed), machine
    if isinstance(source, str):
        from ..workloads.swf import iter_swf

        stream = iter_swf(source, m=m, max_jobs=max_jobs)
        it = iter(stream)
        first = next(it, None)
        if first is None:
            raise TraceFormatError("SWF stream contains no usable jobs")
        return chain([first], it), stream.m
    if m is None:
        raise SchedulingError(
            "journaled replay of an in-memory job stream needs m="
        )
    it = iter(source)
    if max_jobs is not None:
        it = islice(it, max_jobs)
    return it, m


def _chunk_stream(
    arrivals: Iterable, interval: int
) -> Iterator[Tuple[List, bool]]:
    """Yield ``(chunk, is_final)`` slices of ``interval`` jobs each.

    Cuts are pushed past runs of equal release times so every boundary
    is frontier-quiescent — the precondition for ``run_slice``
    checkpoint chaining being byte-identical to a serial run.  Because
    each chunk restarts the count at its own boundary, a resumed run
    (which starts at a boundary) reproduces the uninterrupted run's
    boundaries, and therefore its snapshots, exactly.
    """
    it = iter(arrivals)
    pending = next(it, None)
    while True:
        chunk: List = []
        while pending is not None and len(chunk) < interval:
            chunk.append(pending)
            pending = next(it, None)
        if pending is not None:
            last = chunk[-1].release
            while pending is not None and pending.release == last:
                chunk.append(pending)
                pending = next(it, None)
        final = pending is None
        yield chunk, final
        if final:
            return


def _resolve_store(store):
    if store is None or hasattr(store, "append"):
        return store
    from ..run.store import JsonlStore

    return JsonlStore(store)


def _rewrite_store(store, rows: List[Dict]) -> None:
    """Atomically reset the JSONL store to exactly ``rows``.

    Byte-for-byte what sequential ``JsonlStore.append`` calls produce,
    so a resumed run's file is indistinguishable from an uninterrupted
    run's.
    """
    if store is None:
        return
    path = getattr(store, "path", None)
    if path is None:
        raise JournalError(
            "journaled resume needs a path-backed store (JsonlStore or "
            "a path), got " + type(store).__name__
        )
    content = "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
    atomic_write_bytes(path, content.encode("utf-8"))


def _result_from_rows(
    policy: str, machine: int, window: int, rows: List[Dict], elapsed: float
) -> ReplayResult:
    """Reconstruct a :class:`ReplayResult` from journaled rows."""
    window_rows = [r for r in rows if r.get("key") != "totals"]
    totals_rows = [r for r in rows if r.get("key") == "totals"]
    totals: Dict = dict(totals_rows[-1]) if totals_rows else {}
    totals.pop("key", None)
    totals["elapsed_seconds"] = elapsed
    return ReplayResult(
        policy=policy,
        m=machine,
        window_size=window,
        totals=totals,
        windows=window_rows,
    )


def replay_journaled(
    source,
    journal_dir,
    policy: str = "easy",
    m: Optional[int] = None,
    n: Optional[int] = None,
    max_jobs: Optional[int] = None,
    seed: int = 0,
    store=None,
    resume: bool = False,
    snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    fsync: bool = False,
    **engine_kwargs,
) -> ReplayResult:
    """Replay ``source`` under a durable journal at ``journal_dir``.

    Fresh runs (``resume=False``) require ``journal_dir`` to hold no
    journal yet; the run's configuration fingerprint is recorded in the
    journal header and validated on every resume — resuming with a
    different trace, policy, window, seed or snapshot interval is a
    loud :class:`~repro.errors.JournalError`, never silent divergence.

    ``store`` (path or :class:`~repro.run.store.JsonlStore`) receives
    the same window rows a plain replay writes plus a totals row with
    volatile fields stripped; on resume it is rewritten to the
    journal's committed prefix before new rows append.  Resuming an
    already-committed journal is a pure read: the store is restored and
    the recorded result returned.

    ``engine_kwargs`` pass through to :class:`ReplayEngine` (window,
    profile_backend, batch, ...); the calendar completion queue is
    required and ``record_starts`` is unsupported (starts are not
    journaled).  Returns the stitched :class:`ReplayResult`.
    """
    started_clock = _time.perf_counter()
    if snapshot_interval < 1:
        raise SchedulingError(
            f"snapshot_interval must be >= 1, got {snapshot_interval!r}"
        )
    if "store" in engine_kwargs:
        raise SchedulingError(
            "pass store= to replay_journaled, not the engine"
        )
    if engine_kwargs.get("record_starts"):
        raise SchedulingError(
            "record_starts is not supported under a journal (start times "
            "are not journaled)"
        )
    if engine_kwargs.get("completion_queue", "calendar") != "calendar":
        raise SchedulingError(
            "journaled replay requires completion_queue='calendar'"
        )
    store = _resolve_store(store)
    stream, machine = _open_stream(source, m, n, max_jobs, seed)
    window = engine_kwargs.get("window", DEFAULT_WINDOW)
    # Canonical uncertainty fingerprint: the model changes every journaled
    # row, so resuming under a different model must fail the header check
    # exactly like a different trace would.  The degenerate exact model
    # fingerprints as None — it IS the certain world, and old journals
    # (no key) resume under it unchanged.
    from ..workloads.uncertainty import resolve_uncertainty

    u_model = resolve_uncertainty(engine_kwargs.get("uncertainty"))
    config = {
        "format": JOURNAL_VERSION,
        "source": source if isinstance(source, str) else None,
        "m": machine,
        "policy": policy,
        "window": window,
        "snapshot_interval": snapshot_interval,
        "n": n,
        "max_jobs": max_jobs,
        "seed": seed,
        "uncertainty": (
            None if u_model is None or u_model.is_exact else u_model.spec
        ),
    }

    ckpt: Optional[ReplayCheckpoint] = None
    committed_rows: List[Dict] = []
    if resume:
        journal, recovery = Journal.open_for_resume(journal_dir, fsync=fsync)
        stored = recovery.config
        mismatch = {
            key: (stored.get(key), value)
            for key, value in config.items()
            if stored.get(key) != value
        }
        if mismatch:
            journal.close()
            raise JournalError(
                "journal header does not match this invocation "
                f"(journal value, invocation value): {mismatch}"
            )
        if recovery.torn:
            warnings.warn(
                f"journal {journal.directory}: recovered torn tail "
                f"({recovery.torn})"
            )
        committed_rows = list(recovery.rows)
        if recovery.committed:
            journal.close()
            _rewrite_store(store, committed_rows)
            return _result_from_rows(
                policy, machine, window, committed_rows,
                _time.perf_counter() - started_clock,
            )
        if recovery.snapshot is not None:
            ckpt = pickle.loads(recovery.snapshot)
            if not isinstance(ckpt, ReplayCheckpoint):
                journal.close()
                raise JournalCorruptError(
                    f"journal {journal.directory}: snapshot did not "
                    "deserialize to a ReplayCheckpoint"
                )
        journal.append({
            "t": "resume",
            "snap": journal.snapshot_count,
            "discarded": recovery.discarded_rows,
        })
        _rewrite_store(store, committed_rows)
    else:
        journal = Journal.create(journal_dir, config, fsync=fsync)

    skip = int(ckpt.counters["arrived"]) if ckpt is not None else 0
    if skip:
        consumed = sum(1 for _ in islice(stream, skip))
        if consumed != skip:
            journal.close()
            raise JournalError(
                f"trace ended after {consumed} jobs but the journal's "
                f"checkpoint had replayed {skip} — wrong trace for this "
                "journal?"
            )

    all_rows: List[Dict] = list(committed_rows)
    totals: Dict = {}
    try:
        for chunk, final in _chunk_stream(stream, snapshot_interval):
            fire("replay.slice.start")
            engine = ReplayEngine(machine, policy=policy, **engine_kwargs)
            result = engine.run_slice(chunk, resume=ckpt, drain=final)
            fire("replay.slice.commit")
            emitted = list(result.windows)
            if final:
                totals = {
                    k: v for k, v in result.totals.items()
                    if k not in VOLATILE_TOTAL_FIELDS
                }
                emitted.append({"key": "totals", **totals})
            for row in emitted:
                journal.append_row(row)
                if store is not None:
                    store.append(row)
                all_rows.append(row)
            if final:
                journal.commit({"rows": len(all_rows)})
            else:
                ckpt = result.checkpoint
                assert ckpt is not None
                journal.snapshot(
                    pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL),
                    {
                        "arrived": int(ckpt.counters["arrived"]),
                        "rows": len(all_rows),
                    },
                )
    finally:
        journal.close()

    totals["elapsed_seconds"] = _time.perf_counter() - started_clock
    window_rows = [r for r in all_rows if r.get("key") != "totals"]
    return ReplayResult(
        policy=policy,
        m=machine,
        window_size=window,
        totals=totals,
        windows=window_rows,
    )
