"""Append-only replay journal: CRC-framed records + snapshot segments.

A journal directory holds two kinds of files::

    seg-00000000.wal    length-prefixed records (header, rows, markers)
    snap-00000001.ckpt  pickled ReplayCheckpoint bytes (atomic publish)

Each record is framed ``<u32 payload length><u32 CRC32(payload)>`` +
payload, where the payload is canonical JSON (sorted keys).  Segments
roll at snapshots: segment ``0`` starts with the run's header record,
and segment ``k`` (``k >= 1``) is *created atomically* with snapshot
``k``'s marker as its first record — so a snapshot is committed exactly
when its marker is durable, and the first record of a segment can never
be torn.

Crash semantics (the recovery scan's contract):

* an incomplete or CRC-failing record **at the tail of the last
  segment** is a torn write — expected after a kill — and is truncated
  back to the last intact record;
* the same damage anywhere else is real corruption and raises
  :class:`~repro.errors.JournalCorruptError` (a mid-file bit flip must
  reject loudly, never "recover" silently);
* rows recorded after the last snapshot marker are uncommitted — they
  are dropped on resume and re-emitted by deterministic re-execution,
  which is what makes kill-anywhere recovery byte-identical;
* a snapshot file without its marker (crash between the two) is simply
  superseded: re-execution reaches the same boundary and atomically
  rewrites the same snapshot index.

Durability is against process death (``kill -9``): appends are flushed
to the OS per record, which survives the process.  Pass ``fsync=True``
to also survive power loss at a per-record fsync cost.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from struct import Struct
from typing import Dict, List, Optional, Tuple

from ..devtools.failpoints import fire
from ..errors import JournalCorruptError, JournalError
from .atomic import atomic_write_bytes

_FRAME = Struct("<II")
_SEG_RE = re.compile(r"seg-(\d{8})\.wal\Z")

#: Journal on-disk format version, recorded in the header.
JOURNAL_VERSION = 1


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _encode(record: Dict) -> bytes:
    return json.dumps(record, sort_keys=True).encode("utf-8")


def _segment_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"seg-{index:08d}.wal")


def _snapshot_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"snap-{index:08d}.ckpt")


@dataclass
class ScannedRecord:
    """One decoded record plus its exact byte span."""

    record: Dict
    segment: int
    offset: int
    end: int


@dataclass
class JournalScan:
    """Outcome of one recovery scan over a journal directory."""

    directory: str
    #: segment indices present, ascending (contiguous from 0)
    segments: List[int]
    records: List[ScannedRecord]
    #: ``(segment index, keep-offset, reason)`` of a torn tail, if any
    torn: Optional[Tuple[int, int, str]] = None


@dataclass
class OpRecovery:
    """What :meth:`Journal.open_event_sourced` reconstructed.

    The event-sourced twin of :class:`JournalRecovery`: the latest
    committed snapshot plus every ``op`` record accepted *after* it.
    Unlike replay rows — re-derivable by re-executing the trace, so
    dropped on resume — op records are the source of truth of a live
    service and are re-applied, never discarded.
    """

    config: Dict
    #: latest committed snapshot payload (``None``: restart from scratch)
    snapshot: Optional[bytes]
    snapshot_meta: Optional[Dict]
    #: op records after the snapshot boundary, in acceptance order
    ops: List[Dict] = field(default_factory=list)
    torn: Optional[str] = None


@dataclass
class JournalRecovery:
    """What :meth:`Journal.open_for_resume` reconstructed."""

    config: Dict
    #: latest committed snapshot payload (``None``: restart from scratch)
    snapshot: Optional[bytes]
    snapshot_meta: Optional[Dict]
    #: committed rows, in emission order
    rows: List[Dict] = field(default_factory=list)
    #: the run finished (commit record present); nothing to re-execute
    committed: bool = False
    #: uncommitted rows dropped during repair
    discarded_rows: int = 0
    torn: Optional[str] = None


def scan_journal(directory: str) -> JournalScan:
    """Decode every record in ``directory``, classifying tail damage.

    Raises :class:`JournalCorruptError` for damage that is not a torn
    tail of the last segment; raises :class:`JournalError` when the
    directory holds no journal at all.
    """
    directory = os.fspath(directory)
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        raise JournalError(f"no journal directory at {directory!r}") from None
    segments = sorted(
        int(m.group(1)) for m in (_SEG_RE.match(n) for n in names) if m
    )
    if not segments:
        raise JournalError(f"no journal found in {directory!r}")
    if segments != list(range(len(segments))):
        raise JournalCorruptError(
            f"journal {directory!r} has non-contiguous segments {segments}"
        )
    scan = JournalScan(directory=directory, segments=segments, records=[])
    last_segment = segments[-1]
    for index in segments:
        path = _segment_path(directory, index)
        with open(path, "rb") as fh:
            data = fh.read()
        offset = 0
        size = len(data)
        while offset < size:
            def torn_or_corrupt(reason: str, *, tail: bool) -> None:
                if index == last_segment and tail:
                    scan.torn = (index, offset, reason)
                    return
                raise JournalCorruptError(
                    f"{path}: {reason} at byte {offset} "
                    "(not a recoverable tail)"
                )

            if offset + _FRAME.size > size:
                torn_or_corrupt("incomplete record header", tail=True)
                break
            length, crc = _FRAME.unpack_from(data, offset)
            end = offset + _FRAME.size + length
            if end > size:
                torn_or_corrupt("incomplete record payload", tail=True)
                break
            payload = data[offset + _FRAME.size:end]
            if zlib.crc32(payload) != crc:
                # only a mismatch that reaches EOF of the final segment
                # is indistinguishable from a torn write
                torn_or_corrupt("record CRC mismatch", tail=end == size)
                break
            try:
                record = json.loads(payload)
            except json.JSONDecodeError:
                raise JournalCorruptError(
                    f"{path}: CRC-valid record at byte {offset} is not "
                    "JSON — journal corrupt"
                ) from None
            if not isinstance(record, dict):
                raise JournalCorruptError(
                    f"{path}: record at byte {offset} is not an object"
                )
            scan.records.append(ScannedRecord(record, index, offset, end))
            offset = end
    return scan


class Journal:
    """Writer handle for one journal directory.

    Use :meth:`create` for a fresh run and :meth:`open_for_resume` to
    recover and continue an interrupted one; the constructor itself
    performs no I/O.
    """

    def __init__(self, directory: str, *, fsync: bool = False):
        self.directory = os.fspath(directory)
        self.fsync = fsync
        self._fh = None
        self._segment_index = 0

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def create(cls, directory: str, config: Dict, *, fsync: bool = False
               ) -> "Journal":
        """Start a fresh journal recording ``config`` in its header."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        if any(_SEG_RE.match(name) for name in os.listdir(directory)):
            raise JournalError(
                f"{directory!r} already contains a journal; resume it "
                "(--resume) or point --journal at a fresh directory"
            )
        journal = cls(directory, fsync=fsync)
        header = {"t": "header", "v": JOURNAL_VERSION, "config": config}
        atomic_write_bytes(_segment_path(directory, 0), _frame(_encode(header)))
        journal._open_segment(0)
        return journal

    @classmethod
    def open_for_resume(
        cls, directory: str, *, fsync: bool = False
    ) -> Tuple["Journal", JournalRecovery]:
        """Repair ``directory`` and reconstruct its committed state.

        Truncates a torn tail, drops rows recorded after the last
        snapshot marker (uncommitted), validates the snapshot bytes
        against the marker's CRC, sweeps stranded ``*.tmp.*`` files,
        and returns the journal (positioned to append) plus the
        :class:`JournalRecovery`.
        """
        scan = scan_journal(directory)
        directory = scan.directory
        torn_note: Optional[str] = None
        if scan.torn is not None:
            seg, keep, reason = scan.torn
            path = _segment_path(directory, seg)
            os.truncate(path, keep)
            torn_note = f"{os.path.basename(path)}: {reason}, truncated to {keep} bytes"

        records = [item.record for item in scan.records]
        if not records or records[0].get("t") != "header":
            raise JournalCorruptError(
                f"journal {directory!r} does not start with a header record"
            )
        config = records[0].get("config")
        if not isinstance(config, dict):
            raise JournalCorruptError(
                f"journal {directory!r} header carries no config object"
            )

        committed = any(r.get("t") == "commit" for r in records)
        last_marker: Optional[ScannedRecord] = None
        for item in scan.records:
            if item.record.get("t") == "snap":
                last_marker = item
        tail_segment = scan.segments[-1]
        marker_segment = -1 if last_marker is None else last_marker.segment
        if not committed and tail_segment > 0 and marker_segment != tail_segment:
            # segments are born atomically with their marker as the
            # first record; a tail segment without one is not a crash
            # artefact, it is damage
            raise JournalCorruptError(
                f"journal {directory!r}: segment {tail_segment} has no "
                "snapshot marker"
            )

        rows: List[Dict] = []
        discarded = 0
        snapshot: Optional[bytes] = None
        snapshot_meta: Optional[Dict] = None
        if committed:
            rows = [r["row"] for r in records if r.get("t") == "row"]
        else:
            marker_end = None
            if last_marker is not None:
                snapshot_meta = last_marker.record
                boundary = (last_marker.segment, last_marker.offset)
            else:
                boundary = (0, 0)  # only the header is committed
            for item in scan.records:
                if item.record.get("t") != "row":
                    continue
                if (item.segment, item.offset) < boundary:
                    rows.append(item.record["row"])
                else:
                    discarded += 1
            if last_marker is not None:
                marker_end = last_marker.end
                snap_path = _snapshot_path(
                    directory, int(last_marker.record["snap"])
                )
                try:
                    with open(snap_path, "rb") as fh:
                        snapshot = fh.read()
                except FileNotFoundError:
                    raise JournalCorruptError(
                        f"{snap_path}: snapshot file missing but its "
                        "marker is committed"
                    ) from None
                if (
                    len(snapshot) != last_marker.record.get("size")
                    or zlib.crc32(snapshot) != last_marker.record.get("crc")
                ):
                    raise JournalCorruptError(
                        f"{snap_path}: snapshot bytes do not match the "
                        "committed marker (size/CRC mismatch)"
                    )
            # drop everything after the committed boundary: the resumed
            # run re-emits it deterministically
            keep = marker_end if marker_end is not None else None
            if last_marker is None:
                # segment 0 keeps only its header record
                keep = scan.records[0].end
            assert keep is not None
            os.truncate(_segment_path(directory, tail_segment), keep)

        # sweep tmp files stranded by a crash inside an atomic publish
        for name in os.listdir(directory):
            if ".tmp." in name:
                try:
                    os.remove(os.path.join(directory, name))
                except OSError:
                    pass

        journal = cls(directory, fsync=fsync)
        journal._open_segment(scan.segments[-1])
        recovery = JournalRecovery(
            config=config,
            snapshot=snapshot,
            snapshot_meta=snapshot_meta,
            rows=rows,
            committed=committed,
            discarded_rows=discarded,
            torn=torn_note,
        )
        return journal, recovery

    @classmethod
    def open_event_sourced(
        cls, directory: str, *, fsync: bool = False
    ) -> Tuple["Journal", OpRecovery]:
        """Repair ``directory`` and reconstruct an event-sourced state.

        The serve-mode twin of :meth:`open_for_resume`: a torn tail is
        truncated and stranded ``*.tmp.*`` files are swept exactly as
        there, but records after the last snapshot marker are **kept**
        and returned (as :attr:`OpRecovery.ops`) instead of dropped —
        an acknowledged op cannot be re-derived from a trace, so the
        journal is its single source of truth.  The returned journal is
        positioned to append to the tail segment.
        """
        scan = scan_journal(directory)
        directory = scan.directory
        torn_note: Optional[str] = None
        if scan.torn is not None:
            seg, keep, reason = scan.torn
            path = _segment_path(directory, seg)
            os.truncate(path, keep)
            torn_note = (
                f"{os.path.basename(path)}: {reason}, truncated to {keep} bytes"
            )

        records = [item.record for item in scan.records]
        if not records or records[0].get("t") != "header":
            raise JournalCorruptError(
                f"journal {directory!r} does not start with a header record"
            )
        config = records[0].get("config")
        if not isinstance(config, dict):
            raise JournalCorruptError(
                f"journal {directory!r} header carries no config object"
            )

        last_marker: Optional[ScannedRecord] = None
        for item in scan.records:
            if item.record.get("t") == "snap":
                last_marker = item
        tail_segment = scan.segments[-1]
        marker_segment = -1 if last_marker is None else last_marker.segment
        if tail_segment > 0 and marker_segment != tail_segment:
            # segments are born atomically with their marker as the
            # first record; a tail segment without one is not a crash
            # artefact, it is damage
            raise JournalCorruptError(
                f"journal {directory!r}: segment {tail_segment} has no "
                "snapshot marker"
            )

        snapshot: Optional[bytes] = None
        snapshot_meta: Optional[Dict] = None
        boundary = (0, 0)
        if last_marker is not None:
            snapshot_meta = last_marker.record
            boundary = (last_marker.segment, last_marker.offset)
            snap_path = _snapshot_path(
                directory, int(last_marker.record["snap"])
            )
            try:
                with open(snap_path, "rb") as fh:
                    snapshot = fh.read()
            except FileNotFoundError:
                raise JournalCorruptError(
                    f"{snap_path}: snapshot file missing but its "
                    "marker is committed"
                ) from None
            if (
                len(snapshot) != last_marker.record.get("size")
                or zlib.crc32(snapshot) != last_marker.record.get("crc")
            ):
                raise JournalCorruptError(
                    f"{snap_path}: snapshot bytes do not match the "
                    "committed marker (size/CRC mismatch)"
                )
        ops = [
            item.record
            for item in scan.records
            if item.record.get("t") == "op"
            and (item.segment, item.offset) >= boundary
        ]

        # sweep tmp files stranded by a crash inside an atomic publish
        for name in os.listdir(directory):
            if ".tmp." in name:
                try:
                    os.remove(os.path.join(directory, name))
                except OSError:
                    pass

        journal = cls(directory, fsync=fsync)
        journal._open_segment(tail_segment)
        recovery = OpRecovery(
            config=config,
            snapshot=snapshot,
            snapshot_meta=snapshot_meta,
            ops=ops,
            torn=torn_note,
        )
        return journal, recovery

    def _open_segment(self, index: int) -> None:
        if self._fh is not None:
            self._fh.close()
        self._segment_index = index
        self._fh = open(_segment_path(self.directory, index), "ab")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appends -----------------------------------------------------------
    @property
    def snapshot_count(self) -> int:
        """Snapshots committed so far (== current segment index)."""
        return self._segment_index

    def append(self, record: Dict) -> None:
        """Append one record (framed, flushed) to the active segment."""
        if self._fh is None:
            raise JournalError("journal is closed")
        payload = _encode(record)
        data = _frame(payload)
        fire("journal.record.append")
        # torn-tail simulation: flush a half-written frame, then crash
        fire(
            "journal.record.torn",
            before=lambda: (
                self._fh.write(data[: _FRAME.size + max(1, len(payload) // 2)]),
                self._fh.flush(),
            ),
        )
        self._fh.write(data)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append_row(self, row: Dict) -> None:
        """Record one emitted JSONL row."""
        self.append({"t": "row", "row": row})

    def snapshot(self, data: bytes, meta: Dict) -> int:
        """Commit snapshot bytes and roll to a new segment.

        The snapshot file is published atomically, then the new segment
        appears atomically with the marker record (size + CRC of the
        snapshot) as its first record — the commit point.  Returns the
        snapshot index.
        """
        index = self._segment_index + 1
        fire("journal.snapshot.write")
        atomic_write_bytes(
            _snapshot_path(self.directory, index),
            data,
            failpoint="journal.snapshot.rename",
        )
        marker = {
            "t": "snap",
            "snap": index,
            "size": len(data),
            "crc": zlib.crc32(data),
            **meta,
        }
        fire("journal.snapshot.marker")
        atomic_write_bytes(
            _segment_path(self.directory, index), _frame(_encode(marker))
        )
        self._open_segment(index)
        return index

    def commit(self, meta: Dict) -> None:
        """Mark the run complete (resume becomes a pure read)."""
        fire("journal.commit")
        self.append({"t": "commit", **meta})

    def __repr__(self) -> str:
        return (
            f"<Journal {self.directory!r} segment={self._segment_index}>"
        )
