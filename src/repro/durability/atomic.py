"""Atomic publication of durable files (tmp + ``os.replace``).

Every file another process or a crash-recovery scan may read —
checkpoints, journal segments, snapshot files, rewritten stores — goes
through these helpers, so a reader never observes a half-written file:
either the old content exists or the new content exists, nothing in
between.  Lint rule RPL402 enforces the discipline by flagging direct
truncating writes on durable paths.

The tmp name carries the writer's PID: concurrent publishers of the
*same* path (a healed epoch re-publishing a checkpoint while the
abandoned hung worker limps after it) never collide on the tmp file,
and because both compute byte-identical content the double
``os.replace`` is harmless.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Optional

from ..devtools.failpoints import fire


def atomic_write_bytes(
    path: str, data: bytes, *, failpoint: Optional[str] = None
) -> None:
    """Publish ``data`` at ``path`` atomically.

    The payload is fully written, flushed and fsynced to a same-directory
    tmp file, then renamed over ``path``.  ``failpoint`` names a
    :mod:`~repro.devtools.failpoints` site fired between the two steps —
    the window where a crash strands a tmp file but never a torn target.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:  # repro: noqa RPL402 -- the atomic helper's own tmp leg
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    if failpoint is not None:
        fire(failpoint)
    os.replace(tmp, path)


def atomic_write_text(
    path: str, text: str, *, failpoint: Optional[str] = None
) -> None:
    """Publish ``text`` (UTF-8) at ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"), failpoint=failpoint)


def atomic_pickle(
    path: str, obj: Any, *, failpoint: Optional[str] = None
) -> None:
    """Publish ``pickle.dumps(obj)`` at ``path`` atomically."""
    atomic_write_bytes(
        path,
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
        failpoint=failpoint,
    )
