"""Durability layer: crash-safe replay and atomic file publication.

Three pieces, each usable on its own:

* :mod:`repro.durability.atomic` — tmp + ``os.replace`` publication of
  every durable file (enforced by lint rule RPL402);
* :mod:`repro.durability.journal` — an append-only journal of
  CRC-framed records with snapshot-rolled segments and a recovery scan
  that truncates torn tails;
* :mod:`repro.durability.journaled` — the journaled replay driver
  behind ``repro replay --journal DIR`` / ``--resume``, whose invariant
  is kill-anywhere byte-identity: SIGKILL the process at any registered
  failpoint (:mod:`repro.devtools.failpoints`), resume, and the JSONL
  output equals an uninterrupted run's byte for byte.
"""

from .atomic import atomic_pickle, atomic_write_bytes, atomic_write_text
from .journal import (
    JOURNAL_VERSION,
    Journal,
    JournalRecovery,
    JournalScan,
    OpRecovery,
    scan_journal,
)
from .journaled import DEFAULT_SNAPSHOT_INTERVAL, replay_journaled

__all__ = [
    "JOURNAL_VERSION",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "Journal",
    "JournalRecovery",
    "JournalScan",
    "OpRecovery",
    "atomic_pickle",
    "atomic_write_bytes",
    "atomic_write_text",
    "replay_journaled",
    "scan_journal",
]
