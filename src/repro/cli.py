"""Command-line interface: ``python -m repro <command>``.

Gives the library a batch-system-operator surface:

========== =========================================================
command     action
========== =========================================================
schedule    run an algorithm on an instance JSON file
optimal     exact branch-and-bound on an instance JSON file
bounds      print the Figure 4 bound values at given α
figure      regenerate a paper figure (1-4) in the terminal
generate    write a random workload instance JSON
gantt       render a schedule JSON as an ASCII Gantt chart
simulate    online simulation of an instance with a policy
swf         convert an SWF trace to instance JSON
replay      stream an SWF trace through the rolling-horizon engine
info        characterize a workload instance
run         execute an experiment-spec JSON through the grid Runner
bench       run registered benchmarks (benchmarks/suite.py)
list        list registered algorithms/workloads/policies/metrics
========== =========================================================

Every command reads/writes the JSON formats of
:mod:`repro.core.serialize`, so outputs chain into inputs; ``run``
consumes ``repro-spec/1`` documents (see :mod:`repro.run`) and appends
result rows to a resumable JSONL store.
"""

from __future__ import annotations

import argparse
import os
import sys
from fractions import Fraction
from typing import List, Optional

from . import __version__
from .algorithms import available_schedulers, branch_and_bound, get_scheduler
from .analysis import format_table
from .core import lower_bound, summarize
from .core.serialize import (
    dumps_instance,
    dumps_schedule,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
)
from .errors import ReproError


def _cmd_schedule(args) -> int:
    instance = load_instance(args.instance)
    scheduler = get_scheduler(args.algorithm)
    schedule = scheduler.schedule(instance)
    schedule.verify()
    metrics = summarize(schedule)
    print(
        f"{scheduler.name}: Cmax={metrics.makespan}  "
        f"LB={lower_bound(instance)}  util={metrics.utilization:.3f}"
    )
    if args.output:
        save_schedule(schedule, args.output)
        print(f"schedule written to {args.output}")
    else:
        print(dumps_schedule(schedule))
    return 0


def _cmd_optimal(args) -> int:
    instance = load_instance(args.instance)
    result = branch_and_bound(instance, node_limit=args.node_limit)
    result.schedule.verify()
    print(
        f"optimal Cmax={result.makespan}  nodes={result.nodes}  "
        f"proven={result.proven_optimal}"
    )
    if args.output:
        save_schedule(result.schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _parse_alpha(token: str) -> Fraction:
    if "/" in token:
        num, den = token.split("/", 1)
        return Fraction(int(num), int(den))
    return Fraction(token)


def _cmd_bounds(args) -> int:
    from .theory import lower_bound_b1, lower_bound_b2, upper_bound

    rows = []
    for token in args.alpha:
        a = _parse_alpha(token)
        rows.append(
            {
                "alpha": token,
                "upper 2/a": str(upper_bound(a)),
                "B1": str(lower_bound_b1(a)),
                "B2": str(lower_bound_b2(a)),
            }
        )
    print(format_table(rows, title="alpha-RESASCHEDULING bounds"))
    return 0


def _cmd_figure(args) -> int:
    from .viz import render_gantt

    if args.empirical and args.number != 4:
        print("error: --empirical applies to figure 4 only", file=sys.stderr)
        return 2
    if args.number == 1:
        from .algorithms import optimal_makespan_m1
        from .theory import (
            random_yes_3partition,
            reduction_yes_makespan,
            three_partition_reduction,
        )

        vals, bound = random_yes_3partition(args.k, 60, seed=args.seed)
        inst = three_partition_reduction(vals, bound, rho=2)
        target = reduction_yes_makespan(args.k, bound)
        achieved = optimal_makespan_m1(inst)
        print(f"Figure 1: 3-PARTITION reduction, k={args.k}, B={bound}")
        print(f"target makespan k(B+1)-1 = {target}; solved = {achieved}")
        print("yes-instance scheduled into the gaps exactly" if
              achieved == target else "MISMATCH")
    elif args.number == 2:
        from .algorithms import ListScheduler
        from .core import ReservationInstance
        from .workloads import nonincreasing_staircase, uniform_instance

        jobs = uniform_instance(6, 8, p_range=(1, 6), q_range=(1, 4),
                                seed=args.seed).jobs
        stairs = nonincreasing_staircase(8, 3, horizon=10, seed=args.seed)
        inst = ReservationInstance(m=8, jobs=jobs, reservations=stairs)
        schedule = ListScheduler().schedule(inst)
        print("Figure 2: non-increasing reservations, LSRC schedule")
        print(render_gantt(schedule, width=70))
    elif args.number == 3:
        from .algorithms import list_schedule
        from .theory import proposition2_instance

        fam = proposition2_instance(args.k if args.k >= 3 else 6)
        optimal = fam.optimal_schedule()
        bad = list_schedule(fam.instance, order=fam.bad_order)
        print(f"Figure 3: k={fam.k}, alpha=2/{fam.k}, m={fam.instance.m}")
        print(render_gantt(optimal, width=70, max_rows=10, legend=False))
        print()
        print(render_gantt(bad, width=70, max_rows=10, legend=False))
        print(f"\nC*={optimal.makespan}  LSRC(bad)={bad.makespan}  "
              f"ratio={Fraction(bad.makespan, optimal.makespan)}")
    elif args.number == 4:
        from .analysis import ascii_plot
        from .theory import default_alpha_grid, figure4_series

        rows = figure4_series(default_alpha_grid(160, lo=0.2))
        series = {
            "upper 2/a": [(r.alpha, r.upper) for r in rows],
            "B1": [(r.alpha, r.b1) for r in rows],
            "B2": [(r.alpha, r.b2) for r in rows],
        }
        if args.empirical:
            # measured companion grid, executed through the experiment
            # layer: mean LSRC ratio against the certified lower bound
            from .run import Runner, mean_metric_series, paper_grid_spec

            spec = paper_grid_spec(
                alphas=[0.25, 0.4, 0.5, 0.65, 0.8],
                algorithms=["lsrc"],
                seeds=range(3),
            )
            result = Runner(jobs=args.jobs).run(spec)
            series["LSRC measured"] = mean_metric_series(
                result, "ratio_lb", algorithm="lsrc"
            )
        print(
            ascii_plot(
                series,
                width=72, height=20, y_max=10.0, y_min=0.0,
                x_label="alpha", y_label="guarantee",
            )
        )
    else:
        print(f"unknown figure {args.number}; the paper has figures 1-4",
              file=sys.stderr)
        return 2
    return 0


def _cmd_generate(args) -> int:
    from .core import ReservationInstance
    from .workloads import (
        alpha_constrained_instance,
        feitelson_instance,
        random_alpha_reservations,
        uniform_instance,
    )

    reservations = ()
    if args.alpha is not None:
        # the alpha restriction constrains BOTH sides (Section 4.2):
        # job widths <= alpha*m and reservations <= (1-alpha)*m
        alpha = _parse_alpha(args.alpha)
        rigid = alpha_constrained_instance(
            args.jobs, args.machines, alpha, seed=args.seed
        )
        reservations = random_alpha_reservations(
            args.machines, alpha, horizon=args.horizon,
            count=args.reservations, seed=args.seed + 1,
        )
    elif args.model == "uniform":
        rigid = uniform_instance(args.jobs, args.machines, seed=args.seed)
    else:
        rigid = feitelson_instance(args.jobs, args.machines, seed=args.seed)
    instance = ReservationInstance(
        m=args.machines, jobs=rigid.jobs, reservations=reservations,
        name=f"{args.model}(n={args.jobs},m={args.machines})",
    )
    if args.output:
        save_instance(instance, args.output)
        print(f"instance written to {args.output}")
    else:
        print(dumps_instance(instance))
    return 0


def _cmd_gantt(args) -> int:
    from .viz import render_gantt, save_svg

    schedule = load_schedule(args.schedule)
    print(render_gantt(schedule, width=args.width))
    if args.svg:
        save_svg(schedule, args.svg)
        print(f"SVG written to {args.svg}")
    return 0


def _cmd_simulate(args) -> int:
    from .simulation import simulate

    instance = load_instance(args.instance)
    result = simulate(instance, args.policy)
    result.schedule.verify()
    metrics = summarize(result.schedule)
    print(
        f"online {args.policy}: Cmax={metrics.makespan:.6g}  "
        f"mean_wait={metrics.mean_wait:.6g}  events={len(result.trace)}"
    )
    if args.output:
        save_schedule(result.schedule, args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_swf(args) -> int:
    from .workloads import read_swf

    with open(args.trace) as fh:
        report = read_swf(
            fh, m=args.machines, max_jobs=args.max_jobs,
            use_release=not args.offline,
        )
    print(
        f"parsed {report.instance.n} jobs on m={report.instance.m} "
        f"({len(report.skipped)} skipped)"
    )
    instance = report.instance.to_reservation_instance()
    if args.output:
        save_instance(instance, args.output)
        print(f"instance written to {args.output}")
    else:
        print(dumps_instance(instance))
    return 0


def _warn_demotion(policy: str, totals: dict) -> None:
    """Surface a mid-stream backend demotion on stderr.

    The engine's ``ReplayDemotionWarning`` fires in-process, but a
    sharded replay demotes inside a worker where the warning dies with
    the process — the totals record is the channel that survives, so
    the CLI reports from it unconditionally.
    """
    record = totals.get("demoted_to_list_at")
    if record:
        print(
            f"warning: [{policy}] profile backend 'auto' demoted to "
            f"'list' at job {record['job']!r} (release "
            f"{record['release']!r}): non-integral job times; results "
            f"are unchanged but the int64 fast path is off from there",
            file=sys.stderr,
        )


def _cmd_replay(args) -> int:
    from .simulation.replay import (
        DEFAULT_SYNTH_JOBS,
        ReplayEngine,
        parse_synth_source,
        replay_epochs,
        replay_policies,
        replay_swf,
    )
    from .workloads.swf import synth_swf_jobs

    policies = [p for p in args.policy.split(",") if p]
    if not policies:
        print("error: no policy given", file=sys.stderr)
        return 2
    batch = "auto" if args.batch is None else args.batch
    # Raw spec string; the engines parse and validate it (workers get
    # the string, not the model, so spec errors surface identically
    # serial and sharded).  Absent flag means absent kwarg: the certain
    # world stays byte-for-byte the pre-uncertainty code path.
    uncertain_kwargs = (
        {"uncertainty": args.uncertainty} if args.uncertainty else {}
    )
    if args.uncertainty:
        from .workloads.uncertainty import parse_uncertainty

        try:
            parse_uncertainty(args.uncertainty)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    n = None
    if args.trace.startswith("synth:"):
        # synth:<profile>[:<n>] replays the scenario pack directly — no
        # trace file needed for demos and smoke runs (parsing shared
        # with the sharded runner, so messages/defaults cannot drift)
        try:
            profile, parsed_n = parse_synth_source(args.trace)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        n = parsed_n if parsed_n is not None else DEFAULT_SYNTH_JOBS
        if args.max_jobs is not None:
            n = min(n, args.max_jobs)

    if args.resume and not args.journal:
        print("error: --resume requires --journal DIR", file=sys.stderr)
        return 2
    if args.snapshot_interval is not None and not args.journal:
        print(
            "error: --snapshot-interval requires --journal DIR "
            "(snapshots live in the journal)",
            file=sys.stderr,
        )
        return 2
    if args.journal:
        if len(policies) > 1 or args.jobs > 1:
            print(
                "error: --journal covers a single-policy, single-process "
                "replay (drop --jobs / extra policies)",
                file=sys.stderr,
            )
            return 2
        from .durability import DEFAULT_SNAPSHOT_INTERVAL, replay_journaled
        from .errors import JournalError

        interval = (args.snapshot_interval
                    if args.snapshot_interval is not None
                    else DEFAULT_SNAPSHOT_INTERVAL)
        try:
            result = replay_journaled(
                args.trace, args.journal, policy=policies[0],
                m=args.machines, n=n, max_jobs=args.max_jobs,
                seed=args.seed, store=args.out, resume=args.resume,
                snapshot_interval=interval, window=args.window,
                profile_backend=args.backend, batch=batch,
                **uncertain_kwargs,
            )
        except JournalError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        t = result.totals
        _warn_demotion(policies[0], t)
        print(
            f"replayed {t['n_jobs']} jobs with {policies[0]} on "
            f"m={result.m}: Cmax={t['makespan']}  "
            f"util={t['utilization']:.3f}  "
            f"mean_wait={t['mean_wait']:.6g}  ratio_lb={t['ratio_lb']:.4f}"
            f"  [journal: {args.journal}]"
        )
        if args.out:
            print(
                f"{t['windows']} window rows + totals written to {args.out}"
            )
        return 0

    if len(policies) > 1:
        # multi-policy mode: K independent replays of the same source,
        # sharded onto worker processes with --jobs; merged JSONL rows
        # are byte-identical to a serial run
        multi = replay_policies(
            args.trace, policies, m=args.machines, jobs=args.jobs,
            store=args.out, n=n, max_jobs=args.max_jobs, seed=args.seed,
            window=args.window, profile_backend=args.backend, batch=batch,
            **uncertain_kwargs,
        )
        for policy in policies:
            t = multi.results[policy].totals
            _warn_demotion(policy, t)
            print(
                f"{policy:>14}: {t['n_jobs']} jobs on m={multi.m}  "
                f"Cmax={t['makespan']}  util={t['utilization']:.3f}  "
                f"mean_wait={t['mean_wait']:.6g}  "
                f"ratio_lb={t['ratio_lb']:.4f}  "
                f"({t['n_jobs'] / t['elapsed_seconds']:,.0f} jobs/s)"
            )
        mode = (f"{min(args.jobs, len(policies))} worker processes"
                if args.jobs > 1 else "serial")
        print(f"{len(policies)} policies replayed ({mode})")
        if args.out:
            print(f"{len(multi.rows)} merged rows written to {args.out}")
        return 0

    if args.jobs > 1:
        # single policy + --jobs: shard the trace itself into time
        # epochs; stitched output is byte-identical to a serial run
        result = replay_epochs(
            args.trace, policy=policies[0], epochs=args.jobs,
            m=args.machines, n=n, max_jobs=args.max_jobs, seed=args.seed,
            store=args.out, window=args.window,
            profile_backend=args.backend, batch=batch,
            **uncertain_kwargs,
        )
        for rec in result.recoveries:
            print(
                f"warning: epoch {rec['epoch']} worker healed "
                f"(attempt {rec['attempt']}, {rec['action']}): "
                f"{rec['error']}",
                file=sys.stderr,
            )
        shard_note = f"  [{args.jobs} epoch workers]"
    else:
        kwargs = dict(
            policy=policies[0],
            window=args.window,
            store=args.out,
            profile_backend=args.backend,
            batch=batch,
            **uncertain_kwargs,
        )
        if n is not None:
            m = args.machines or 256
            engine = ReplayEngine(m, **kwargs)
            result = engine.run(
                synth_swf_jobs(profile, n, m=m, seed=args.seed)
            )
        else:
            result = replay_swf(
                args.trace, m=args.machines, max_jobs=args.max_jobs,
                **kwargs
            )
        shard_note = ""
    t = result.totals
    _warn_demotion(policies[0], t)
    print(
        f"replayed {t['n_jobs']} jobs with {policies[0]} on m={result.m}: "
        f"Cmax={t['makespan']}  util={t['utilization']:.3f}  "
        f"mean_wait={t['mean_wait']:.6g}  ratio_lb={t['ratio_lb']:.4f}"
        f"{shard_note}"
    )
    print(
        f"bounded memory: peak queue {t['peak_queue_length']}, "
        f"peak profile segments {t['peak_profile_segments']} "
        f"({t['elapsed_seconds']:.2f}s, "
        f"{t['n_jobs'] / t['elapsed_seconds']:,.0f} jobs/s)"
    )
    if args.out:
        print(
            f"{t['windows']} window rows + totals written to {args.out}"
        )
    return 0


def _cmd_serve(args) -> int:
    from .serve.daemon import run_serve

    if args.resume:
        conflicts = [
            flag for flag, value in (
                ("-m/--machines", args.machines),
                ("-p/--policy", args.policy),
                ("--window", args.window),
                ("--snapshot-interval", args.snapshot_interval),
                ("--uncertainty", args.uncertainty),
            ) if value is not None
        ]
        if conflicts:
            print(
                f"error: --resume takes its configuration from the "
                f"journal header; drop {', '.join(conflicts)}",
                file=sys.stderr,
            )
            return 2
    elif args.machines is None:
        print(
            "error: starting a fresh service requires -m/--machines "
            "(or --resume an existing journal)",
            file=sys.stderr,
        )
        return 2
    from .serve.daemon import DEFAULT_OP_SNAPSHOT_INTERVAL

    return run_serve(
        args.journal,
        resume=args.resume,
        m=args.machines,
        policy=args.policy if args.policy is not None else "easy",
        window=args.window if args.window is not None else 0,
        uncertainty=args.uncertainty,
        snapshot_interval=(
            args.snapshot_interval
            if args.snapshot_interval is not None
            else DEFAULT_OP_SNAPSHOT_INTERVAL
        ),
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        fsync=args.fsync,
    )


def _cmd_info(args) -> int:
    from .workloads.characterize import characterize

    instance = load_instance(args.instance)
    profile = characterize(instance)
    print(format_table([profile.as_dict()], title=f"workload {args.instance}"))
    print(f"lower bound on C*max: {lower_bound(instance)}")
    print(f"alpha window: [{instance.min_alpha}, {instance.max_alpha}]")
    return 0


def _cmd_run(args) -> int:
    from .core.serialize import load_spec
    from .run import Runner, summary_rows

    spec = load_spec(args.spec)
    store = args.out
    if store is None:
        store = os.path.splitext(args.spec)[0] + ".results.jsonl"

    def progress(done, total, row):
        if not args.quiet:
            print(f"\r  {done}/{total} points", end="", flush=True)

    runner = Runner(jobs=args.jobs, store=store, progress=progress)
    result = runner.run(spec, resume=not args.fresh)
    if not args.quiet and result.computed:
        print()
    print(
        f"{spec.name}: {len(result.rows)} rows "
        f"({result.computed} computed, {result.skipped} resumed) "
        f"in {result.elapsed_seconds:.2f}s with jobs={args.jobs}"
    )
    print(f"rows stored in {store}")
    table = summary_rows(result, metric=args.summary_metric)
    if table:
        print(format_table(table, title=f"experiment {spec.name}"))
    return 0


def _find_bench_suite():
    """Locate ``benchmarks/suite.py`` (source checkouts only).

    Checks ``$REPRO_BENCHMARKS``, the repo root relative to this file,
    then the working directory — the suite ships with the repository,
    not inside the installed package.
    """
    import pathlib

    candidates = []
    env = os.environ.get("REPRO_BENCHMARKS")
    if env:
        candidates.append(pathlib.Path(env))
    candidates.append(pathlib.Path(__file__).resolve().parents[2] / "benchmarks")
    candidates.append(pathlib.Path.cwd() / "benchmarks")
    for directory in candidates:
        if (directory / "suite.py").is_file():
            return directory / "suite.py"
    return None


def _cmd_bench(args) -> int:
    import importlib.util

    suite_path = _find_bench_suite()
    if suite_path is None:
        print(
            "error: benchmarks/suite.py not found — 'repro bench' needs a "
            "source checkout (or set REPRO_BENCHMARKS to the benchmarks "
            "directory)",
            file=sys.stderr,
        )
        return 1
    module_spec = importlib.util.spec_from_file_location(
        "repro_bench_suite", suite_path
    )
    suite = importlib.util.module_from_spec(module_spec)
    # dataclasses resolves string annotations through sys.modules
    sys.modules[module_spec.name] = suite
    module_spec.loader.exec_module(suite)
    argv: List[str] = list(args.names)
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    if args.profile:
        argv.append("--profile")
    if args.list_benchmarks:
        argv.append("--list")
    if args.out:
        argv += ["--out", args.out]
    argv += ["--repeats", str(args.repeats)]
    return suite.main(argv)


def _workload_names() -> List[str]:
    from .workloads import available_workloads

    return available_workloads()


def _policy_names() -> List[str]:
    from .simulation import available_policies

    return available_policies()


def _metric_names() -> List[str]:
    from .core import available_metrics

    return available_metrics()


def _backend_names() -> List[str]:
    from .core.profiles import backend_details

    return backend_details()


def _lint_rule_names() -> List[str]:
    from .devtools.lint import RULES

    return [f"{rule.code} ({rule.name}): {rule.summary}" for rule in RULES]


def _failpoint_names() -> List[str]:
    from .devtools import failpoints

    return failpoints.describe()


def _uncertainty_names() -> List[str]:
    from .workloads.uncertainty import available_uncertainty_models

    return available_uncertainty_models()


#: ``repro list --kind`` dispatch; the argparse choices derive from this.
_LIST_LOADERS = {
    "algorithms": available_schedulers,
    "workloads": _workload_names,
    "policies": _policy_names,
    "metrics": _metric_names,
    "backends": _backend_names,
    "lint-rules": _lint_rule_names,
    "failpoints": _failpoint_names,
    "uncertainty-models": _uncertainty_names,
}

_LIST_KINDS = tuple(_LIST_LOADERS)


def _list_names(kind: str) -> List[str]:
    return _LIST_LOADERS[kind]()


def _cmd_list(args) -> int:
    if args.kind == "all":
        for kind in _LIST_KINDS:
            print(f"{kind}:")
            for name in _list_names(kind):
                print(f"  {name}")
        return 0
    for name in _list_names(args.kind):
        print(name)
    return 0


def _cmd_lint(args) -> int:
    from .devtools.lint.cli import run as run_lint_cli

    return run_lint_cli(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scheduling rigid parallel jobs with reservations "
            "(IPDPS'07 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="run an algorithm on an instance")
    p.add_argument("instance", help="instance JSON file")
    p.add_argument("-a", "--algorithm", default="lsrc")
    p.add_argument("-o", "--output", help="write schedule JSON here")
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("optimal", help="exact branch-and-bound")
    p.add_argument("instance")
    p.add_argument("-o", "--output")
    p.add_argument("--node-limit", type=int, default=2_000_000)
    p.set_defaults(func=_cmd_optimal)

    p = sub.add_parser("bounds", help="Figure 4 bound values")
    p.add_argument("alpha", nargs="+", help="e.g. 0.5 or 2/3")
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser("figure", help="regenerate a paper figure (1-4)")
    p.add_argument("number", type=int)
    p.add_argument("--k", type=int, default=3, help="family parameter")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--empirical", action="store_true",
                   help="overlay measured ratios (figure 4) via the Runner")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for --empirical")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("generate", help="generate a workload instance")
    p.add_argument("-n", "--jobs", type=int, default=20)
    p.add_argument("-m", "--machines", type=int, default=16)
    p.add_argument("--model", choices=["uniform", "feitelson"],
                   default="uniform")
    p.add_argument("--alpha", help="add alpha-budgeted reservations")
    p.add_argument("--reservations", type=int, default=4)
    p.add_argument("--horizon", type=float, default=200.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("gantt", help="render a schedule JSON")
    p.add_argument("schedule")
    p.add_argument("--width", type=int, default=78)
    p.add_argument("--svg", help="also write an SVG here")
    p.set_defaults(func=_cmd_gantt)

    p = sub.add_parser("simulate", help="online simulation")
    p.add_argument("instance")
    p.add_argument(
        "-p", "--policy", default="greedy",
        help="registered policy name (see 'repro list --kind policies')",
    )
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("swf", help="convert an SWF trace")
    p.add_argument("trace")
    p.add_argument("-m", "--machines", type=int)
    p.add_argument("--max-jobs", type=int)
    p.add_argument("--offline", action="store_true",
                   help="drop submit times")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_swf)

    p = sub.add_parser(
        "replay",
        help="stream an SWF trace (or synth:<profile>[:<n>]) through the "
             "rolling-horizon replay engine",
    )
    p.add_argument("trace",
                   help="trace path (.swf or .swf.gz), or synth:<profile>"
                        "[:<n>] for the deterministic scenario pack")
    p.add_argument(
        "-p", "--policy", default="easy",
        help="registered policy name, or a comma-separated list to "
             "replay several policies (see 'repro list --kind policies')",
    )
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes: multi-policy replay shards one "
                        "worker per policy; a single-policy replay shards "
                        "the trace itself into N time epochs (output is "
                        "byte-identical to serial either way)")
    p.add_argument("-m", "--machines", type=int,
                   help="machine size (default: the trace's MaxProcs "
                        "header; 256 for synthetic profiles)")
    p.add_argument("--window", type=int, default=10_000,
                   help="jobs per metrics window (0 disables windows)")
    p.add_argument("--max-jobs", type=int,
                   help="stop after this many jobs")
    p.add_argument("--backend", default="auto",
                   help="profile backend (default: auto — the int64 "
                        "array kernel, demoting to 'list' on "
                        "non-integral traces)")
    p.add_argument("--batch", dest="batch", action="store_true",
                   default=None,
                   help="force the batched columnar decision engine "
                        "(default: auto — on whenever numpy and the "
                        "array kernel are available)")
    p.add_argument("--no-batch", dest="batch", action="store_false",
                   help="pin the scalar fused engine (the A/B baseline)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for synth:<profile> traces")
    p.add_argument("--uncertainty", metavar="SPEC",
                   help="runtime-uncertainty model model[:key=value]*, "
                        "e.g. lognormal:sigma=0.5:overrun=grace — the "
                        "policy plans with estimated runtimes while jobs "
                        "complete at drawn actuals, with stochastic "
                        "failure/requeue (see 'repro list --kind "
                        "uncertainty-models')")
    p.add_argument("-o", "--out",
                   help="JSONL store for window rows + totals")
    p.add_argument("--journal", metavar="DIR",
                   help="durable journal directory: window rows and "
                        "periodic checkpoints are logged so a killed run "
                        "resumes byte-identically with --resume "
                        "(single policy, --jobs 1)")
    p.add_argument("--resume", action="store_true",
                   help="resume a journaled run from its latest "
                        "committed snapshot (requires --journal)")
    p.add_argument("--snapshot-interval", type=int, default=None,
                   metavar="N",
                   help="jobs replayed between journal snapshots "
                        "(default 100000)")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "serve",
        help="scheduler-as-a-service daemon: a live SchedulerCore "
             "behind a local HTTP/JSON API, event-sourced through a "
             "journal (repro-serve/1; kill-anywhere recoverable)",
    )
    p.add_argument("journal", metavar="DIR",
                   help="journal directory — the daemon's durable truth "
                        "(fresh for a new service, existing with --resume)")
    p.add_argument("--resume", action="store_true",
                   help="recover a killed service from its journal "
                        "(configuration comes from the journal header)")
    p.add_argument("-m", "--machines", type=int, default=None,
                   help="machine size (required unless --resume)")
    p.add_argument("-p", "--policy", default=None,
                   help="registered policy name (default: easy)")
    p.add_argument("--window", type=int, default=None,
                   help="jobs per metrics window (default 0: no windows)")
    p.add_argument("--snapshot-interval", type=int, default=None,
                   metavar="N",
                   help="accepted ops between journal snapshots "
                        "(default 256)")
    p.add_argument("--uncertainty", metavar="SPEC", default=None,
                   help="runtime-uncertainty model model[:key=value]* "
                        "applied to submitted jobs and reservations "
                        "(journaled; --resume restores it from the "
                        "header)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1 — local only)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (default 0: pick an ephemeral port)")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port here once listening "
                        "(for scripts driving an ephemeral port)")
    p.add_argument("--fsync", action="store_true",
                   help="fsync every journal record (survive power loss, "
                        "not just kill -9)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("info", help="characterize a workload")
    p.add_argument("instance")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("run", help="execute an experiment spec JSON")
    p.add_argument("spec", help="spec JSON file (format repro-spec/1)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes (1 = in-process)")
    p.add_argument("-o", "--out",
                   help="JSONL row store (default: <spec>.results.jsonl)")
    p.add_argument("--fresh", action="store_true",
                   help="delete the store first instead of resuming")
    p.add_argument("--summary-metric", default="ratio_lb",
                   help="metric aggregated in the printed table")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="no progress counter")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "bench",
        help="run registered benchmarks (see benchmarks/suite.py)",
    )
    p.add_argument("names", nargs="*", metavar="name",
                   help="benchmark names; 'all' for everything, default "
                        "runs the JSON harness benchmarks")
    p.add_argument("--quick", action="store_true",
                   help="small sizes for CI smoke runs")
    p.add_argument("--check", action="store_true",
                   help="fail on >1.5x speedup regression vs checked-in "
                        "BENCH_*.json baselines")
    p.add_argument("--profile", action="store_true",
                   help="wrap the benched scenario in cProfile and print "
                        "the top-20 cumulative functions")
    p.add_argument("--repeats", type=int, default=1,
                   help="best-of-N timing")
    p.add_argument("--out", help="directory for result JSONs")
    p.add_argument("--list", dest="list_benchmarks", action="store_true",
                   help="list registered benchmarks and exit")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "list",
        help="list registered algorithms, workloads, policies, metrics",
    )
    p.add_argument(
        "--kind", choices=_LIST_KINDS + ("all",), default="algorithms",
        help="which registry to list (default: algorithms)",
    )
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser(
        "lint",
        help="AST invariant checks: determinism, int-grid exactness, "
             "backend-protocol drift (rules: repro list --kind lint-rules)",
    )
    from .devtools.lint.cli import build_parser as _build_lint_parser

    _build_lint_parser(p)
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
