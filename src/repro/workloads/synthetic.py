"""Synthetic rigid-job workload generators.

Randomised instances for the empirical benchmarks.  Every generator takes
an explicit ``seed`` and returns plain instances from :mod:`repro.core`;
distributions follow the stylised facts of parallel workloads (see
:mod:`repro.workloads.feitelson` for the model-based generator):

* processor requirements are small-biased with a bump at powers of two;
* runtimes are log-uniform-ish (heavy right tail);
* optional Poisson release times for online experiments.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..core.instance import RigidInstance
from ..core.job import Job
from ..errors import InvalidInstanceError


def uniform_instance(
    n: int,
    m: int,
    p_range=(1, 100),
    q_range=(1, None),
    seed: int = 0,
    name: str = "",
) -> RigidInstance:
    """Jobs with integer ``p ~ U[p_range]`` and ``q ~ U[q_range]``.

    ``q_range[1]`` defaults to ``m``.  Integer times keep schedule algebra
    exact in the tests.
    """
    if n < 0:
        raise InvalidInstanceError("n must be >= 0")
    rng = random.Random(seed)
    q_lo, q_hi = q_range
    q_hi = m if q_hi is None else q_hi
    if not 1 <= q_lo <= q_hi <= m:
        raise InvalidInstanceError(
            f"invalid q_range {q_range!r} for m = {m}"
        )
    p_lo, p_hi = p_range
    if not 0 < p_lo <= p_hi:
        raise InvalidInstanceError(f"invalid p_range {p_range!r}")
    jobs = [
        Job(id=i, p=rng.randint(p_lo, p_hi), q=rng.randint(q_lo, q_hi))
        for i in range(n)
    ]
    return RigidInstance(m=m, jobs=tuple(jobs), name=name or f"uniform(n={n},m={m})")


def loguniform_instance(
    n: int,
    m: int,
    p_max: float = 1000.0,
    seed: int = 0,
    name: str = "",
) -> RigidInstance:
    """Log-uniform runtimes in ``[1, p_max]``, power-of-two-biased widths.

    Mimics the heavy-tailed runtimes of production traces: most jobs are
    short, a few are very long.
    """
    if p_max <= 1:
        raise InvalidInstanceError("p_max must exceed 1")
    rng = random.Random(seed)
    jobs = []
    for i in range(n):
        p = math.exp(rng.uniform(0.0, math.log(p_max)))
        q = _pow2_biased_width(rng, m)
        jobs.append(Job(id=i, p=p, q=q))
    return RigidInstance(
        m=m, jobs=tuple(jobs), name=name or f"loguniform(n={n},m={m})"
    )


def _pow2_biased_width(rng: random.Random, m: int, alpha_cap: Optional[float] = None) -> int:
    """Width sampler: log-uniform in ``[1, cap]`` and snapped to a power of
    two with probability 0.75 (the classical observation that users ask
    for powers of two)."""
    cap = m if alpha_cap is None else max(1, int(alpha_cap * m))
    raw = math.exp(rng.uniform(0.0, math.log(cap))) if cap > 1 else 1.0
    q = max(1, min(cap, int(round(raw))))
    if rng.random() < 0.75:
        # snap to the nearest power of two within [1, cap]
        exp = max(0, int(round(math.log2(q))))
        q = min(cap, 2**exp)
    return max(1, q)


def alpha_constrained_instance(
    n: int,
    m: int,
    alpha,
    p_range=(1, 100),
    seed: int = 0,
    name: str = "",
) -> RigidInstance:
    """Jobs whose widths respect the α-restriction ``q_i <= α m``.

    Combine with
    :func:`repro.workloads.reservations.random_alpha_reservations` to get
    full α-RESASCHEDULING instances (Section 4.2).
    """
    if not 0 < alpha <= 1:
        raise InvalidInstanceError(f"alpha must lie in (0, 1], got {alpha!r}")
    cap = int(alpha * m)
    if cap < 1:
        raise InvalidInstanceError(
            f"alpha = {alpha} leaves no width for jobs on m = {m}"
        )
    rng = random.Random(seed)
    p_lo, p_hi = p_range
    jobs = [
        Job(
            id=i,
            p=rng.randint(p_lo, p_hi),
            q=_pow2_biased_width(rng, m, alpha_cap=alpha),
        )
        for i in range(n)
    ]
    return RigidInstance(
        m=m,
        jobs=tuple(jobs),
        name=name or f"alpha-jobs(n={n},m={m},alpha={alpha})",
    )


def with_poisson_releases(
    instance: RigidInstance, rate: float, seed: int = 0
) -> RigidInstance:
    """Copy of ``instance`` with Poisson-process release times.

    Inter-arrival times are exponential with the given ``rate`` (jobs per
    unit time); job order follows the instance order, matching how a
    submission queue fills up.
    """
    if rate <= 0:
        raise InvalidInstanceError("arrival rate must be positive")
    rng = random.Random(seed)
    t = 0.0
    jobs: List[Job] = []
    for job in instance.jobs:
        t += rng.expovariate(rate)
        jobs.append(job.with_release(t))
    return instance.with_jobs(jobs)


def small_exact_instance(
    n: int,
    m: int,
    p_max: int = 8,
    seed: int = 0,
) -> RigidInstance:
    """Tiny integer instances for exact-solver cross-checks (``n <= 8``)."""
    if n > 8:
        raise InvalidInstanceError("small_exact_instance is for n <= 8")
    rng = random.Random(seed)
    jobs = [
        Job(id=i, p=rng.randint(1, p_max), q=rng.randint(1, m))
        for i in range(n)
    ]
    return RigidInstance(m=m, jobs=tuple(jobs), name=f"small(n={n},m={m})")
