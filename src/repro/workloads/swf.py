"""Standard Workload Format (SWF) trace I/O.

Production cluster schedulers — the paper's application context — are
evaluated on traces in Feitelson's Standard Workload Format: one line per
job with 18 whitespace-separated fields.  We implement a reader and
writer for the fields the rigid-job model uses:

====  ==========================  =========================
#     SWF field                   used as
====  ==========================  =========================
1     job number                  job id
2     submit time                 release
4     run time                    p   (fallback: requested time, field 9)
5     allocated processors        q   (fallback: requested procs, field 8)
====  ==========================  =========================

Lines starting with ``;`` are header comments; ``-1`` marks missing
values.  Jobs without a usable runtime or processor count are skipped and
reported.  The writer emits well-formed SWF that this reader (and other
SWF tools) can parse back.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, TextIO, Tuple, Union

from ..core.instance import RigidInstance
from ..core.job import Job
from ..errors import TraceFormatError

#: Number of data fields in an SWF record.
SWF_FIELDS = 18


@dataclass
class SWFReadReport:
    """Outcome of parsing an SWF stream."""

    instance: RigidInstance
    skipped: List[Tuple[int, str]] = field(default_factory=list)
    header: List[str] = field(default_factory=list)


def _parse_swf_number(token: str):
    """SWF numbers may be integers or decimals; ``-1`` means missing."""
    try:
        value = float(token)
    except ValueError as exc:
        raise TraceFormatError(f"malformed SWF number {token!r}") from exc
    if value == int(value):
        return int(value)
    return value


def read_swf(
    source: Union[str, TextIO],
    m: Optional[int] = None,
    max_jobs: Optional[int] = None,
    use_release: bool = True,
) -> SWFReadReport:
    """Parse SWF text (string or file object) into a rigid instance.

    Parameters
    ----------
    m:
        Machine size.  When omitted it is taken from a
        ``; MaxProcs:`` header line, or defaults to the maximum allocated
        processor count seen.
    max_jobs:
        Stop after this many parsed jobs (trace truncation for quick
        experiments).
    use_release:
        Keep submit times as release times; with ``False`` the trace is
        flattened into an offline instance.
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    header: List[str] = []
    skipped: List[Tuple[int, str]] = []
    jobs: List[Job] = []
    header_maxprocs: Optional[int] = None
    min_submit: Optional[float] = None
    raw_rows: List[Tuple[int, float, object, int]] = []
    for lineno, line in enumerate(stream, start=1):
        text = line.strip()
        if not text:
            continue
        if text.startswith(";"):
            header.append(text)
            body = text.lstrip("; \t")
            if body.lower().startswith("maxprocs:"):
                try:
                    header_maxprocs = int(body.split(":", 1)[1].strip())
                except ValueError:
                    pass
            continue
        tokens = text.split()
        if len(tokens) < 5:
            skipped.append((lineno, "fewer than 5 fields"))
            continue
        try:
            job_no = int(_parse_swf_number(tokens[0]))
            submit = _parse_swf_number(tokens[1])
            runtime = _parse_swf_number(tokens[3])
            procs = _parse_swf_number(tokens[4])
            if runtime in (-1, 0) and len(tokens) > 8:
                runtime = _parse_swf_number(tokens[8])  # requested time
            if procs == -1 and len(tokens) > 7:
                procs = _parse_swf_number(tokens[7])  # requested procs
        except TraceFormatError as exc:
            skipped.append((lineno, str(exc)))
            continue
        if runtime is None or runtime <= 0:
            skipped.append((lineno, f"unusable runtime {runtime!r}"))
            continue
        if procs is None or procs <= 0:
            skipped.append((lineno, f"unusable processor count {procs!r}"))
            continue
        if submit < 0:
            submit = 0
        min_submit = submit if min_submit is None else min(min_submit, submit)
        raw_rows.append((job_no, submit, runtime, int(procs)))
        if max_jobs is not None and len(raw_rows) >= max_jobs:
            break
    if not raw_rows:
        raise TraceFormatError("SWF stream contains no usable jobs")
    machine = m if m is not None else header_maxprocs
    if machine is None:
        machine = max(q for (_, _, _, q) in raw_rows)
    base = min_submit or 0
    seen_ids = set()
    for job_no, submit, runtime, procs in raw_rows:
        jid = job_no
        while jid in seen_ids:  # duplicated job numbers occur in real traces
            jid = f"{jid}+"
        seen_ids.add(jid)
        if procs > machine:
            skipped.append(
                (job_no, f"width {procs} exceeds machine {machine}; clipped")
            )
            procs = machine
        jobs.append(
            Job(
                id=jid,
                p=runtime,
                q=procs,
                release=(submit - base) if use_release else 0,
            )
        )
    instance = RigidInstance(m=machine, jobs=tuple(jobs), name="swf-trace")
    return SWFReadReport(instance=instance, skipped=skipped, header=header)


def write_swf(instance: RigidInstance, target: Optional[TextIO] = None) -> str:
    """Serialise an instance to SWF text; returns the text (and writes to
    ``target`` when given).  Missing fields are emitted as ``-1``."""
    out = io.StringIO()
    out.write("; Generated by repro (IPDPS'07 reservations reproduction)\n")
    out.write(f"; MaxProcs: {instance.m}\n")
    out.write(f"; Note: {len(instance.jobs)} jobs\n")
    for idx, job in enumerate(
        sorted(instance.jobs, key=lambda j: (j.release, str(j.id))), start=1
    ):
        fields = [-1] * SWF_FIELDS
        fields[0] = idx
        fields[1] = job.release
        fields[2] = 0  # wait time
        fields[3] = job.p
        fields[4] = job.q
        fields[7] = job.q  # requested processors
        fields[8] = job.p  # requested time
        out.write(" ".join(_fmt(v) for v in fields) + "\n")
    text = out.getvalue()
    if target is not None:
        target.write(text)
    return text


def _fmt(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


#: A small embedded trace (8 jobs on 32 processors) used by tests and the
#: quickstart example; the format mirrors real SWF archives.
SAMPLE_SWF = """\
; Sample trace for the repro library
; MaxProcs: 32
; Jobs below: number submit wait run procs avgcpu mem reqprocs reqtime ...
1 0 0 120 4 -1 -1 4 150 -1 1 1 1 1 1 -1 -1 -1
2 10 0 60 8 -1 -1 8 80 -1 1 1 1 1 1 -1 -1 -1
3 25 0 300 16 -1 -1 16 360 -1 1 1 1 2 1 -1 -1 -1
4 30 5 45 1 -1 -1 1 60 -1 1 1 2 1 1 -1 -1 -1
5 42 0 600 32 -1 -1 32 700 -1 1 1 2 3 1 -1 -1 -1
6 55 12 90 2 -1 -1 2 100 -1 1 1 3 1 1 -1 -1 -1
7 61 0 15 4 -1 -1 4 20 -1 1 1 3 2 1 -1 -1 -1
8 70 3 200 8 -1 -1 8 240 -1 1 1 4 1 1 -1 -1 -1
"""
