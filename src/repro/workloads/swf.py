"""Standard Workload Format (SWF) trace I/O.

Production cluster schedulers — the paper's application context — are
evaluated on traces in Feitelson's Standard Workload Format: one line per
job with 18 whitespace-separated fields.  We implement a reader and
writer for the fields the rigid-job model uses:

====  ==========================  =========================
#     SWF field                   used as
====  ==========================  =========================
1     job number                  job id
2     submit time                 release
4     run time                    p   (fallback: requested time, field 9)
5     allocated processors        q   (fallback: requested procs, field 8)
====  ==========================  =========================

Lines starting with ``;`` are header comments; ``-1`` marks missing
values.  Jobs without a usable runtime or processor count are skipped and
reported.  The writer emits well-formed SWF that this reader (and other
SWF tools) can parse back.

Two readers share one line parser, so they cannot drift:

* :func:`read_swf` materialises the whole trace into a
  :class:`~repro.core.instance.RigidInstance` — right for paper-scale
  experiments where the instance fits in memory;
* :func:`iter_swf` returns a :class:`SWFStream` — a single-pass,
  constant-memory iterator of :class:`~repro.core.job.Job` arrivals in
  submit order, reading the file (plain or gzip) in bounded chunks.  It
  is the ingestion side of the rolling-horizon replay engine
  (:mod:`repro.simulation.replay`) and scales to multi-million-job
  archive traces that must never be held in memory at once.

For benchmarks and CI there is also a deterministic synthetic scenario
pack (:func:`synth_swf_jobs`): three named trace profiles at parametric
scale whose prefixes agree across scales, so a 100k-job run is literally
a prefix of the 1M-job run of the same profile and seed.
"""

from __future__ import annotations

import gzip
import io
import math
import os
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    TextIO,
    Tuple,
    Union,
)

from ..core.instance import RigidInstance
from ..core.job import Job
from ..errors import TraceFormatError

#: Number of data fields in an SWF record.
SWF_FIELDS = 18

#: ``readlines`` size hint of the streaming reader: lines are pulled in
#: chunks of roughly this many bytes, so memory stays constant however
#: long the trace is.
STREAM_CHUNK_BYTES = 1 << 20

#: The named profiles of the synthetic trace pack (see :func:`synth_swf_jobs`).
SYNTH_PROFILES = ("steady", "bursty", "heavy")


@dataclass
class SWFReadReport:
    """Outcome of parsing an SWF stream."""

    instance: RigidInstance
    skipped: List[Tuple[int, str]] = field(default_factory=list)
    header: List[str] = field(default_factory=list)


def _parse_swf_number(token: str):
    """SWF numbers may be integers or decimals; ``-1`` means missing.

    Non-finite values (``nan``, ``inf`` — which ``float()`` happily
    accepts) are malformed: a NaN runtime would silently poison every
    comparison downstream, so they are rejected as loudly as unparseable
    tokens.
    """
    try:
        value = float(token)
    except ValueError as exc:
        raise TraceFormatError(f"malformed SWF number {token!r}") from exc
    if not math.isfinite(value):
        raise TraceFormatError(f"non-finite SWF number {token!r}")
    if value == int(value):
        return int(value)
    return value


def _parse_swf_data_line(tokens: List[str]):
    """Parse one data line into ``(job_no, submit, runtime, procs)``.

    Returns ``(row, None)`` on success and ``(None, reason)`` for a line
    that must be skipped.  Both :func:`read_swf` and :class:`SWFStream`
    go through here, so the readers agree field for field.
    """
    if len(tokens) < 5:
        return None, "fewer than 5 fields"
    try:
        job_no = int(_parse_swf_number(tokens[0]))
        submit = _parse_swf_number(tokens[1])
        runtime = _parse_swf_number(tokens[3])
        procs = _parse_swf_number(tokens[4])
        if runtime in (-1, 0) and len(tokens) > 8:
            runtime = _parse_swf_number(tokens[8])  # requested time
        if procs == -1 and len(tokens) > 7:
            procs = _parse_swf_number(tokens[7])  # requested procs
    except TraceFormatError as exc:
        return None, str(exc)
    if runtime is None or runtime <= 0:
        return None, f"unusable runtime {runtime!r}"
    if procs is None or procs <= 0:
        return None, f"unusable processor count {procs!r}"
    if submit < 0:
        submit = 0
    return (job_no, submit, runtime, int(procs)), None


def _header_maxprocs(text: str) -> Optional[int]:
    """The ``; MaxProcs:`` value of a header line, if this is one."""
    body = text.lstrip("; \t")
    if body.lower().startswith("maxprocs:"):
        try:
            return int(body.split(":", 1)[1].strip())
        except ValueError:
            return None
    return None


def read_swf(
    source: Union[str, TextIO],
    m: Optional[int] = None,
    max_jobs: Optional[int] = None,
    use_release: bool = True,
) -> SWFReadReport:
    """Parse SWF text (string or file object) into a rigid instance.

    Parameters
    ----------
    m:
        Machine size.  When omitted it is taken from a
        ``; MaxProcs:`` header line, or defaults to the maximum allocated
        processor count seen.
    max_jobs:
        Stop after this many parsed jobs (trace truncation for quick
        experiments).
    use_release:
        Keep submit times as release times; with ``False`` the trace is
        flattened into an offline instance.
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    header: List[str] = []
    skipped: List[Tuple[int, str]] = []
    jobs: List[Job] = []
    header_maxprocs: Optional[int] = None
    min_submit: Optional[float] = None
    raw_rows: List[Tuple[int, float, object, int]] = []
    for lineno, line in enumerate(stream, start=1):
        text = line.strip()
        if not text:
            continue
        if text.startswith(";"):
            header.append(text)
            maxprocs = _header_maxprocs(text)
            if maxprocs is not None:
                header_maxprocs = maxprocs
            continue
        row, reason = _parse_swf_data_line(text.split())
        if row is None:
            skipped.append((lineno, reason))
            continue
        _, submit, _, _ = row
        min_submit = submit if min_submit is None else min(min_submit, submit)
        raw_rows.append(row)
        if max_jobs is not None and len(raw_rows) >= max_jobs:
            break
    if not raw_rows:
        raise TraceFormatError("SWF stream contains no usable jobs")
    machine = m if m is not None else header_maxprocs
    if machine is None:
        machine = max(q for (_, _, _, q) in raw_rows)
    base = min_submit or 0
    seen_ids = set()
    for job_no, submit, runtime, procs in raw_rows:
        jid = job_no
        while jid in seen_ids:  # duplicated job numbers occur in real traces
            jid = f"{jid}+"
        seen_ids.add(jid)
        if procs > machine:
            skipped.append(
                (job_no, f"width {procs} exceeds machine {machine}; clipped")
            )
            procs = machine
        jobs.append(
            Job(
                id=jid,
                p=runtime,
                q=procs,
                release=(submit - base) if use_release else 0,
            )
        )
    instance = RigidInstance(m=machine, jobs=tuple(jobs), name="swf-trace")
    return SWFReadReport(instance=instance, skipped=skipped, header=header)


# ---------------------------------------------------------------------------
# streaming reader
# ---------------------------------------------------------------------------

class _IdIntervals:
    """A set of ints stored as disjoint inclusive intervals.

    Real traces number their jobs (nearly) sequentially, so the seen-id
    set of a million-job trace collapses to a handful of intervals —
    duplicate detection stays exact while memory stays constant, which a
    plain ``set`` cannot offer the streaming reader.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self):
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __contains__(self, value: int) -> bool:
        i = bisect_right(self._starts, value) - 1
        return i >= 0 and value <= self._ends[i]

    def add(self, value: int) -> None:
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, value) - 1
        if i >= 0 and value <= self._ends[i]:
            return
        join_left = i >= 0 and ends[i] == value - 1
        join_right = i + 1 < len(starts) and starts[i + 1] == value + 1
        if join_left and join_right:
            ends[i] = ends[i + 1]
            del starts[i + 1]
            del ends[i + 1]
        elif join_left:
            ends[i] = value
        elif join_right:
            starts[i + 1] = value
        else:
            starts.insert(i + 1, value)
            ends.insert(i + 1, value)


class SWFStream:
    """A single-pass, constant-memory iterator over an SWF trace.

    Yields :class:`~repro.core.job.Job` objects in submit order with
    release times rebased to the first usable job's submit time (the
    same rebasing :func:`read_swf` applies to sorted traces).  The file
    is read in bounded chunks (:data:`STREAM_CHUNK_BYTES`), so peak
    memory is independent of trace length; ``.gz`` paths are
    decompressed on the fly.

    Streaming differs from :func:`read_swf` exactly where whole-file
    knowledge would be required:

    * the machine size must come from ``m=`` or a ``; MaxProcs:`` header
      (it cannot be inferred from data not yet read);
    * lines whose submit time goes backwards are skipped and reported
      (the SWF standard orders traces by submit time; a streaming
      replay cannot re-sort the past);
    * skip reports are capped at ``max_skip_reports`` entries
      (``n_skipped`` always counts all of them).

    Attributes are populated as the stream is consumed: ``header``,
    ``skipped`` / ``n_skipped`` (lines *dropped* from the stream),
    ``clipped`` / ``n_clipped`` (jobs yielded with their width clipped
    to the machine — reported separately because they *are* replayed),
    ``m`` (resolved machine size), ``base`` (the rebasing offset) and
    ``jobs_yielded``.  Report entries are ``(lineno, reason)`` pairs.
    """

    def __init__(
        self,
        source: Union[str, os.PathLike, TextIO],
        m: Optional[int] = None,
        max_jobs: Optional[int] = None,
        max_skip_reports: int = 1000,
    ):
        self._source = source
        self.m = m
        self.max_jobs = max_jobs
        self.max_skip_reports = max_skip_reports
        self.header: List[str] = []
        self.skipped: List[Tuple[int, str]] = []
        self.n_skipped = 0
        self.clipped: List[Tuple[int, str]] = []
        self.n_clipped = 0
        self.base = None
        self.jobs_yielded = 0
        self._consumed = False

    # -- plumbing ---------------------------------------------------------
    def _open(self) -> Tuple[TextIO, bool]:
        """The text stream to read and whether we own (must close) it."""
        source = self._source
        if hasattr(source, "read"):
            return source, False
        path = os.fspath(source)
        if path.endswith(".gz"):
            return gzip.open(path, "rt"), True
        return open(path), True

    def _skip(self, lineno: int, reason: str) -> None:
        self.n_skipped += 1
        if len(self.skipped) < self.max_skip_reports:
            self.skipped.append((lineno, reason))

    def _clip(self, lineno: int, reason: str) -> None:
        self.n_clipped += 1
        if len(self.clipped) < self.max_skip_reports:
            self.clipped.append((lineno, reason))

    # -- iteration --------------------------------------------------------
    def __iter__(self) -> Iterator[Job]:
        if self._consumed:
            raise TraceFormatError(
                "SWF stream is single-pass; create a new one with iter_swf()"
            )
        self._consumed = True
        fh, owned = self._open()
        try:
            yield from self._iter_jobs(fh)
        finally:
            if owned:
                fh.close()
        if self.jobs_yielded == 0:
            raise TraceFormatError("SWF stream contains no usable jobs")

    def _iter_jobs(self, fh: TextIO) -> Iterator[Job]:
        int_ids = _IdIntervals()
        renamed_ids = set()
        last_submit = None
        lineno = 0
        while True:
            lines = fh.readlines(STREAM_CHUNK_BYTES)
            if not lines:
                return
            for line in lines:
                lineno += 1
                text = line.strip()
                if not text:
                    continue
                if text.startswith(";"):
                    self.header.append(text)
                    if self.m is None:
                        self.m = _header_maxprocs(text)
                    continue
                row, reason = _parse_swf_data_line(text.split())
                if row is None:
                    self._skip(lineno, reason)
                    continue
                job_no, submit, runtime, procs = row
                if self.m is None:
                    raise TraceFormatError(
                        "machine size unknown: streaming needs m= or a "
                        "'; MaxProcs:' header before the first data line"
                    )
                if last_submit is not None and submit < last_submit:
                    self._skip(
                        lineno,
                        f"submit time {submit} goes backwards "
                        f"(previous was {last_submit})",
                    )
                    continue
                last_submit = submit
                if self.base is None:
                    self.base = submit
                jid: object = job_no
                if job_no in int_ids:
                    jid = f"{job_no}+"
                    while jid in renamed_ids:
                        jid = f"{jid}+"
                    renamed_ids.add(jid)
                else:
                    int_ids.add(job_no)
                if procs > self.m:
                    self._clip(
                        lineno,
                        f"job {job_no}: width {procs} exceeds machine "
                        f"{self.m}; clipped",
                    )
                    procs = self.m
                self.jobs_yielded += 1
                yield Job(id=jid, p=runtime, q=procs, release=submit - self.base)
                if (
                    self.max_jobs is not None
                    and self.jobs_yielded >= self.max_jobs
                ):
                    return


def iter_swf(
    source: Union[str, os.PathLike, TextIO],
    m: Optional[int] = None,
    max_jobs: Optional[int] = None,
    max_skip_reports: int = 1000,
) -> SWFStream:
    """Open an SWF trace for constant-memory streaming.

    ``source`` is a path (``.gz`` is decompressed on the fly) or an open
    text stream.  Returns a single-pass :class:`SWFStream`; iterate it to
    get :class:`~repro.core.job.Job` arrivals in submit order.

    >>> for job in iter_swf("trace.swf.gz", m=256):   # doctest: +SKIP
    ...     feed(job)
    """
    return SWFStream(
        source, m=m, max_jobs=max_jobs, max_skip_reports=max_skip_reports
    )


# ---------------------------------------------------------------------------
# writers
# ---------------------------------------------------------------------------

def write_swf(instance: RigidInstance, target: Optional[TextIO] = None) -> str:
    """Serialise an instance to SWF text; returns the text (and writes to
    ``target`` when given).  Missing fields are emitted as ``-1``."""
    out = io.StringIO()
    write_swf_jobs(
        sorted(instance.jobs, key=lambda j: (j.release, str(j.id))),
        instance.m,
        out,
        note=f"{len(instance.jobs)} jobs",
    )
    text = out.getvalue()
    if target is not None:
        target.write(text)
    return text


def write_swf_jobs(
    jobs: Iterable[Job], m: int, target: TextIO, note: str = ""
) -> int:
    """Stream jobs (already in submit order) to ``target`` as SWF lines.

    The incremental twin of :func:`write_swf`: nothing is buffered, so an
    arbitrarily long generator (e.g. :func:`synth_swf_jobs`) writes in
    constant memory.  Returns the number of jobs written.
    """
    target.write("; Generated by repro (IPDPS'07 reservations reproduction)\n")
    target.write(f"; MaxProcs: {m}\n")
    if note:
        target.write(f"; Note: {note}\n")
    count = 0
    for count, job in enumerate(jobs, start=1):
        fields = [-1] * SWF_FIELDS
        fields[0] = count
        fields[1] = job.release
        fields[2] = 0  # wait time
        fields[3] = job.p
        fields[4] = job.q
        fields[7] = job.q  # requested processors
        fields[8] = job.p  # requested time
        target.write(" ".join(_fmt(v) for v in fields) + "\n")
    return count


def save_swf_trace(path: Union[str, os.PathLike], jobs: Iterable[Job],
                   m: int, note: str = "") -> int:
    """Write a job stream to an SWF file (gzipped when the path ends in
    ``.gz``); returns the number of jobs written."""
    path = os.fspath(path)
    if path.endswith(".gz"):
        with gzip.open(path, "wt") as fh:
            return write_swf_jobs(jobs, m, fh, note=note)
    with open(path, "w") as fh:
        return write_swf_jobs(jobs, m, fh, note=note)


def _fmt(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


# ---------------------------------------------------------------------------
# the synthetic trace pack
# ---------------------------------------------------------------------------

def synth_swf_jobs(profile: str, n: int, m: int = 256,
                   seed: int = 0) -> Iterator[Job]:
    """Yield ``n`` jobs of a named deterministic trace profile.

    A constant-memory arrival generator with integer times (so the
    replay engine's arithmetic stays on machine ints) and power-of-two
    widths, in three load shapes:

    ==========  =========================================================
    profile     shape
    ==========  =========================================================
    steady      Poisson-like arrivals at ~70% offered load — the
                well-behaved baseline every policy should sail through
    bursty      dense same-instant bursts (4-64 jobs) separated by quiet
                gaps, ~80% load — stresses queue depth and backfilling
    heavy       ~95% load with log-heavy runtimes up to a day — the
                near-saturation regime of the paper's "heavy traffic"
                scenario class
    ==========  =========================================================

    Determinism: draws depend on ``(profile, m, seed)`` but **not** on
    ``n``, so the 100k-job trace is an exact prefix of the 1M-job trace —
    the property the bounded-memory benchmark leans on when it compares
    peak footprints across scales.
    """
    if profile not in SYNTH_PROFILES:
        raise TraceFormatError(
            f"unknown synthetic trace profile {profile!r}; "
            f"known profiles: {', '.join(SYNTH_PROFILES)}"
        )
    if n < 1:
        raise TraceFormatError("synthetic trace needs at least one job")
    if m < 2:
        raise TraceFormatError("synthetic trace needs m >= 2")
    rng = random.Random(f"synth-swf:{profile}:{m}:{seed}")
    # Bounded draws are inlined rejection sampling over getrandbits —
    # the exact algorithm (and therefore the exact bit stream) of
    # rng.randint(a, b) == a + _randbelow(b - a + 1), minus the
    # per-call randrange plumbing, which at millions of draws per
    # replay is a measurable slice of pipeline cost.  Every existing
    # trace stays bit-identical (a differential test regenerates
    # prefixes and the bench's cross-scale gates lean on it).
    getrandbits = rng.getrandbits
    make_job = Job.trusted
    # widths: powers of two up to m/4 (m/2 for heavy), biased narrow
    width_exp_max = max(1, m.bit_length() - 3)
    n_width = width_exp_max + 1
    k_width = n_width.bit_length()
    n_heavy = max(1, m.bit_length() - 2) + 1
    k_heavy = n_heavy.bit_length()
    load_pct = {"steady": 70, "bursty": 80, "heavy": 95}[profile]
    load_denom = load_pct * m
    heavy = profile == "heavy"
    bursty = profile == "bursty"
    t = 0
    burst_left = 0
    owed_area = 0
    for i in range(1, n + 1):
        if heavy:
            exp = getrandbits(k_heavy)
            while exp >= n_heavy:
                exp = getrandbits(k_heavy)
            q = min(m, 2 ** exp)
            # log-uniform runtimes: 30 s .. 1 day
            p = int(math.exp(rng.uniform(math.log(30), math.log(86_400))))
        else:
            r = getrandbits(k_width)
            while r >= n_width:
                r = getrandbits(k_width)
            q = 2 ** r
            p = getrandbits(12)  # randint(60, 3600): 3541 values
            while p >= 3541:
                p = getrandbits(12)
            p += 60
        area = p * q
        if bursty:
            if burst_left == 0:
                burst_left = getrandbits(6)  # randint(4, 64): 61 values
                while burst_left >= 61:
                    burst_left = getrandbits(6)
                burst_left += 4
                # quiet gap repaying the previous burst's backlog at the
                # target load, with +-100% jitter
                mean_gap = (owed_area * 100) // load_denom
                gap = 2 * mean_gap
                n_gap = (gap if gap > 2 else 2) + 1
                k_gap = n_gap.bit_length()
                r = getrandbits(k_gap)
                while r >= n_gap:
                    r = getrandbits(k_gap)
                t += r
                owed_area = 0
            burst_left -= 1
            owed_area += area
        else:
            # per-job gap with mean area/(load * m): offered load ~ target
            mean_gap = (area * 100) // load_denom
            gap = 2 * mean_gap
            n_gap = (gap if gap > 2 else 2) + 1
            k_gap = n_gap.bit_length()
            r = getrandbits(k_gap)
            while r >= n_gap:
                r = getrandbits(k_gap)
            t += r
        yield make_job(i, p, q, t)


def synth_swf_instance(profile: str, n: int = 1000, m: int = 256,
                       seed: int = 0) -> RigidInstance:
    """The materialised (in-memory) instance of a synthetic trace —
    the registry-facing face of the pack, for grids at paper scale."""
    return RigidInstance(
        m=m,
        jobs=tuple(synth_swf_jobs(profile, n, m=m, seed=seed)),
        name=f"swf-{profile}(n={n},m={m},seed={seed})",
    )


#: A small embedded trace (8 jobs on 32 processors) used by tests and the
#: quickstart example; the format mirrors real SWF archives.
SAMPLE_SWF = """\
; Sample trace for the repro library
; MaxProcs: 32
; Jobs below: number submit wait run procs avgcpu mem reqprocs reqtime ...
1 0 0 120 4 -1 -1 4 150 -1 1 1 1 1 1 -1 -1 -1
2 10 0 60 8 -1 -1 8 80 -1 1 1 1 1 1 -1 -1 -1
3 25 0 300 16 -1 -1 16 360 -1 1 1 1 2 1 -1 -1 -1
4 30 5 45 1 -1 -1 1 60 -1 1 1 2 1 1 -1 -1 -1
5 42 0 600 32 -1 -1 32 700 -1 1 1 2 3 1 -1 -1 -1
6 55 12 90 2 -1 -1 2 100 -1 1 1 3 1 1 -1 -1 -1
7 61 0 15 4 -1 -1 4 20 -1 1 1 3 2 1 -1 -1 -1
8 70 3 200 8 -1 -1 8 240 -1 1 1 4 1 1 -1 -1 -1
"""
