"""Name-addressable workload generators.

The experiment layer (:mod:`repro.run`) addresses workloads by name so a
JSON spec can say ``{"name": "alpha-uniform", "params": {...}}``.  Every
registered generator is a callable taking a ``seed`` keyword plus its
own parameters and returning an instance (either flavour); composite
generators pair a job model with a reservation calendar, mirroring how
the paper's experiments combine the α-restricted job mix with an
α-budgeted reservation load (Section 4.2).

Third-party generators join via :func:`register_workload`; parameters
must be JSON-encodable (numbers, strings, lists, ``Fraction`` — see
:mod:`repro.core.serialize`) so specs round-trip.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.instance import ReservationInstance, as_reservation_instance
from ..core.registry import Registry
from ..errors import InvalidInstanceError
from .feitelson import feitelson_instance
from .reservations import (
    nonincreasing_staircase,
    periodic_maintenance,
    random_alpha_reservations,
)
from .swf import SYNTH_PROFILES, synth_swf_instance
from .synthetic import (
    alpha_constrained_instance,
    loguniform_instance,
    uniform_instance,
    with_poisson_releases,
)

#: Workload generator registry: name -> ``(seed=..., **params) -> instance``.
WORKLOADS: Registry[Callable] = Registry("workload", error=InvalidInstanceError)


def register_workload(name: str, generator: Optional[Callable] = None, *,
                      overwrite: Optional[bool] = None):
    """Register a workload generator under ``name`` (usable as decorator)."""
    return WORKLOADS.register(name, generator, overwrite=overwrite)


def get_workload(name: str) -> Callable:
    """The generator registered under ``name`` (loud error otherwise)."""
    return WORKLOADS.get(name)


def available_workloads() -> List[str]:
    """Sorted names of all registered workload generators."""
    return WORKLOADS.names()


def make_workload(name: str, seed: int = 0, **params) -> ReservationInstance:
    """Build the named workload, coerced to a :class:`ReservationInstance`."""
    try:
        instance = WORKLOADS.get(name)(seed=seed, **params)
    except TypeError as exc:
        raise InvalidInstanceError(
            f"workload {name!r} rejected parameters {sorted(params)}: {exc}"
        ) from None
    return as_reservation_instance(instance)


# ---------------------------------------------------------------------------
# built-in generators
# ---------------------------------------------------------------------------

@register_workload("uniform", overwrite=True)
def _uniform(n=20, m=16, p_range=(1, 100), q_range=(1, None), seed=0):
    return uniform_instance(
        n, m, p_range=tuple(p_range), q_range=tuple(q_range), seed=seed
    )


@register_workload("loguniform", overwrite=True)
def _loguniform(n=20, m=16, p_max=1000.0, seed=0):
    return loguniform_instance(n, m, p_max=p_max, seed=seed)


@register_workload("feitelson", overwrite=True)
def _feitelson(n=20, m=16, seed=0, **model_params):
    return feitelson_instance(n, m, seed=seed, **model_params)


@register_workload("alpha-uniform", overwrite=True)
def _alpha_uniform(n=20, m=16, alpha=0.5, reservations=4, horizon=200.0,
                   p_range=(1, 100), seed=0):
    """α-restricted jobs plus an α-budgeted reservation calendar — the
    full α-RESASCHEDULING workload of the paper's Section 4.2 grids."""
    rigid = alpha_constrained_instance(
        n, m, alpha, p_range=tuple(p_range), seed=seed
    )
    calendar = random_alpha_reservations(
        m, alpha, horizon=horizon, count=reservations, seed=seed + 1
    )
    return ReservationInstance(
        m=m, jobs=rigid.jobs, reservations=calendar,
        name=f"alpha-uniform(n={n},m={m},alpha={alpha},seed={seed})",
    )


@register_workload("staircase", overwrite=True)
def _staircase(n=20, m=16, steps=3, horizon=100.0, p_range=(1, 20),
               q_range=(1, None), seed=0):
    """Uniform jobs over the non-increasing reservation staircase of
    Section 4.1 (Figure 2's shape)."""
    rigid = uniform_instance(
        n, m, p_range=tuple(p_range), q_range=tuple(q_range), seed=seed
    )
    stairs = nonincreasing_staircase(m, steps, horizon=horizon, seed=seed + 1)
    return ReservationInstance(
        m=m, jobs=rigid.jobs, reservations=stairs,
        name=f"staircase(n={n},m={m},steps={steps},seed={seed})",
    )


@register_workload("maintenance", overwrite=True)
def _maintenance(n=20, m=16, q=None, period=50, duration=10, count=4,
                 p_range=(1, 100), seed=0):
    """Uniform jobs around a periodic-maintenance calendar (Section 1.2's
    standing-reservation scenario)."""
    rigid = uniform_instance(n, m, p_range=tuple(p_range), seed=seed)
    calendar = periodic_maintenance(
        m=m, q=q if q is not None else max(1, m // 8),
        period=period, duration=duration, count=count,
    )
    return ReservationInstance(
        m=m, jobs=rigid.jobs, reservations=calendar,
        name=f"maintenance(n={n},m={m},count={count},seed={seed})",
    )


@register_workload("poisson-online", overwrite=True)
def _poisson_online(n=20, m=16, rate=0.5, p_range=(1, 100), seed=0):
    """Uniform jobs with Poisson release times — the online-policy grid
    workload (empty reservation calendar, arrivals drive the dynamics)."""
    rigid = uniform_instance(n, m, p_range=tuple(p_range), seed=seed)
    return with_poisson_releases(rigid, rate, seed=seed + 1)


def _register_synth_swf_profiles() -> None:
    # one registry name per named trace profile ("swf-steady", ...) so a
    # spec can put the scenario pack straight into its workloads factor;
    # the streaming face of the same pack is workloads.swf.synth_swf_jobs
    for profile_name in SYNTH_PROFILES:
        def _make(n=1000, m=256, seed=0, *, _profile=profile_name):
            return synth_swf_instance(_profile, n=n, m=m, seed=seed)

        _make.__doc__ = (
            f"Materialised {profile_name!r} synthetic SWF trace "
            f"(see repro.workloads.swf.synth_swf_jobs)."
        )
        # one name per SYNTH_PROFILES entry; the literal profile names
        # are greppable in workloads/swf.py
        register_workload(
            f"swf-{profile_name}",  # repro: noqa RPL501
            _make,
            overwrite=True,
        )


_register_synth_swf_profiles()
