"""A Feitelson-style parallel workload model.

The paper's experimental context is production clusters (Section 1.1,
"more than 70 percent ... of the top-500 are clusters"), whose workloads
are conventionally modelled after Feitelson's observations on rigid-job
traces (Feitelson '96; Feitelson & Rudolph '98):

* **degrees of parallelism** are small-biased, favour powers of two, and
  occasionally use the full machine;
* **runtimes** are hyper-exponentially distributed (many short jobs, a
  heavy tail of long ones) and *positively correlated* with parallelism;
* **arrivals** follow a Poisson process for stationary periods.

This module is a self-contained implementation of that stylised model
(the exact published model is tied to specific trace fits; we document
each simplification inline).  It exists so the benchmarks can exercise
the schedulers on realistic job mixes, not just uniform noise.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from ..core.instance import RigidInstance
from ..core.job import Job
from ..errors import InvalidInstanceError


class FeitelsonModel:
    """Sampler for rigid jobs following the stylised Feitelson model.

    Parameters
    ----------
    m:
        Machine size (widths are clipped to ``[1, m]``).
    pow2_probability:
        Probability that a sampled width is snapped to a power of two
        (trace studies report 70–90%; default 0.8).
    serial_probability:
        Probability mass of strictly serial jobs (``q = 1``); traces show
        20–40%; default 0.25.
    short_mean / long_mean:
        Means of the two exponential branches of the runtime
        hyper-exponential.
    long_probability:
        Weight of the long branch (the heavy tail); default 0.1.
    correlation:
        Strength in ``[0, 1]`` of the runtime–parallelism correlation:
        the long-branch probability is boosted by
        ``correlation * (log2 q / log2 m)``.
    """

    def __init__(
        self,
        m: int,
        pow2_probability: float = 0.8,
        serial_probability: float = 0.25,
        short_mean: float = 10.0,
        long_mean: float = 300.0,
        long_probability: float = 0.1,
        correlation: float = 0.5,
    ):
        if m < 1:
            raise InvalidInstanceError("m must be >= 1")
        for name, value in [
            ("pow2_probability", pow2_probability),
            ("serial_probability", serial_probability),
            ("long_probability", long_probability),
            ("correlation", correlation),
        ]:
            if not 0 <= value <= 1:
                raise InvalidInstanceError(f"{name} must lie in [0, 1]")
        if short_mean <= 0 or long_mean <= 0:
            raise InvalidInstanceError("runtime means must be positive")
        self.m = m
        self.pow2_probability = pow2_probability
        self.serial_probability = serial_probability
        self.short_mean = short_mean
        self.long_mean = long_mean
        self.long_probability = long_probability
        self.correlation = correlation

    # -- sampling -------------------------------------------------------
    def sample_width(self, rng: random.Random) -> int:
        """Degree of parallelism: serial mass + log-uniform body + pow2 snap."""
        if rng.random() < self.serial_probability or self.m == 1:
            return 1
        raw = math.exp(rng.uniform(0.0, math.log(self.m)))
        q = max(1, min(self.m, int(round(raw))))
        if rng.random() < self.pow2_probability:
            exp = max(0, int(round(math.log2(max(1, q)))))
            q = max(1, min(self.m, 2**exp))
        return q

    def sample_runtime(self, rng: random.Random, q: int) -> float:
        """Hyper-exponential runtime, long branch boosted for wide jobs."""
        boost = 0.0
        if self.m > 1:
            boost = self.correlation * (math.log2(max(1, q)) / math.log2(self.m))
        p_long = min(1.0, self.long_probability + boost * self.long_probability * 4)
        mean = self.long_mean if rng.random() < p_long else self.short_mean
        # runtimes below one time unit are rounded up: schedulers assume p > 0
        return max(1.0, rng.expovariate(1.0 / mean))

    def instance(
        self,
        n: int,
        seed: int = 0,
        arrival_rate: Optional[float] = None,
        name: str = "",
    ) -> RigidInstance:
        """Sample ``n`` jobs; optional Poisson releases with ``arrival_rate``."""
        rng = random.Random(seed)
        jobs: List[Job] = []
        t = 0.0
        for i in range(n):
            q = self.sample_width(rng)
            p = self.sample_runtime(rng, q)
            release = 0.0
            if arrival_rate is not None:
                t += rng.expovariate(arrival_rate)
                release = t
            jobs.append(Job(id=i, p=p, q=q, release=release))
        return RigidInstance(
            m=self.m,
            jobs=tuple(jobs),
            name=name or f"feitelson(n={n},m={self.m})",
        )


def feitelson_instance(
    n: int, m: int, seed: int = 0, arrival_rate: Optional[float] = None
) -> RigidInstance:
    """Shorthand: default-parameter Feitelson-style instance."""
    return FeitelsonModel(m).instance(n, seed=seed, arrival_rate=arrival_rate)
