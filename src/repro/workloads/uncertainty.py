"""Runtime-uncertainty models: what the scheduler believes vs what happens.

Every trace job carries one runtime ``p`` — and everything upstream of
this module treats it as the truth.  Real batch systems never get that
luxury: requested walltimes are routinely 2–10x the actual runtimes,
jobs die and are resubmitted, and reserved capacity goes unused.  An
:class:`UncertaintyModel` is the seeded, deterministic description of
that gap.  The scheduler keeps planning with the *estimated* runtime
(the job's ``p``); the model decides per job what *actually* happens:

======================  ====================================================
model                   actual runtime
======================  ====================================================
``exact``               ``p`` — the degenerate model; with zero failure and
                        no-show rates it is byte-identical to no model at all
``overestimate``        ``p * u`` with ``u ~ U[1/factor, 1]`` — users pad
                        their requests, jobs finish early
``underestimate``       ``p * u`` with ``u ~ U[1, factor]`` — jobs overrun
                        their estimates (kill or grace policy applies)
``lognormal``           ``p * exp(sigma * N(0, 1))`` — two-sided error
``early-exit``          ``p * u`` with ``u ~ U(0, 1)`` — crashes-on-startup
                        and instant-failure jobs
======================  ====================================================

On top of the estimate error every *stochastic* model injects, by
default, a small **job failure** rate (``failure_rate``, default
:data:`DEFAULT_FAILURE_RATE`; the ``exact`` model defaults to 0): a
failed job releases its processors at the failure instant and re-enters
the queue after ``backoff`` time units, at most ``max_retries`` times
(the attempt after the last retry always runs to completion, so the
stream always drains).  ``no_show_rate`` makes committed reservations
no-shows: the hole is released at its start instant.  Overruns follow
the ``overrun`` policy: ``"kill"`` terminates the job at its estimate
(the walltime-kill every production scheduler applies), ``"grace"``
tries to extend the allocation by up to ``grace * p`` extra time —
capacity-checked, killing only when the extension does not fit.

Determinism is the whole design: every draw comes from a
``random.Random`` seeded by SHA-256 of ``(model seed, job id, attempt)``
— independent of processing order, process identity and engine
sharding, which is what makes serial and epoch-sharded stochastic
replays byte-identical and the exact model a true no-op.

Models are name-addressable through :data:`UNCERTAINTY_MODELS` (the
same registry pattern as workloads); ``repro replay
--uncertainty lognormal:sigma=0.5:overrun=grace`` and the experiment
layer's ``uncertainties`` factor both go through
:func:`parse_uncertainty`.  Third-party models subclass
:class:`UncertaintyModel`, override :meth:`UncertaintyModel._actual`
and register a factory via :func:`register_uncertainty_model`.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Tuple

from ..core.registry import Registry
from ..errors import InvalidInstanceError

__all__ = [
    "DEFAULT_FAILURE_RATE",
    "UNCERTAINTY_MODELS",
    "UncertaintyModel",
    "available_uncertainty_models",
    "parse_uncertainty",
    "register_uncertainty_model",
    "resolve_uncertainty",
]

#: Failure probability per execution attempt that stochastic models
#: inject unless the spec says otherwise (``failure_rate=0`` turns it
#: off); the ``exact`` model defaults to 0 so it stays degenerate.
DEFAULT_FAILURE_RATE = 0.02

#: Default retry budget of a failing job (re-entries, not attempts).
DEFAULT_MAX_RETRIES = 3

#: Default requeue backoff (time units between failure and re-entry).
DEFAULT_BACKOFF = 60

#: Default over/under-estimation factor.
DEFAULT_FACTOR = 2.0

#: Default lognormal error magnitude.
DEFAULT_SIGMA = 0.5

#: Default grace-extension budget, as a fraction of the estimate.
DEFAULT_GRACE = 0.25

#: Recognised overrun policies.
OVERRUN_POLICIES = ("kill", "grace")

_FLOAT_KEYS = frozenset(
    {"factor", "sigma", "failure_rate", "no_show_rate", "grace"}
)
_INT_KEYS = frozenset({"max_retries", "backoff", "seed"})
_COMMON_KEYS = frozenset(
    {"failure_rate", "max_retries", "backoff", "no_show_rate",
     "overrun", "grace", "seed"}
)


@dataclass(frozen=True)
class UncertaintyModel:
    """One fully-parameterised uncertainty scenario (picklable, frozen).

    ``draw`` is a pure function of ``(seed, job id, attempt)``; see the
    module docs for the field semantics.
    """

    model: str = "exact"
    factor: float = DEFAULT_FACTOR
    sigma: float = DEFAULT_SIGMA
    failure_rate: float = 0.0
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff: int = DEFAULT_BACKOFF
    no_show_rate: float = 0.0
    overrun: str = "kill"
    grace: float = DEFAULT_GRACE
    seed: int = 0

    def __post_init__(self):
        if self.factor < 1.0:
            raise InvalidInstanceError(
                f"uncertainty factor must be >= 1, got {self.factor!r}"
            )
        if self.sigma < 0.0:
            raise InvalidInstanceError(
                f"uncertainty sigma must be >= 0, got {self.sigma!r}"
            )
        for name, rate in (
            ("failure_rate", self.failure_rate),
            ("no_show_rate", self.no_show_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise InvalidInstanceError(
                    f"uncertainty {name} must be in [0, 1], got {rate!r}"
                )
        if self.max_retries < 0:
            raise InvalidInstanceError(
                f"uncertainty max_retries must be >= 0, "
                f"got {self.max_retries!r}"
            )
        if self.backoff < 1:
            raise InvalidInstanceError(
                f"uncertainty backoff must be >= 1 (re-entry is an event "
                f"strictly after the failure), got {self.backoff!r}"
            )
        if self.overrun not in OVERRUN_POLICIES:
            raise InvalidInstanceError(
                f"uncertainty overrun policy must be one of "
                f"{OVERRUN_POLICIES}, got {self.overrun!r}"
            )
        if self.grace <= 0.0:
            raise InvalidInstanceError(
                f"uncertainty grace must be > 0, got {self.grace!r}"
            )

    # -- identity -----------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """Whether the model is fully degenerate — engines treat an
        exact model as no model at all (the byte-identity contract)."""
        return (
            self.model == "exact"
            and self.failure_rate == 0.0
            and self.no_show_rate == 0.0
        )

    @property
    def spec(self) -> str:
        """Canonical spec string — the checkpoint/journal fingerprint
        (two models with equal specs behave identically)."""
        parts = [self.model]
        if self.model in ("overestimate", "underestimate"):
            parts.append(f"factor={self.factor:g}")
        if self.model == "lognormal":
            parts.append(f"sigma={self.sigma:g}")
        parts.append(f"failure_rate={self.failure_rate:g}")
        parts.append(f"max_retries={self.max_retries}")
        parts.append(f"backoff={self.backoff}")
        parts.append(f"no_show_rate={self.no_show_rate:g}")
        parts.append(f"overrun={self.overrun}")
        parts.append(f"grace={self.grace:g}")
        parts.append(f"seed={self.seed}")
        return ":".join(parts)

    # -- seeded draws -------------------------------------------------------
    def _rng(self, *parts) -> random.Random:
        """A ``random.Random`` seeded by SHA-256 of the identifying
        parts — stable across processes (no string-hash salt) and
        independent of draw order elsewhere."""
        basis = ":".join(str(part) for part in (self.seed, *parts))
        digest = hashlib.sha256(basis.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _grid(self, value, p):
        """Clamp a drawn runtime back onto the trace's time grid:
        integer estimates yield integer actuals (the replay engine's
        int fast path), and every runtime stays positive."""
        if isinstance(p, int):
            v = int(value)
            return v if v >= 1 else 1
        return value if value > 0 else p

    def _actual(self, rng: random.Random, p):
        """The model's actual-runtime draw (third-party override point).

        Must consume a fixed number of draws per call so the failure
        draws that follow stay aligned."""
        model = self.model
        if model == "exact":
            return p
        if model == "overestimate":
            lo = 1.0 / self.factor
            return self._grid(p * (lo + (1.0 - lo) * rng.random()), p)
        if model == "underestimate":
            return self._grid(
                p * (1.0 + (self.factor - 1.0) * rng.random()), p
            )
        if model == "lognormal":
            return self._grid(
                p * math.exp(self.sigma * rng.gauss(0.0, 1.0)), p
            )
        if model == "early-exit":
            return self._grid(p * rng.random(), p)
        raise InvalidInstanceError(
            f"uncertainty model {self.model!r} has no actual-runtime rule "
            "(third-party models must override _actual)"
        )

    def draw(self, job_id, p, attempt: int = 0):
        """The fate of one execution attempt: ``(actual, fail_at)``.

        ``actual`` is the attempt's real runtime; ``fail_at`` is the
        failure instant relative to the start (``None``: the attempt
        does not fail).  Failures happen strictly within the window the
        job would actually occupy (``[1, min(actual, estimate)]``), and
        an attempt past the retry budget never fails — bounded requeue
        with guaranteed completion.
        """
        rng = self._rng("job", job_id, attempt)
        actual = self._actual(rng, p)
        fail_at = None
        if (
            self.failure_rate > 0.0
            and attempt < self.max_retries
            and rng.random() < self.failure_rate
        ):
            horizon = actual if actual < p else p
            if isinstance(horizon, int) and horizon > 1:
                fail_at = 1 + int(rng.random() * (horizon - 1))
            elif isinstance(horizon, int):
                fail_at = 1
            else:
                fail_at = horizon * max(rng.random(), 1e-9)
        return actual, fail_at

    def is_no_show(self, index: int) -> bool:
        """Whether the ``index``-th committed reservation is a no-show
        (deterministic per reservation-acceptance order)."""
        if self.no_show_rate <= 0.0:
            return False
        return self._rng("resv", index).random() < self.no_show_rate

    def grace_budget(self, p):
        """Maximum extension past the estimate under ``overrun="grace"``."""
        if isinstance(p, int):
            extra = int(p * self.grace)
            return extra if extra >= 1 else 1
        return p * self.grace


# ---------------------------------------------------------------------------
# registry + spec parsing
# ---------------------------------------------------------------------------

#: Uncertainty-model registry: name -> factory(**params) -> model.
UNCERTAINTY_MODELS: Registry[Callable[..., UncertaintyModel]] = Registry(
    "uncertainty model", error=InvalidInstanceError
)


def register_uncertainty_model(
    name: str,
    factory: Optional[Callable[..., UncertaintyModel]] = None,
    *,
    overwrite: Optional[bool] = None,
):
    """Register a model factory under ``name`` (usable as decorator)."""
    return UNCERTAINTY_MODELS.register(name, factory, overwrite=overwrite)


def available_uncertainty_models():
    """Sorted names of all registered uncertainty models."""
    return UNCERTAINTY_MODELS.names()


def _coerce(name: str, key: str, value):
    try:
        if key in _INT_KEYS:
            return int(value)
        if key in _FLOAT_KEYS:
            return float(value)
    except (TypeError, ValueError):
        raise InvalidInstanceError(
            f"uncertainty model {name!r}: parameter {key}={value!r} is not "
            f"a number"
        ) from None
    return value


def _builtin_factory(name: str, extra_keys: FrozenSet[str]):
    allowed = _COMMON_KEYS | extra_keys

    def factory(**params) -> UncertaintyModel:
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise InvalidInstanceError(
                f"uncertainty model {name!r} has unknown parameter(s) "
                f"{unknown}; known parameters: {sorted(allowed)}"
            )
        kwargs = {k: _coerce(name, k, v) for k, v in params.items()}
        if "failure_rate" not in kwargs and name != "exact":
            kwargs["failure_rate"] = DEFAULT_FAILURE_RATE
        return UncertaintyModel(model=name, **kwargs)

    return factory


for _name, _extra in (
    ("exact", frozenset()),
    ("overestimate", frozenset({"factor"})),
    ("underestimate", frozenset({"factor"})),
    ("lognormal", frozenset({"sigma"})),
    ("early-exit", frozenset()),
):
    UNCERTAINTY_MODELS.register(
        _name,  # repro: noqa RPL501 -- one factory per built-in model name
        _builtin_factory(_name, _extra),
        overwrite=True,
    )


def parse_uncertainty(
    spec: str, default_seed: Optional[int] = None
) -> UncertaintyModel:
    """Parse ``model[:key=value]*`` (the ``--uncertainty`` grammar).

    ``default_seed`` seeds the model when the spec itself names no
    ``seed=`` — how the experiment layer gives every grid point its
    derived per-point seed.
    """
    name, _, rest = spec.partition(":")
    factory = UNCERTAINTY_MODELS.get(name)
    params = {}
    if rest:
        for item in rest.split(":"):
            key, eq, value = item.partition("=")
            if not eq:
                raise InvalidInstanceError(
                    f"uncertainty spec {spec!r}: malformed option {item!r} "
                    "(expected key=value)"
                )
            params[key] = value
    if default_seed is not None and "seed" not in params:
        params["seed"] = default_seed
    return factory(**params)


def resolve_uncertainty(
    spec, default_seed: Optional[int] = None
) -> Optional[UncertaintyModel]:
    """Normalise an engine-facing uncertainty argument.

    ``None`` stays ``None``; a model passes through; a spec string is
    parsed.  Anything else is a loud error.
    """
    if spec is None:
        return None
    if isinstance(spec, UncertaintyModel):
        return spec
    if isinstance(spec, str):
        return parse_uncertainty(spec, default_seed=default_seed)
    raise InvalidInstanceError(
        f"uncertainty must be None, a spec string or an UncertaintyModel, "
        f"got {type(spec).__name__}"
    )
