"""Workload characterisation: descriptive statistics of instances.

Experiment reports should state *what* was scheduled, not just how well.
This module computes the standard descriptors of a rigid-job workload
(width/runtime distributions, load, power-of-two share, reservation
pressure) as a plain dataclass that drops into the reporting tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..core.instance import as_reservation_instance
from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class WorkloadProfile:
    """Descriptive statistics of one instance.

    Attributes
    ----------
    n / m:
        Job and processor counts.
    total_work:
        ``sum p_i q_i``.
    load_factor:
        ``total_work / (m * lower_horizon)`` where the horizon is the
        area lower bound — 1.0 means the workload exactly fills the
        machine up to the bound.
    mean_width / max_width / serial_share / pow2_share:
        Width distribution descriptors.
    mean_runtime / max_runtime / runtime_cv:
        Runtime distribution descriptors (cv = coefficient of variation;
        > 1 signals the heavy tail real traces show).
    reservation_pressure:
        Fraction of machine-time area blocked by reservations within the
        reservation span (0 when there are none).
    arrival_span:
        Last release minus first (0 for offline instances).
    """

    n: int
    m: int
    total_work: float
    load_factor: float
    mean_width: float
    max_width: int
    serial_share: float
    pow2_share: float
    mean_runtime: float
    max_runtime: float
    runtime_cv: float
    reservation_pressure: float
    arrival_span: float

    def as_dict(self) -> Dict:
        """Row form for the table/CSV helpers."""
        return {
            "n": self.n,
            "m": self.m,
            "work": self.total_work,
            "load": round(self.load_factor, 3),
            "mean_q": round(self.mean_width, 2),
            "max_q": self.max_width,
            "serial%": round(100 * self.serial_share, 1),
            "pow2%": round(100 * self.pow2_share, 1),
            "mean_p": round(self.mean_runtime, 2),
            "cv_p": round(self.runtime_cv, 2),
            "res_pressure": round(self.reservation_pressure, 3),
        }


def characterize(instance) -> WorkloadProfile:
    """Compute the workload profile of an instance."""
    inst = as_reservation_instance(instance)
    if not inst.jobs:
        raise InvalidInstanceError("cannot characterize an empty workload")
    widths = [job.q for job in inst.jobs]
    runtimes = [float(job.p) for job in inst.jobs]
    n = len(widths)
    mean_p = sum(runtimes) / n
    var_p = sum((p - mean_p) ** 2 for p in runtimes) / n
    cv = math.sqrt(var_p) / mean_p if mean_p else 0.0

    from ..core.bounds import area_bound

    horizon = float(area_bound(inst)) or 1.0
    load = float(inst.total_work) / (inst.m * horizon)

    pressure = 0.0
    if inst.reservations:
        span_start = min(r.start for r in inst.reservations)
        span_end = max(r.end for r in inst.reservations)
        span = float(span_end - span_start)
        if span > 0:
            blocked = sum(float(r.area) for r in inst.reservations)
            pressure = blocked / (inst.m * span)

    releases = [float(job.release) for job in inst.jobs]
    return WorkloadProfile(
        n=n,
        m=inst.m,
        total_work=float(inst.total_work),
        load_factor=load,
        mean_width=sum(widths) / n,
        max_width=max(widths),
        serial_share=sum(1 for q in widths if q == 1) / n,
        pow2_share=sum(1 for q in widths if q & (q - 1) == 0) / n,
        mean_runtime=mean_p,
        max_runtime=max(runtimes),
        runtime_cv=cv,
        reservation_pressure=pressure,
        arrival_span=max(releases) - min(releases),
    )


def characterize_many(instances) -> List[Dict]:
    """Profiles of several instances, as table rows."""
    return [characterize(inst).as_dict() for inst in instances]
