"""Workload generation and trace I/O.

* :mod:`repro.workloads.synthetic` — seeded random rigid-job generators
  (uniform, log-uniform, α-constrained, tiny exact-solver instances);
* :mod:`repro.workloads.feitelson` — stylised Feitelson parallel-workload
  model (power-of-two widths, hyper-exponential correlated runtimes);
* :mod:`repro.workloads.reservations` — reservation calendars (periodic
  maintenance, α-budgeted random, non-increasing staircases);
* :mod:`repro.workloads.swf` — Standard Workload Format reader/writer;
* :mod:`repro.workloads.registry` — name-addressable generators for the
  experiment layer (``make_workload("alpha-uniform", n=30, m=64, ...)``);
* :mod:`repro.workloads.uncertainty` — seeded runtime-uncertainty models
  (estimate error, failure/requeue, reservation no-shows) for the
  reschedule-on-actual engines.
"""

from .characterize import WorkloadProfile, characterize, characterize_many
from .feitelson import FeitelsonModel, feitelson_instance
from .reservations import (
    nonincreasing_staircase,
    periodic_maintenance,
    random_alpha_reservations,
    reservation_load,
)
from .registry import (
    WORKLOADS,
    available_workloads,
    get_workload,
    make_workload,
    register_workload,
)
from .swf import (
    SAMPLE_SWF,
    SYNTH_PROFILES,
    SWFReadReport,
    SWFStream,
    iter_swf,
    read_swf,
    save_swf_trace,
    synth_swf_instance,
    synth_swf_jobs,
    write_swf,
    write_swf_jobs,
)
from .uncertainty import (
    DEFAULT_FAILURE_RATE,
    UNCERTAINTY_MODELS,
    UncertaintyModel,
    available_uncertainty_models,
    parse_uncertainty,
    register_uncertainty_model,
    resolve_uncertainty,
)
from .synthetic import (
    alpha_constrained_instance,
    loguniform_instance,
    small_exact_instance,
    uniform_instance,
    with_poisson_releases,
)

__all__ = [
    "uniform_instance",
    "loguniform_instance",
    "alpha_constrained_instance",
    "small_exact_instance",
    "with_poisson_releases",
    "FeitelsonModel",
    "feitelson_instance",
    "periodic_maintenance",
    "random_alpha_reservations",
    "nonincreasing_staircase",
    "reservation_load",
    "read_swf",
    "iter_swf",
    "write_swf",
    "write_swf_jobs",
    "save_swf_trace",
    "synth_swf_jobs",
    "synth_swf_instance",
    "SYNTH_PROFILES",
    "SWFStream",
    "SWFReadReport",
    "SAMPLE_SWF",
    "WorkloadProfile",
    "characterize",
    "characterize_many",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "available_workloads",
    "make_workload",
    "DEFAULT_FAILURE_RATE",
    "UNCERTAINTY_MODELS",
    "UncertaintyModel",
    "available_uncertainty_models",
    "parse_uncertainty",
    "register_uncertainty_model",
    "resolve_uncertainty",
]
