"""Reservation pattern generators.

The paper motivates reservations with two scenarios (Section 1.2):
co-allocation across grid sites and demo sessions at fixed times.  These
generators produce the corresponding calendar shapes:

* :func:`periodic_maintenance` — fixed-width blocks repeating with a
  period (maintenance windows, standing demos);
* :func:`random_alpha_reservations` — random reservations guaranteed to
  respect the α-restriction ``U(t) <= (1 - α) m`` (Section 4.2), built by
  greedy admission against the running profile;
* :func:`nonincreasing_staircase` — reservations all starting at 0 with
  varied lengths, producing exactly the non-increasing ``U`` of
  Section 4.1 (machines "coming back" one group at a time, Figure 2's
  shape).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.job import Reservation
from ..core.profiles import resolve_backend
from ..errors import InvalidInstanceError


def periodic_maintenance(
    m: int,
    q: int,
    period,
    duration,
    count: int,
    first_start=0,
) -> Tuple[Reservation, ...]:
    """``count`` blocks of ``q`` processors, one every ``period``."""
    if q < 1 or q > m:
        raise InvalidInstanceError(f"q must be in [1, {m}], got {q}")
    if duration <= 0 or period <= 0:
        raise InvalidInstanceError("period and duration must be positive")
    if duration > period:
        raise InvalidInstanceError(
            "blocks would overlap: duration exceeds period"
        )
    return tuple(
        Reservation(
            id=f"maint{i}",
            start=first_start + i * period,
            p=duration,
            q=q,
            name=f"maintenance {i}",
        )
        for i in range(count)
    )


def random_alpha_reservations(
    m: int,
    alpha,
    horizon,
    count: int,
    seed: int = 0,
    max_len_fraction: float = 0.25,
    profile_backend=None,
) -> Tuple[Reservation, ...]:
    """Random reservations keeping ``U(t) <= (1 - α) m`` at every time.

    Candidates are drawn uniformly (start in ``[0, horizon)``, length up
    to ``max_len_fraction * horizon``, width up to the remaining α
    budget) and admitted greedily: a candidate that would push the
    unavailability over ``(1 - α) m`` anywhere is clipped in width to the
    worst-case remaining budget over its span, or dropped when no width
    remains.  Always terminates with at most ``count`` reservations.
    """
    if not 0 < alpha <= 1:
        raise InvalidInstanceError(f"alpha must lie in (0, 1], got {alpha!r}")
    budget = int((1 - alpha) * m)
    if budget < 1:
        return ()
    rng = random.Random(seed)
    # track unavailability via an availability profile of capacity `budget`
    room = resolve_backend(profile_backend).constant(budget)
    out: List[Reservation] = []
    for i in range(count):
        start = rng.uniform(0, horizon)
        length = rng.uniform(horizon * 0.01, horizon * max_len_fraction)
        available = room.min_capacity(start, start + length)
        if available < 1:
            continue
        q = rng.randint(1, available)
        room.reserve(start, length, q)
        out.append(
            Reservation(id=f"res{i}", start=start, p=length, q=q)
        )
    return tuple(out)


def nonincreasing_staircase(
    m: int,
    steps: int,
    max_height_fraction: float = 0.75,
    horizon=100,
    seed: int = 0,
) -> Tuple[Reservation, ...]:
    """Reservations all starting at 0 — so ``U`` is non-increasing.

    ``U(t) = sum of q_j over reservations with p_j > t`` can only decrease
    over time when all reservations start together, which is precisely the
    Section 4.1 restriction.  Total initial height stays at most
    ``max_height_fraction * m`` so at least one processor remains free.
    """
    if steps < 1:
        return ()
    if not 0 < max_height_fraction < 1:
        raise InvalidInstanceError("max_height_fraction must lie in (0, 1)")
    rng = random.Random(seed)
    total_height = int(max_height_fraction * m)
    if total_height < steps:
        steps = max(1, total_height)
    if total_height < 1:
        return ()
    # split the height into `steps` positive integers
    cuts = sorted(rng.sample(range(1, total_height), steps - 1)) if steps > 1 else []
    heights = []
    prev = 0
    for c in cuts + [total_height]:
        heights.append(c - prev)
        prev = c
    # strictly increasing durations give a clean staircase
    durations = sorted(rng.uniform(horizon * 0.05, horizon) for _ in heights)
    out = []
    for i, (h, d) in enumerate(zip(heights, durations)):
        out.append(Reservation(id=f"step{i}", start=0, p=d, q=h))
    return tuple(out)


def reservation_load(reservations, m: int, horizon) -> float:
    """Fraction of the machine-time area ``m * horizon`` consumed by
    reservations (clipped to the horizon) — a workload descriptor used in
    experiment reports."""
    if horizon <= 0:
        raise InvalidInstanceError("horizon must be positive")
    area = 0
    for res in reservations:
        lo = min(max(res.start, 0), horizon)
        hi = min(res.end, horizon)
        if hi > lo:
            area += (hi - lo) * res.q
    return area / (m * horizon)
