"""Discrete-event online cluster simulation (built from scratch).

* :mod:`repro.simulation.engine` — generic calendar-queue event loop;
* :mod:`repro.simulation.cluster` — resource-manager state (profile,
  queue, running set);
* :mod:`repro.simulation.online_sim` — online policies (fcfs, easy,
  conservative, greedy/LSRC) driven by the engine, producing verified
  schedules plus event traces;
* :mod:`repro.simulation.replay` — rolling-horizon replay of arrival
  *streams* (SWF traces, synthetic generators) with bounded memory and
  windowed metrics, for traces too large to materialise;
* :mod:`repro.simulation.scheduler_core` — the replay engine's
  event-application loop as a standalone ``submit`` / ``cancel`` /
  ``advance_to`` / ``drain`` surface.

:class:`SchedulerCore` is the supported embedding API: batch replay
(:class:`ReplayEngine`), epoch sharding and the ``repro serve`` daemon
are all thin drivers of it.  Reaching into the engine's fused loops
(``ReplayEngine._run_fused`` / ``_run_batched`` / ``_run_generic``) is
deprecated outside the engine itself and flagged by lint rule RPL503.
"""

from .cluster import ClusterState, RunningJob
from .engine import SimulationError, Simulator
from .online_sim import (
    POLICIES,
    OnlineSimulation,
    SimulationResult,
    TraceEvent,
    available_policies,
    get_policy,
    policy_conservative,
    policy_easy,
    policy_fcfs,
    policy_greedy,
    register_policy,
    simulate,
)
from .replay import (
    DEFAULT_WINDOW,
    MultiReplayResult,
    ReplayCheckpoint,
    ReplayEngine,
    ReplayResult,
    ReplayState,
    replay,
    replay_policies,
    replay_swf,
)
from .scheduler_core import SchedulerCore
from .timeline import (
    TimelineSummary,
    queue_length_timeline,
    running_count_timeline,
    summarize_timeline,
    utilization_timeline,
)

__all__ = [
    "Simulator",
    "SimulationError",
    "ClusterState",
    "RunningJob",
    "OnlineSimulation",
    "SimulationResult",
    "TraceEvent",
    "simulate",
    "POLICIES",
    "register_policy",
    "get_policy",
    "available_policies",
    "policy_fcfs",
    "policy_greedy",
    "policy_easy",
    "policy_conservative",
    "ReplayCheckpoint",
    "ReplayEngine",
    "ReplayResult",
    "ReplayState",
    "SchedulerCore",
    "MultiReplayResult",
    "replay",
    "replay_policies",
    "replay_swf",
    "DEFAULT_WINDOW",
    "TimelineSummary",
    "queue_length_timeline",
    "running_count_timeline",
    "utilization_timeline",
    "summarize_timeline",
]
