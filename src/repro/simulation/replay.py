"""Rolling-horizon trace replay: online policies at million-job scale.

:class:`~repro.simulation.online_sim.OnlineSimulation` materialises the
whole instance, preloads every arrival into the event calendar and keeps
the full event trace — the right shape for paper-scale experiments, and
exactly the wrong one for archive SWF traces (10⁵–10⁷ jobs).  This
module is the out-of-core twin: :class:`ReplayEngine` consumes *any*
iterator of :class:`~repro.core.job.Job` arrivals in release order
(:func:`repro.workloads.swf.iter_swf` streams them off disk in constant
memory, :func:`repro.workloads.swf.synth_swf_jobs` generates them), runs
one of the registered online policies
(:data:`repro.simulation.online_sim.POLICIES`) against a live
availability profile, and keeps every structure bounded by the *active
window* of the simulation rather than by trace length:

* arrivals are pulled one look-ahead at a time — the trace never exists
  in memory;
* completed jobs are accounted into window/total aggregates and
  forgotten — there is no ``finished`` dict and no event trace;
* the availability profile is compacted behind the clock with
  :meth:`~repro.core.profiles.base.ProfileBackend.prune_before` (see the
  soundness argument there), so it holds the active segments only.

Equivalence with the in-memory engine
-------------------------------------
The engine processes, at each distinct event time, all completions, then
all arrivals, then one policy decision pass — the same
completion < arrival < decision ordering the event calendar of
:class:`~repro.simulation.engine.Simulator` enforces.  The built-in
policies are *pass-idempotent* (a second decision pass at the same
instant starts nothing new), so one pass per event time yields the exact
start times ``OnlineSimulation`` produces; a hypothesis differential
test in ``tests/test_replay.py`` asserts byte-identical schedules and
metrics across policies, profile backends and plain/gzip ingestion.
Third-party policies must be pass-idempotent to share that guarantee.

Times pass through arithmetically untouched: integer traces (all SWF
archives, the synthetic pack) therefore run entirely on machine ints —
the replay face of the ``timebase="auto"`` fast path, whose scale factor
a stream cannot compute but which is 1 for every integer trace anyway.

Windowed metrics
----------------
Jobs are grouped into fixed-size windows by arrival index (default
10 000).  A window's row reports its jobs' waiting times, bounded
slowdowns, work, utilization over the window's span, and the makespan
ratio against the certified per-window lower bound
``max(pmax, W/m, max_i(release_i + p_i) - first_release)`` — the
paper's ratio-vs-LB criterion applied per window.  Rows are emitted in
window order to an optional :class:`~repro.run.store.JsonlStore` as soon
as the trailing job of a window completes, so monitoring a multi-hour
replay costs no memory.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from fractions import Fraction
from heapq import heappop, heappush
from numbers import Integral
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.job import Job
from ..core.metrics import BSLD_TAU, bounded_slowdown
from ..core.profiles import BackendSpec, make_profile
from ..errors import SchedulingError, TraceFormatError
from .online_sim import POLICIES

#: Default window size (jobs per metrics window).
DEFAULT_WINDOW = 10_000

#: Default completions between profile compactions.  Pruning is
#: O(active segments), so a coarse cadence amortises it to O(1) per job.
DEFAULT_PRUNE_INTERVAL = 4096

#: Keys of :attr:`ReplayResult.totals` — the metric names a spec's
#: ``traces`` factor may request (validated in
#: :meth:`repro.run.spec.ExperimentSpec.validate`).
REPLAY_METRIC_FIELDS = frozenset({
    "n_jobs", "makespan", "total_work", "utilization",
    "mean_wait", "max_wait", "mean_slowdown",
    "mean_bounded_slowdown", "max_bounded_slowdown",
    "lower_bound", "ratio_lb", "events", "windows",
    "peak_queue_length", "peak_running", "peak_profile_segments",
    "elapsed_seconds",
})


class ReplayState:
    """Policy-facing cluster state for one replay run.

    Implements the protocol the registered policies program against
    (``queue`` / ``queue_in_order`` / ``can_start_now`` / ``start_job``
    / ``earliest_start`` / ``profile``) like
    :class:`~repro.simulation.cluster.ClusterState`, with two scale
    adaptations: the queue is an insertion-ordered dict so committing a
    job is O(1) instead of an O(queue) rebuild, and completed jobs are
    dropped rather than archived.
    """

    def __init__(self, m: int, profile_backend: BackendSpec = None):
        self.m = m
        self.profile = make_profile([0], [m], profile_backend)
        self.queue: Dict[object, Job] = {}
        self.running: Dict[object, Job] = {}

    # -- queue management -------------------------------------------------
    def enqueue(self, job: Job) -> None:
        if job.q > self.m:
            raise SchedulingError(
                f"job {job.id!r} requires {job.q} processors but the "
                f"machine only has {self.m}"
            )
        self.queue[job.id] = job

    def queue_in_order(self) -> List[Job]:
        """Arrived jobs in submission order."""
        return list(self.queue.values())

    # -- placement --------------------------------------------------------
    def can_start_now(self, job: Job, now) -> bool:
        return self.profile.fits(job.q, now, job.p)

    def start_job(self, job: Job, now) -> None:
        if not self.can_start_now(job, now):
            raise SchedulingError(
                f"job {job.id!r} does not fit at time {now}"
            )
        self.profile.reserve(now, job.p, job.q)
        self.running[job.id] = job
        del self.queue[job.id]

    def complete_job(self, job_id) -> Job:
        job = self.running.pop(job_id, None)
        if job is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        return job

    # -- introspection ----------------------------------------------------
    def earliest_start(self, job: Job, now):
        return self.profile.earliest_fit(job.q, job.p, after=now)


class _WindowAcc:
    """Metric accumulator for one arrival-index window."""

    __slots__ = (
        "index", "arrived", "started", "completed", "full",
        "first_release", "last_completion", "work", "pmax",
        "latest_lb_finish", "sum_wait", "max_wait",
        "sum_bsld", "max_bsld",
    )

    def __init__(self, index: int):
        self.index = index
        self.arrived = 0
        self.started = 0
        self.completed = 0
        self.full = False          # no more arrivals will join
        self.first_release = None
        self.last_completion = None
        self.work = 0
        self.pmax = 0
        self.latest_lb_finish = 0  # max(release + p): no window schedule beats it
        self.sum_wait = 0
        self.max_wait = 0
        self.sum_bsld = 0
        self.max_bsld = 0.0

    @property
    def done(self) -> bool:
        return self.full and self.completed == self.arrived

    def row(self, m: int) -> Dict:
        span = self.last_completion - self.first_release
        lb = max(
            self.pmax,
            self.work / m,
            self.latest_lb_finish - self.first_release,
        )
        n = self.arrived
        return {
            "key": f"window-{self.index:08d}",
            "window": self.index,
            "jobs": n,
            "t_start": self.first_release,
            "t_end": self.last_completion,
            "makespan": span,
            "lower_bound": lb,
            "ratio_lb": float(span) / float(lb) if lb else 0.0,
            "utilization": float(self.work) / float(m * span) if span else 0.0,
            "mean_wait": _mean(self.sum_wait, n),
            "max_wait": self.max_wait,
            "mean_bounded_slowdown": _mean(self.sum_bsld, n),
            "max_bounded_slowdown": self.max_bsld,
        }


def _mean(total, n: int) -> float:
    return float(total) / n if n else 0.0


@dataclass
class ReplayResult:
    """Outcome of one rolling-horizon replay."""

    policy: str
    m: int
    window_size: int
    totals: Dict = field(default_factory=dict)
    windows: List[Dict] = field(default_factory=list)
    #: start times, only populated under ``record_starts=True`` (testing /
    #: small traces — it is the one unbounded structure).
    starts: Optional[Dict] = None

    @property
    def n_jobs(self) -> int:
        return self.totals.get("n_jobs", 0)

    @property
    def makespan(self):
        return self.totals.get("makespan")


class ReplayEngine:
    """Rolling-horizon replay of an arrival stream (see module docs).

    Parameters
    ----------
    m:
        Machine size the stream is replayed on.
    policy:
        Registered online policy name (``repro list --kind policies``).
    profile_backend:
        Availability structure (``"list"``/``"tree"``/class, or ``None``
        for the module default).  Replay defaults to ``"list"``
        explicitly: pruning keeps the profile at active-window size,
        where flat-array splicing beats tree constants by ~3×
        (``repro bench replay-throughput`` measures it).
    window:
        Jobs per metrics window (0 disables windowed rows).
    store:
        Optional :class:`~repro.run.store.JsonlStore` (or path) that
        window rows and the final totals row stream to.
    prune_interval:
        Completions between profile compactions.
    bsld_tau:
        Bounded-slowdown runtime threshold.
    record_starts:
        Keep ``{job id: start}`` for the whole run — memory O(n); only
        for differential tests and paper-scale traces.
    """

    def __init__(
        self,
        m: int,
        policy: str = "easy",
        profile_backend: BackendSpec = "list",
        window: int = DEFAULT_WINDOW,
        store=None,
        prune_interval: int = DEFAULT_PRUNE_INTERVAL,
        bsld_tau=BSLD_TAU,
        record_starts: bool = False,
    ):
        if m < 1:
            raise SchedulingError(f"machine size must be >= 1, got {m!r}")
        if window < 0:
            raise SchedulingError(f"window must be >= 0, got {window!r}")
        if prune_interval < 1:
            raise SchedulingError("prune_interval must be >= 1")
        self.m = m
        self.policy_name = policy
        self._policy = POLICIES.get(policy)
        self.profile_backend = profile_backend
        self.window = window
        self.prune_interval = prune_interval
        self.bsld_tau = bsld_tau
        self.record_starts = record_starts
        if store is not None and not hasattr(store, "append"):
            from ..run.store import JsonlStore

            store = JsonlStore(store)
        self.store = store

    # ------------------------------------------------------------------
    def run(self, arrivals: Iterable[Job]) -> ReplayResult:
        started_clock = _time.perf_counter()
        state = ReplayState(self.m, self.profile_backend)
        heap: List[Tuple] = []   # (end time, seq, job id) completions
        seq = 0
        now = None

        windows: Dict[int, _WindowAcc] = {}
        window_of: Dict[object, int] = {}   # live jobs only
        emitted: List[Dict] = []
        next_emit = 0
        result = ReplayResult(
            policy=self.policy_name, m=self.m, window_size=self.window,
            starts={} if self.record_starts else None,
        )

        # totals
        arrived = 0
        completed = 0
        events = 0
        total_work = 0
        pmax = 0
        latest_lb_finish = 0
        last_completion = 0
        sum_wait = 0
        max_wait = 0
        sum_slowdown = 0
        sum_bsld = 0
        max_bsld = 0.0
        peak_queue = 0
        peak_running = 0
        peak_segments = 1
        since_prune = 0

        def current_window(index: int) -> Optional[_WindowAcc]:
            if not self.window:
                return None
            w = index // self.window
            acc = windows.get(w)
            if acc is None:
                acc = windows[w] = _WindowAcc(w)
            return acc

        def emit_done_windows(force: bool = False) -> None:
            nonlocal next_emit
            while next_emit in windows and (windows[next_emit].done or force):
                acc = windows.pop(next_emit)
                if acc.arrived:
                    row = acc.row(self.m)
                    emitted.append(row)
                    if self.store is not None:
                        self.store.append(row)
                next_emit += 1

        it = iter(arrivals)
        pending = next(it, None)

        while pending is not None or heap or state.queue:
            if pending is None and not heap:
                raise SchedulingError(
                    f"replay stalled with {len(state.queue)} queued job(s) "
                    "that can never start"
                )
            # advance the clock to the next event time
            t_arrival = pending.release if pending is not None else None
            t_completion = heap[0][0] if heap else None
            if t_completion is not None and (
                t_arrival is None or t_completion <= t_arrival
            ):
                now = t_completion
            else:
                now = t_arrival

            # 1. completions at `now` free their processors first
            while heap and heap[0][0] == now:
                _, _, job_id = heappop(heap)
                job = state.complete_job(job_id)
                events += 1
                completed += 1
                since_prune += 1
                last_completion = now
                w = window_of.pop(job_id, None)
                if w is not None:
                    acc = windows[w]
                    acc.completed += 1
                    acc.last_completion = now
                    if acc.done:
                        emit_done_windows()

            # 2. arrivals at `now` join the queue in stream order
            while pending is not None and pending.release == now:
                job = pending
                state.enqueue(job)
                events += 1
                acc = current_window(arrived)
                if acc is not None:
                    window_of[job.id] = acc.index
                    acc.arrived += 1
                    if acc.first_release is None:
                        acc.first_release = job.release
                    acc.work += job.area
                    if job.p > acc.pmax:
                        acc.pmax = job.p
                    finish = job.release + job.p
                    if finish > acc.latest_lb_finish:
                        acc.latest_lb_finish = finish
                    if acc.arrived == self.window:
                        acc.full = True
                arrived += 1
                total_work += job.area
                if job.p > pmax:
                    pmax = job.p
                if job.release + job.p > latest_lb_finish:
                    latest_lb_finish = job.release + job.p
                pending = next(it, None)
            if pending is None and self.window:
                # the stream ended: the partial trailing window is full
                for acc in windows.values():
                    acc.full = True
                emit_done_windows()

            if len(state.queue) > peak_queue:
                peak_queue = len(state.queue)

            # 3. one decision pass (policies are pass-idempotent)
            for job in self._policy(state, now) if state.queue else ():
                events += 1
                wait = now - job.release
                sum_wait += wait
                if wait > max_wait:
                    max_wait = wait
                # slowdown means are floats (order-noise accepted); the
                # identity-tested totals stay int-exact sums
                sum_slowdown += (wait + job.p) / job.p
                bsld = bounded_slowdown(wait, job.p, self.bsld_tau)
                sum_bsld += bsld
                if bsld > max_bsld:
                    max_bsld = bsld
                w = window_of.get(job.id)
                if w is not None:
                    acc = windows[w]
                    acc.started += 1
                    acc.sum_wait += wait
                    if wait > acc.max_wait:
                        acc.max_wait = wait
                    acc.sum_bsld += bsld
                    if bsld > acc.max_bsld:
                        acc.max_bsld = bsld
                if result.starts is not None:
                    result.starts[job.id] = now
                seq += 1
                heappush(heap, (now + job.p, seq, job.id))

            if len(state.running) > peak_running:
                peak_running = len(state.running)

            # 4. compact the profile behind the clock (high-water sampled
            # just before pruning: the honest peak)
            if since_prune >= self.prune_interval:
                since_prune = 0
                segments = len(state.profile.breakpoints)
                if segments > peak_segments:
                    peak_segments = segments
                state.profile.prune_before(now)

        if self.window:
            emit_done_windows(force=True)
        segments = len(state.profile.breakpoints)
        if segments > peak_segments:
            peak_segments = segments

        makespan = last_completion
        lb = max(pmax, _exact_ratio(total_work, self.m), latest_lb_finish)
        result.windows = emitted
        result.totals = {
            "n_jobs": arrived,
            "makespan": makespan,
            "total_work": total_work,
            "utilization": (
                float(total_work) / float(self.m * makespan) if makespan else 0.0
            ),
            "mean_wait": _mean(sum_wait, arrived),
            "max_wait": max_wait,
            "mean_slowdown": _mean(sum_slowdown, arrived),
            "mean_bounded_slowdown": _mean(sum_bsld, arrived),
            "max_bounded_slowdown": max_bsld,
            "lower_bound": float(lb),
            "ratio_lb": float(makespan) / float(lb) if lb else 0.0,
            "events": events,
            "windows": len(emitted),
            "peak_queue_length": peak_queue,
            "peak_running": peak_running,
            "peak_profile_segments": peak_segments,
            "elapsed_seconds": _time.perf_counter() - started_clock,
        }
        if self.store is not None:
            self.store.append({"key": "totals", **result.totals})
        return result


def _exact_ratio(num, den):
    """``num / den`` kept exact for int inputs (Fractions sum without
    float-order noise), plain division otherwise."""
    if isinstance(num, Integral) and isinstance(den, Integral):
        f = Fraction(int(num), int(den))
        return f.numerator if f.denominator == 1 else f
    return num / den


def replay(
    arrivals: Iterable[Job],
    m: int,
    policy: str = "easy",
    **engine_kwargs,
) -> ReplayResult:
    """Convenience wrapper: replay an arrival iterable on ``m`` machines."""
    return ReplayEngine(m, policy=policy, **engine_kwargs).run(arrivals)


def replay_swf(
    source,
    policy: str = "easy",
    m: Optional[int] = None,
    max_jobs: Optional[int] = None,
    **engine_kwargs,
) -> ReplayResult:
    """Stream an SWF trace (path, ``.gz`` path or text stream) through
    the replay engine.

    The machine size comes from ``m=`` or the trace's ``; MaxProcs:``
    header (resolved from the first arrival before the engine starts).
    Returns the :class:`ReplayResult`; the stream's counters are
    attached as ``totals["skipped_lines"]`` (lines dropped from the
    stream) and ``totals["clipped_jobs"]`` (jobs replayed at reduced
    width).
    """
    from itertools import chain

    from ..workloads.swf import iter_swf

    stream = iter_swf(source, m=m, max_jobs=max_jobs)
    it: Iterator[Job] = iter(stream)
    first = next(it, None)
    if first is None:
        raise TraceFormatError("SWF stream contains no usable jobs")
    engine = ReplayEngine(stream.m, policy=policy, **engine_kwargs)
    result = engine.run(chain([first], it))
    result.totals["skipped_lines"] = stream.n_skipped
    result.totals["clipped_jobs"] = stream.n_clipped
    return result
