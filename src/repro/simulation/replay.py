"""Rolling-horizon trace replay: online policies at million-job scale.

:class:`~repro.simulation.online_sim.OnlineSimulation` materialises the
whole instance, preloads every arrival into the event calendar and keeps
the full event trace — the right shape for paper-scale experiments, and
exactly the wrong one for archive SWF traces (10⁵–10⁷ jobs).  This
module is the out-of-core twin: :class:`ReplayEngine` consumes *any*
iterator of :class:`~repro.core.job.Job` arrivals in release order
(:func:`repro.workloads.swf.iter_swf` streams them off disk in constant
memory, :func:`repro.workloads.swf.synth_swf_jobs` generates them), runs
one of the registered online policies
(:data:`repro.simulation.online_sim.POLICIES`) against a live
availability profile, and keeps every structure bounded by the *active
window* of the simulation rather than by trace length:

* arrivals are pulled one look-ahead at a time — the trace never exists
  in memory;
* completed jobs are accounted into window/total aggregates and
  forgotten — there is no ``finished`` dict and no event trace;
* the availability profile is compacted behind the clock with
  :meth:`~repro.core.profiles.base.ProfileBackend.prune_before` (see the
  soundness argument there), so it holds the active segments only.

Equivalence with the in-memory engine
-------------------------------------
The engine processes, at each distinct event time, all completions, then
all arrivals, then one policy decision pass — the same
completion < arrival < decision ordering the event calendar of
:class:`~repro.simulation.engine.Simulator` enforces.  The built-in
policies are *pass-idempotent* (a second decision pass at the same
instant starts nothing new), so one pass per event time yields the exact
start times ``OnlineSimulation`` produces; a hypothesis differential
test in ``tests/test_replay.py`` asserts byte-identical schedules and
metrics across policies, profile backends and plain/gzip ingestion.
Third-party policies must be pass-idempotent to share that guarantee.

Times pass through arithmetically untouched: integer traces (all SWF
archives, the synthetic pack) therefore run entirely on machine ints —
the replay face of the ``timebase="auto"`` fast path, whose scale factor
a stream cannot compute but which is 1 for every integer trace anyway.

The hot path (the flat-array kernel + calendar queue)
-----------------------------------------------------
Two structures bound the per-event cost:

* the availability profile defaults to ``profile_backend="auto"``: the
  int64 flat-column :class:`~repro.core.profiles.ArrayProfile`, whose
  O(1) ``prune_before`` lets the engine compact behind the clock on
  *every* completion instead of every few thousand, keeping the live
  window at active-jobs size (a trace that turns out non-integral
  demotes to the exact ``"list"`` backend mid-stream — profile state
  converts losslessly, so results are unchanged);
* completions live in a **bucketed calendar queue** — a dict from end
  time to the jobs finishing then, plus a heap of *distinct* end times —
  so simultaneous completions cost one heap operation instead of one
  each, and the per-event peek is a list index.  The PR-4 per-job heap
  remains available as ``completion_queue="heap"``: it is the A/B
  reference the ``replay-throughput`` benchmark gate measures against,
  and both modes are asserted row-identical.

``repro replay`` can also run **several policies at once** — serially,
or sharded across worker processes with ``--jobs N``
(:func:`replay_policies`): each policy's replay is independent, workers
return their per-window aggregates, and the merged JSONL rows are
written policy by policy in declaration order, so serial and sharded
output files are byte-identical (volatile wall-clock fields are kept
out of the merged rows).

A **single** policy's replay can be sharded too: ``--jobs K`` with one
policy cuts the trace at frontier-quiescent boundaries
(:func:`epoch_boundaries`) and relays each epoch's final engine state —
pruned profile, queued and in-flight jobs, open window accumulators,
every counter — to the next worker as a :class:`ReplayCheckpoint`
(:func:`replay_epochs`), so the stitched rows are byte-identical to a
serial run.  On top of the scalar fused loops, the **batched columnar
engine** (``batch="auto"``) collects each event time's arrivals into
int64 columns, screens them with one vectorised prefix-min sweep
(:meth:`~repro.core.profiles.ArrayProfile.fits_many_at`) and commits
accepted placements through an all-or-nothing ``try_reserve_many`` —
falling back losslessly to the scalar path when numpy is absent, the
batch has one job, or the profile has demoted off the array kernel.

Windowed metrics
----------------
Jobs are grouped into fixed-size windows by arrival index (default
10 000).  A window's row reports its jobs' waiting times, bounded
slowdowns, work, utilization over the window's span, and the makespan
ratio against the certified per-window lower bound
``max(pmax, W/m, max_i(release_i + p_i) - first_release)`` — the
paper's ratio-vs-LB criterion applied per window.  Rows are emitted in
window order to an optional :class:`~repro.run.store.JsonlStore` as soon
as the trailing job of a window completes, so monitoring a multi-hour
replay costs no memory.
"""

from __future__ import annotations

import time as _time
import warnings
from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from fractions import Fraction
from heapq import heapify, heappop, heappush
from itertools import chain, islice
from numbers import Integral
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.job import Job
from ..core.metrics import (
    BSLD_TAU,
    TAIL_QUANTILES,
    bounded_slowdown,
    p_slowdown_le,
    quantile,
)
from ..core.profiles import (
    ArrayProfile,
    BackendSpec,
    convert_profile,
    make_profile,
    numpy_module,
    resolve_backend,
)
from ..core.profiles.array_backend import _INT64_MAX
from ..devtools.failpoints import fire
from ..errors import (
    CapacityError,
    InvalidInstanceError,
    ReplayRelayError,
    SchedulingError,
    TraceFormatError,
)
from .online_sim import POLICIES

#: Default window size (jobs per metrics window).
DEFAULT_WINDOW = 10_000

#: Default completions between profile compactions for backends whose
#: ``prune_before`` is O(active segments).  Pruning at a coarse cadence
#: amortises it to O(1) per job; backends advertising ``CHEAP_PRUNE``
#: (the array backend's O(1) offset bump) are pruned on every
#: completion instead, which keeps the live profile at active-window
#: size and this constant irrelevant to them.
DEFAULT_PRUNE_INTERVAL = 4096

#: Arrivals ingested per columnar chunk by the batched engine — large
#: enough to amortise the numpy conversions, small enough that only the
#: live chunk's Job objects are resident (the constant-memory contract).
_BATCH_CHUNK = 8192

#: ``totals`` fields excluded from the merged multi-policy JSONL rows:
#: anything wall-clock-dependent would break the byte-identity of
#: serial vs sharded output.
VOLATILE_TOTAL_FIELDS = frozenset({"elapsed_seconds"})

#: Keys of :attr:`ReplayResult.totals` — the metric names a spec's
#: ``traces`` factor may request (validated in
#: :meth:`repro.run.spec.ExperimentSpec.validate`).
REPLAY_METRIC_FIELDS = frozenset({
    "n_jobs", "makespan", "total_work", "utilization",
    "mean_wait", "max_wait", "mean_slowdown",
    "mean_bounded_slowdown", "max_bounded_slowdown",
    "lower_bound", "ratio_lb", "events", "windows",
    "peak_queue_length", "peak_running", "peak_profile_segments",
    "elapsed_seconds",
    "p_slowdown_le", "requeues", "kills", "no_shows", "early_exits",
})

#: The subset of :data:`REPLAY_METRIC_FIELDS` present in ``totals`` only
#: when a stochastic uncertainty model is active — requesting one of
#: these from a certain-world run is a loud error, not a silent zero.
UNCERTAINTY_METRIC_FIELDS = frozenset({
    "p_slowdown_le", "requeues", "kills", "no_shows", "early_exits",
})


class ReplayDemotionWarning(RuntimeWarning):
    """``profile_backend="auto"`` demoted to the list backend mid-stream."""


def _note_demotion(job: Job) -> Dict:
    """Emit the demotion warning and return the totals-row record.

    The demotion itself is lossless (profile state converts exactly),
    but silently switching kernels mid-stream made throughput
    regressions undiagnosable — so the offending job and time are both
    warned about and recorded in ``totals["demoted_to_list_at"]``.
    """
    record = {"job": job.id, "release": job.release}
    warnings.warn(
        f"profile_backend='auto' demoted to 'list' mid-stream: job "
        f"{job.id!r} (release {job.release!r}) has non-integral times; "
        f"results are unchanged but the int64 fast path is off from here",
        ReplayDemotionWarning,
        stacklevel=3,
    )
    return record


#: Counter names carried across an epoch boundary (one source of truth
#: for the checkpoint builders and the resume hydrators).
_CKPT_COUNTERS = (
    "arrived", "completed", "events", "total_work", "pmax",
    "latest_lb_finish", "last_completion", "sum_wait", "max_wait",
    "sum_slowdown", "sum_bsld", "max_bsld", "peak_queue",
    "running_count", "peak_running", "peak_segments", "since_prune",
    "pruned_to",
)


@dataclass
class ReplayCheckpoint:
    """Full engine state at a frontier between two epoch slices.

    Produced by :meth:`ReplayEngine.run_slice` with ``drain=False``
    after the last arrival of a slice's event time has been fully
    processed (completions < arrivals < decision < prune), and consumed
    by the successor epoch's ``run_slice(..., resume=...)`` — the
    deterministic frontier handoff that makes epoch-sharded replay
    byte-identical to serial.  Everything is plain picklable data so the
    handoff crosses process boundaries.
    """

    #: engine-config fingerprint (validated on resume, loud on mismatch)
    m: int
    policy: str
    window: int
    #: last processed event time
    clock: object
    #: pruned live profile, as canonical lists
    profile_times: List
    profile_caps: List[int]
    #: whether ``"auto"`` already demoted to the list backend
    demoted: bool
    demoted_at: Optional[Dict]
    #: queued (arrived, unstarted) jobs in submission order
    queue: List[Job]
    #: in-flight jobs bucketed by end time, ascending
    buckets: List[Tuple[object, List[Job]]]
    #: live job id -> arrival-window index
    window_of: Dict
    #: open window accumulators (slot dicts), keyed by window index
    windows: Dict[int, Dict]
    next_emit: int
    counters: Dict[str, object]
    #: EASY's blocked-head memo (an exact cache; carried so the resumed
    #: loop repeats the serial run's query pattern precisely)
    blocked_id: object = None
    blocked_until: object = 0
    #: uncertainty frontier state (fates of in-flight attempts, pending
    #: requeues/no-shows, event counters) — ``None`` when no stochastic
    #: model is active, keeping certain-world checkpoints byte-identical
    #: to pre-uncertainty ones
    uncertainty: Optional[Dict] = None


class ReplayState:
    """Policy-facing cluster state for one replay run.

    Implements the protocol the registered policies program against
    (``queue`` / ``queue_in_order`` / ``can_start_now`` / ``start_job``
    / ``earliest_start`` / ``profile``) like
    :class:`~repro.simulation.cluster.ClusterState`, with two scale
    adaptations: the queue is an insertion-ordered dict so committing a
    job is O(1) instead of an O(queue) rebuild, and completed jobs are
    dropped rather than archived.
    """

    def __init__(self, m: int, profile_backend: BackendSpec = None):
        self.m = m
        self.profile = make_profile([0], [m], profile_backend)
        self.queue: Dict[object, Job] = {}
        self.running: Dict[object, Job] = {}

    # -- queue management -------------------------------------------------
    def enqueue(self, job: Job) -> None:
        if job.q > self.m:
            raise SchedulingError(
                f"job {job.id!r} requires {job.q} processors but the "
                f"machine only has {self.m}"
            )
        self.queue[job.id] = job

    def queue_in_order(self) -> List[Job]:
        """Arrived jobs in submission order."""
        return list(self.queue.values())

    # -- placement --------------------------------------------------------
    def can_start_now(self, job: Job, now) -> bool:
        return self.profile.fits(job.q, now, job.p)

    def start_job(self, job: Job, now) -> None:
        # `reserve` re-validates capacity atomically, so committing costs
        # one windowed min instead of the former check-then-reserve two.
        try:
            self.profile.reserve(now, job.p, job.q)
        except CapacityError:
            raise SchedulingError(
                f"job {job.id!r} does not fit at time {now}"
            ) from None
        self.running[job.id] = job
        del self.queue[job.id]

    def complete_job(self, job_id) -> Job:
        job = self.running.pop(job_id, None)
        if job is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        return job

    # -- introspection ----------------------------------------------------
    def earliest_start(self, job: Job, now):
        return self.profile.earliest_fit(job.q, job.p, after=now)


# ---------------------------------------------------------------------------
# fused decision-pass dispatch
# ---------------------------------------------------------------------------

def _fused_policy_kind(policy) -> Optional[str]:
    """Which fused in-engine loop implements ``policy`` — ``None`` for
    policies without one (they run through the generic loop).

    Dispatch is by *registered function object*: re-registering a
    built-in name under a custom function transparently routes it back
    to the generic loop.
    """
    from .online_sim import policy_easy, policy_fcfs, policy_greedy

    if policy is policy_fcfs:
        return "fcfs"
    if policy is policy_greedy:
        return "greedy"
    if policy is policy_easy:
        return "easy"
    return None


class _WindowAcc:
    """Metric accumulator for one arrival-index window."""

    __slots__ = (
        "index", "arrived", "started", "completed", "full",
        "first_release", "last_completion", "work", "pmax",
        "latest_lb_finish", "sum_wait", "max_wait",
        "sum_bsld", "max_bsld",
        "waits", "bslds", "requeues", "kills", "no_shows",
    )

    def __init__(self, index: int):
        self.index = index
        self.arrived = 0
        self.started = 0
        self.completed = 0
        self.full = False          # no more arrivals will join
        self.first_release = None
        self.last_completion = None
        self.work = 0
        self.pmax = 0
        self.latest_lb_finish = 0  # max(release + p): no window schedule beats it
        self.sum_wait = 0
        self.max_wait = 0
        self.sum_bsld = 0
        self.max_bsld = 0.0
        # distributional tracking, enabled (lists instead of None) only
        # under a stochastic uncertainty model — window rows then grow
        # quantile/guarantee/event columns; otherwise rows are unchanged
        self.waits = None
        self.bslds = None
        self.requeues = 0
        self.kills = 0
        self.no_shows = 0

    @property
    def done(self) -> bool:
        return self.full and self.completed == self.arrived

    def state(self) -> Dict:
        """Plain-dict snapshot (for :class:`ReplayCheckpoint`)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_state(cls, state: Dict) -> "_WindowAcc":
        acc = cls(state["index"])
        for slot, value in state.items():
            setattr(acc, slot, value)
        return acc

    def row(self, m: int) -> Dict:
        span = self.last_completion - self.first_release
        lb = max(
            self.pmax,
            self.work / m,
            self.latest_lb_finish - self.first_release,
        )
        n = self.arrived
        row = {
            "key": f"window-{self.index:08d}",
            "window": self.index,
            "jobs": n,
            "t_start": self.first_release,
            "t_end": self.last_completion,
            "makespan": span,
            "lower_bound": lb,
            "ratio_lb": float(span) / float(lb) if lb else 0.0,
            "utilization": float(self.work) / float(m * span) if span else 0.0,
            "mean_wait": _mean(self.sum_wait, n),
            "max_wait": self.max_wait,
            "mean_bounded_slowdown": _mean(self.sum_bsld, n),
            "max_bounded_slowdown": self.max_bsld,
        }
        if self.waits is not None:
            row["p_slowdown_le"] = p_slowdown_le(self.bslds)
            for q in TAIL_QUANTILES:
                pct = f"p{int(q * 100)}"
                row[f"wait_{pct}"] = quantile(self.waits, q)
                row[f"bsld_{pct}"] = quantile(self.bslds, q)
            row["requeues"] = self.requeues
            row["kills"] = self.kills
            row["no_shows"] = self.no_shows
        return row


def _mean(total, n: int) -> float:
    return float(total) / n if n else 0.0


@dataclass
class ReplayResult:
    """Outcome of one rolling-horizon replay."""

    policy: str
    m: int
    window_size: int
    totals: Dict = field(default_factory=dict)
    windows: List[Dict] = field(default_factory=list)
    #: start times, only populated under ``record_starts=True`` (testing /
    #: small traces — it is the one unbounded structure).
    starts: Optional[Dict] = None
    #: engine state at the slice frontier — set only by
    #: :meth:`ReplayEngine.run_slice` with ``drain=False`` (epoch
    #: sharding); ``None`` on every fully-drained run.
    checkpoint: Optional[ReplayCheckpoint] = None
    #: structured records of epoch-worker failures that were healed
    #: (retried or re-executed serially) by :func:`replay_epochs`.
    #: Deliberately *not* part of ``totals``: recovery metadata is
    #: volatile and must never break serial-vs-sharded byte identity.
    recoveries: List[Dict] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return self.totals.get("n_jobs", 0)

    @property
    def makespan(self):
        return self.totals.get("makespan")


class ReplayEngine:
    """Rolling-horizon replay of an arrival stream (see module docs).

    Parameters
    ----------
    m:
        Machine size the stream is replayed on.
    policy:
        Registered online policy name (``repro list --kind policies``).
    profile_backend:
        Availability structure (``"list"``/``"tree"``/``"array"``/class,
        ``None`` for the module default, or the replay-specific
        ``"auto"``, the default).  ``"auto"`` starts on the int64
        flat-array kernel — pruned O(1) behind the clock on every
        completion, it holds only the active window, where flat columns
        beat both exact backends — and demotes the live profile to the
        exact ``"list"`` backend the moment a non-integral job time
        appears (conversion preserves the represented function, so
        results are identical; integer traces never demote).
    window:
        Jobs per metrics window (0 disables windowed rows).
    store:
        Optional :class:`~repro.run.store.JsonlStore` (or path) that
        window rows and the final totals row stream to.
    prune_interval:
        Completions between profile compactions (cheap-prune backends
        compact every completion regardless; see
        :data:`DEFAULT_PRUNE_INTERVAL`).
    bsld_tau:
        Bounded-slowdown runtime threshold.
    record_starts:
        Keep ``{job id: start}`` for the whole run — memory O(n); only
        for differential tests and paper-scale traces.
    completion_queue:
        ``"calendar"`` (default) buckets completions by end time with a
        heap of distinct times; ``"heap"`` is the PR-4 per-job heap,
        kept as the A/B reference for the throughput benchmark.  Both
        orderings are identical (same-time completions pop in start
        order either way).
    fused_policies:
        Dispatch built-in policies to their fused in-engine twins
        (identical semantics, fewer indirection layers; see the module
        docs).  ``False`` forces the generic registry functions — the
        A/B reference configuration.
    batch:
        ``"auto"`` (default) runs the **batched decision engine** — the
        columnar event-batch loop of :meth:`_run_batched` — whenever the
        policy has a fused twin, the calendar queue is active, the
        profile backend is the int64 array kernel and numpy is present;
        anything else falls back losslessly to the PR-5 scalar fused
        path.  ``True`` asks for it explicitly (still falling back
        losslessly when numpy is absent, per the batched engine's
        contract); ``False`` pins the scalar engine — the A/B baseline
        leg of the throughput gate.
    """

    def __init__(
        self,
        m: int,
        policy: str = "easy",
        profile_backend: BackendSpec = "auto",
        window: int = DEFAULT_WINDOW,
        store=None,
        prune_interval: int = DEFAULT_PRUNE_INTERVAL,
        bsld_tau=BSLD_TAU,
        record_starts: bool = False,
        completion_queue: str = "calendar",
        fused_policies: bool = True,
        batch="auto",
        uncertainty=None,
    ):
        if m < 1:
            raise SchedulingError(f"machine size must be >= 1, got {m!r}")
        if window < 0:
            raise SchedulingError(f"window must be >= 0, got {window!r}")
        if prune_interval < 1:
            raise SchedulingError("prune_interval must be >= 1")
        if completion_queue not in ("calendar", "heap"):
            raise SchedulingError(
                f"completion_queue must be 'calendar' or 'heap', "
                f"got {completion_queue!r}"
            )
        if batch not in ("auto", True, False):
            raise SchedulingError(
                f"batch must be 'auto', True or False, got {batch!r}"
            )
        self.m = m
        self.policy_name = policy
        self._policy = POLICIES.get(policy)
        self.profile_backend = profile_backend
        self.window = window
        self.prune_interval = prune_interval
        self.bsld_tau = bsld_tau
        self.record_starts = record_starts
        self.completion_queue = completion_queue
        self.fused_policies = fused_policies
        self.batch = batch
        from ..workloads.uncertainty import resolve_uncertainty

        model = resolve_uncertainty(uncertainty)
        if model is not None and model.is_exact:
            # the degenerate model is no model: the run dispatches to
            # the fused/batched twins and stays byte-identical
            model = None
        if model is not None and completion_queue != "calendar":
            raise SchedulingError(
                "uncertainty models require completion_queue='calendar'"
            )
        self.uncertainty = model
        if store is not None and not hasattr(store, "append"):
            from ..run.store import JsonlStore

            store = JsonlStore(store)
        self.store = store

    # ------------------------------------------------------------------
    def run(self, arrivals: Iterable[Job]) -> ReplayResult:
        """Replay ``arrivals``; returns the :class:`ReplayResult`.

        Dispatches to the batched columnar loop (:meth:`_run_batched`)
        when active (see the ``batch`` parameter), else to the fused
        hot loop (:meth:`_run_fused`) when the policy is a built-in with
        a fused twin and the calendar queue is active; the generic loop
        remains the reference implementation for custom policies, the
        heap queue and ``fused_policies=False`` — all produce identical
        rows (differential-tested).
        """
        return self.run_slice(arrivals)

    def run_slice(
        self,
        arrivals: Iterable[Job],
        resume: Optional[ReplayCheckpoint] = None,
        drain: bool = True,
    ) -> ReplayResult:
        """Replay one slice of an arrival stream, optionally mid-state.

        The epoch-sharded entry point: with ``resume`` the engine starts
        from a predecessor's :class:`ReplayCheckpoint` (pruned profile +
        in-flight queue snapshot) instead of an empty machine; with
        ``drain=False`` it stops once the slice's last arrival's event
        time is fully processed — leaving in-flight jobs in flight — and
        attaches the frontier state as ``result.checkpoint`` (totals are
        then left empty; windowed rows emitted by this slice are in
        ``result.windows``).  ``run_slice(arrivals)`` is exactly
        :meth:`run`.  Epoch slicing requires the calendar queue.
        """
        if resume is not None:
            if (resume.m, resume.policy, resume.window) != (
                self.m, self.policy_name, self.window
            ):
                raise SchedulingError(
                    f"checkpoint was produced by a different engine config "
                    f"(m={resume.m}, policy={resume.policy!r}, "
                    f"window={resume.window}); this engine has m={self.m}, "
                    f"policy={self.policy_name!r}, window={self.window}"
                )
        if (resume is not None or not drain) and self.completion_queue != "calendar":
            raise SchedulingError(
                "epoch-sharded replay requires completion_queue='calendar'"
            )
        if self.uncertainty is not None:
            # stochastic runs delegate to the generic reference loop:
            # SchedulerCore owns the reschedule-on-actual mechanics, and
            # one implementation of them beats three drifting twins
            return self._run_generic(arrivals, resume, drain)
        if (
            self.fused_policies
            and self.completion_queue == "calendar"
            and _fused_policy_kind(self._policy) is not None
        ):
            if self._batch_active(resume):
                return self._run_batched(arrivals, resume, drain)
            return self._run_fused(arrivals, resume, drain)
        return self._run_generic(arrivals, resume, drain)

    def _batch_active(self, resume: Optional[ReplayCheckpoint]) -> bool:
        """Whether the batched columnar loop handles this run.

        Requires the int64 array kernel (``profile_backend`` ``"auto"``
        or ``"array"``) and numpy; ``batch=False`` pins the scalar
        engine, and a checkpoint that already demoted to the list
        backend resumes on the scalar path too (the batched loop is
        array-only).
        """
        if self.batch is False:
            return False
        if numpy_module() is None:
            return False  # lossless fallback: scalar fused path
        if self.profile_backend not in ("auto", "array"):
            return False
        if resolve_backend("array") is not ArrayProfile:
            return False  # a re-registered "array" has no int64 columns
        if resume is not None and resume.demoted:
            return False
        return True

    def _run_generic(
        self,
        arrivals: Iterable[Job],
        resume: Optional[ReplayCheckpoint] = None,
        drain: bool = True,
    ) -> ReplayResult:
        """The reference loop, as a thin trace-driving client of
        :class:`~repro.simulation.scheduler_core.SchedulerCore`: group
        the stream's arrivals by release time, ``submit`` each group,
        ``advance_to`` its event time, then ``drain`` (or suspend at
        the frontier and attach the core's checkpoint)."""
        from .scheduler_core import SchedulerCore

        started_clock = _time.perf_counter()
        core = SchedulerCore(
            self.m, self.policy_name,
            profile_backend=self.profile_backend, window=self.window,
            store=self.store, prune_interval=self.prune_interval,
            bsld_tau=self.bsld_tau, record_starts=self.record_starts,
            completion_queue=self.completion_queue, decide=self._policy,
            resume=resume, uncertainty=self.uncertainty,
        )
        it = iter(arrivals)
        pending = next(it, None)
        while pending is not None:
            t = pending.release
            while pending is not None and pending.release == t:
                core.submit(pending)
                pending = next(it, None)
            if pending is not None or not drain:
                core.advance_to(t)
        result = ReplayResult(
            policy=self.policy_name, m=self.m, window_size=self.window,
            starts=core.starts,
        )
        if not drain:
            result.windows = core.emitted
            result.checkpoint = core.checkpoint()
            return result
        core.drain()
        return self._finalize(
            result, core.emitted, started_clock, **core.totals_kwargs()
        )

    # ------------------------------------------------------------------
    def _run_fused(
        self,
        arrivals: Iterable[Job],
        resume: Optional[ReplayCheckpoint] = None,
        drain: bool = True,
    ) -> ReplayResult:
        """The fused hot loop: the built-in policy's decision pass is
        inlined into the event loop, placement goes through the
        profile's single-bisect :meth:`~repro.core.profiles.base.
        ProfileBackend.try_reserve`, EASY's shadow reservation is
        replaced by the equivalent three-window queries (no mutation
        churn), and the calendar queue stores Job objects directly so
        there is no separate running dict.  Semantically identical to
        :meth:`_run_generic` — the differential tests and the
        ``replay-throughput`` identity matrix assert equal rows."""
        started_clock = _time.perf_counter()
        m = self.m
        backend: BackendSpec = self.profile_backend
        auto_backend = backend == "auto"
        demoted = resume is not None and resume.demoted
        demoted_at = resume.demoted_at if resume is not None else None
        if auto_backend:
            backend = "list" if demoted else "array"
        if resume is not None:
            profile = make_profile(
                list(resume.profile_times), list(resume.profile_caps), backend
            )
        else:
            profile = make_profile([0], [m], backend)
        watch_times = (
            auto_backend and not demoted
            and getattr(profile, "CHEAP_PRUNE", False)
        )
        cheap_prune = getattr(profile, "CHEAP_PRUNE", False)
        kind = _fused_policy_kind(self._policy)
        easy = kind == "easy"
        greedy = kind == "greedy"

        try_reserve = profile.try_reserve
        reserve_fitting = profile.reserve_fitting
        earliest_fit = profile.earliest_fit
        min_capacity = profile.min_capacity
        capacity_at = profile.capacity_at
        fits = profile.fits
        prune = profile.prune_before
        seg_count = profile.segment_count

        queue: Dict[object, Job] = {}
        buckets: Dict = {}           # end time -> jobs finishing then
        time_heap: List = []         # distinct end times
        now = None
        blocked_id: object = None    # easy: memoised blocked head ...
        blocked_until = 0            # ... and its exact earliest fit
        # arrival-side accumulators of the window currently filling —
        # arrivals are strictly sequential by index, so these live in
        # locals and flush into the _WindowAcc at rollover/stream end
        cur_acc = None
        wa_arrived = wa_work = wa_pmax = wa_latest = 0
        wa_first = None

        window = self.window
        prune_interval = self.prune_interval
        bsld_tau = self.bsld_tau
        store = self.store
        windows: Dict[int, _WindowAcc] = {}
        #: live jobs only; values are the accumulator objects themselves
        window_of: Dict[object, _WindowAcc] = {}
        emitted: List[Dict] = []
        next_emit = 0
        result = ReplayResult(
            policy=self.policy_name, m=m, window_size=window,
            starts={} if self.record_starts else None,
        )
        record = result.starts

        # totals
        arrived = 0
        completed = 0
        total_work = 0
        pmax = 0
        latest_lb_finish = 0
        last_completion = 0
        sum_wait = 0
        max_wait = 0
        sum_slowdown = 0
        sum_bsld = 0
        max_bsld = 0.0  # repro: noqa RPL201 -- bsld gauge is float by definition
        peak_queue = 0
        running_count = 0
        peak_running = 0
        peak_segments = 1
        since_prune = 0
        pruned_to = 0   # completions already compacted behind

        if resume is not None:
            for job in resume.queue:
                queue[job.id] = job
            for end, bucket in resume.buckets:
                buckets[end] = list(bucket)
                time_heap.append(end)
            heapify(time_heap)
            windows = {
                w: _WindowAcc.from_state(s) for w, s in resume.windows.items()
            }
            window_of = {
                jid: windows[w] for jid, w in resume.window_of.items()
            }
            next_emit = resume.next_emit
            blocked_id = resume.blocked_id
            blocked_until = resume.blocked_until
            c = resume.counters
            (arrived, completed, _events, total_work, pmax, latest_lb_finish,
             last_completion, sum_wait, max_wait, sum_slowdown, sum_bsld,
             max_bsld, peak_queue, running_count, peak_running,
             peak_segments, since_prune, pruned_to) = (
                c[name] for name in _CKPT_COUNTERS
            )
            if window:
                acc0 = windows.get(arrived // window)
                if acc0 is not None and not acc0.full:
                    # re-open the window that was filling at the frontier
                    cur_acc = acc0
                    wa_arrived = acc0.arrived
                    wa_work = acc0.work
                    wa_pmax = acc0.pmax
                    wa_latest = acc0.latest_lb_finish
                    wa_first = acc0.first_release

        def emit_done_windows(force: bool = False) -> None:
            nonlocal next_emit
            while next_emit in windows and (windows[next_emit].done or force):
                acc = windows.pop(next_emit)
                if acc.arrived:
                    row = acc.row(m)
                    emitted.append(row)
                    if store is not None:
                        store.append(row)
                next_emit += 1

        it = iter(arrivals)
        pending = next(it, None)
        t_arrival = pending.release if pending is not None else None

        while pending is not None or time_heap or queue:
            if pending is None and not drain:
                break  # slice exhausted: suspend at the frontier
            if pending is None and not time_heap:
                raise SchedulingError(
                    f"replay stalled with {len(queue)} queued job(s) "
                    "that can never start"
                )
            # clock advance fused with completion processing: when the
            # next completion is due it *is* the event
            if time_heap:
                tc = time_heap[0]
                if t_arrival is None or tc <= t_arrival:
                    now = tc
                    # 1. completions at `now` free their processors first
                    heappop(time_heap)
                    finished = buckets.pop(now)
                    n_finished = len(finished)
                    completed += n_finished
                    since_prune += n_finished
                    running_count -= n_finished
                    last_completion = now
                    if window:
                        for job in finished:
                            acc = window_of.pop(job.id)
                            acc.completed += 1
                            acc.last_completion = now
                            if acc.full and acc.completed == acc.arrived:
                                emit_done_windows()
                else:
                    now = t_arrival
            else:
                now = t_arrival

            # 2. arrivals at `now` join the queue in stream order
            while t_arrival == now and pending is not None:
                job = pending
                if watch_times and not (
                    type(job.p) is int and type(job.release) is int
                ):
                    # non-integral trace: demote to the exact list
                    # backend (conversion preserves the function)
                    profile = convert_profile(profile, "list")
                    watch_times = cheap_prune = False
                    demoted = True
                    demoted_at = _note_demotion(job)
                    try_reserve = profile.try_reserve
                    reserve_fitting = profile.reserve_fitting
                    earliest_fit = profile.earliest_fit
                    min_capacity = profile.min_capacity
                    capacity_at = profile.capacity_at
                    fits = profile.fits
                    prune = profile.prune_before
                    seg_count = profile.segment_count
                jq = job.q
                if jq > m:
                    raise SchedulingError(
                        f"job {job.id!r} requires {jq} processors but the "
                        f"machine only has {m}"
                    )
                queue[job.id] = job
                # the queue only grows during the arrival phase, so
                # sampling after each enqueue sees every high-water mark
                qlen = len(queue)
                if qlen > peak_queue:
                    peak_queue = qlen
                jp = job.p
                rel = job.release
                area = jp * jq
                finish = rel + jp
                if window:
                    if cur_acc is None:
                        w = arrived // window
                        cur_acc = windows[w] = _WindowAcc(w)
                        wa_arrived = wa_work = wa_pmax = wa_latest = 0
                        wa_first = rel
                    window_of[job.id] = cur_acc
                    wa_arrived += 1
                    wa_work += area
                    if jp > wa_pmax:
                        wa_pmax = jp
                    if finish > wa_latest:
                        wa_latest = finish
                    if wa_arrived == window:
                        acc = cur_acc
                        acc.arrived = window
                        acc.first_release = wa_first
                        acc.work = wa_work
                        acc.pmax = wa_pmax
                        acc.latest_lb_finish = wa_latest
                        acc.full = True
                        cur_acc = None
                arrived += 1
                total_work += area
                if jp > pmax:
                    pmax = jp
                if finish > latest_lb_finish:
                    latest_lb_finish = finish
                pending = next(it, None)
                if pending is not None:
                    t_arrival = pending.release
                    continue
                t_arrival = None
                if window and drain:
                    # the stream ended: flush the partial trailing
                    # window, then every open window is full
                    if cur_acc is not None:
                        acc = cur_acc
                        acc.arrived = wa_arrived
                        acc.first_release = wa_first
                        acc.work = wa_work
                        acc.pmax = wa_pmax
                        acc.latest_lb_finish = wa_latest
                        cur_acc = None
                    for acc in windows.values():
                        acc.full = True
                    emit_done_windows()

            # 3. one inlined decision pass (identical to the registered
            # policy; see _fused_policy_kind).  The per-start bookkeeping
            # block is intentionally repeated in each branch: a shared
            # closure would turn every hot counter into a cell variable
            # (slowing the whole loop), and the fused-vs-generic
            # differential tests pin all copies to _run_generic anyway.
            if queue:
                if easy:
                    # Blocked-head memo: while `blocked_id` heads the
                    # queue, `blocked_until` is its exact earliest fit.
                    # It stays exact because inside this loop the profile
                    # only ever *loses* capacity (no shadow mutation, no
                    # `add`), and each commit is either a head start —
                    # which changes the head id, missing the memo — or a
                    # shadow-checked backfill, which by construction
                    # leaves the head fitting at `blocked_until` while
                    # capacity loss cannot move an earliest fit earlier.
                    # So `now < blocked_until` proves the head probe
                    # fails and phase 2 may reuse the cached value.
                    # phase 1: heads
                    head = None
                    while queue:
                        head = next(iter(queue.values()))
                        if blocked_id == head.id and now < blocked_until:
                            break
                        jp = head.p
                        if not try_reserve(now, jp, head.q):
                            break
                        del queue[head.id]
                        running_count += 1
                        wait = now - head.release
                        sum_wait += wait
                        if wait > max_wait:
                            max_wait = wait
                        # repro: noqa-begin RPL2xx -- slowdown/bsld gauges are
                        # float aggregates; grid times never read them back
                        sum_slowdown += (wait + jp) / jp
                        den = jp if jp > bsld_tau else bsld_tau
                        bsld = float(wait + jp) / float(den)
                        if bsld < 1.0:
                            bsld = 1.0
                        # repro: noqa-end RPL2xx
                        sum_bsld += bsld
                        if bsld > max_bsld:
                            max_bsld = bsld
                        if window:
                            acc = window_of[head.id]
                            acc.started += 1
                            acc.sum_wait += wait
                            if wait > acc.max_wait:
                                acc.max_wait = wait
                            acc.sum_bsld += bsld
                            if bsld > acc.max_bsld:
                                acc.max_bsld = bsld
                        if record is not None:
                            record[head.id] = now
                        end = now + jp
                        bucket = buckets.get(end)
                        if bucket is None:
                            buckets[end] = [head]
                            heappush(time_heap, end)
                        else:
                            bucket.append(head)
                    if len(queue) > 1:
                        # phase 2: the head's shadow reservation,
                        # expressed as window queries — a backfill
                        # candidate fits under the shadow iff each of
                        # the <=3 sub-windows clears its demand.  (With
                        # no candidates behind the head the shadow can
                        # start nothing, so it is skipped outright.)
                        hp = head.p
                        hq = head.q
                        if blocked_id == head.id:
                            s_head = blocked_until
                        else:
                            s_head = earliest_fit(hq, hp, after=now)
                            if s_head is None:
                                raise SchedulingError(
                                    f"job {head.id!r} can never start"
                                )
                            blocked_id = head.id
                            blocked_until = s_head
                        h_end = s_head + hp
                        # Every candidate's window contains `now`, and
                        # the shadow starts strictly after `now`
                        # (s_head > now — the head just failed to fit),
                        # so a width above the capacity at `now` cannot
                        # start: one int compare screens most blocked
                        # candidates before any window query.
                        cap_now = capacity_at(now)
                        backfill = iter(list(queue.values()))
                        next(backfill)  # the head itself
                        for job in backfill:
                            jq = job.q
                            if jq > cap_now:
                                continue
                            jp = job.p
                            j_end = now + jp
                            if s_head >= j_end:
                                ok = fits(jq, now, jp)
                            else:
                                lim = j_end if j_end < h_end else h_end
                                ok = (
                                    min_capacity(s_head, lim) >= jq + hq
                                    and (s_head <= now
                                         or min_capacity(now, s_head) >= jq)
                                    and (j_end <= h_end
                                         or min_capacity(h_end, j_end) >= jq)
                                )
                            if ok:
                                cap_now -= jq
                                reserve_fitting(now, jp, jq)
                                del queue[job.id]
                                running_count += 1
                                wait = now - job.release
                                sum_wait += wait
                                if wait > max_wait:
                                    max_wait = wait
                                # repro: noqa-begin RPL2xx -- float slowdown/
                                # bsld gauges; never read back into grid times
                                sum_slowdown += (wait + jp) / jp
                                den = jp if jp > bsld_tau else bsld_tau
                                bsld = float(wait + jp) / float(den)
                                if bsld < 1.0:
                                    bsld = 1.0
                                # repro: noqa-end RPL2xx
                                sum_bsld += bsld
                                if bsld > max_bsld:
                                    max_bsld = bsld
                                if window:
                                    acc = window_of[job.id]
                                    acc.started += 1
                                    acc.sum_wait += wait
                                    if wait > acc.max_wait:
                                        acc.max_wait = wait
                                    acc.sum_bsld += bsld
                                    if bsld > acc.max_bsld:
                                        acc.max_bsld = bsld
                                if record is not None:
                                    record[job.id] = now
                                end = now + jp
                                bucket = buckets.get(end)
                                if bucket is None:
                                    buckets[end] = [job]
                                    heappush(time_heap, end)
                                else:
                                    bucket.append(job)
                else:
                    # fcfs / greedy: one ordered sweep; fcfs stops at
                    # the first job that does not fit
                    for job in list(queue.values()):
                        jp = job.p
                        if not try_reserve(now, jp, job.q):
                            if greedy:
                                continue
                            break
                        del queue[job.id]
                        running_count += 1
                        wait = now - job.release
                        sum_wait += wait
                        if wait > max_wait:
                            max_wait = wait
                        # repro: noqa-begin RPL2xx -- slowdown/bsld gauges are
                        # float aggregates; grid times never read them back
                        sum_slowdown += (wait + jp) / jp
                        den = jp if jp > bsld_tau else bsld_tau
                        bsld = float(wait + jp) / float(den)
                        if bsld < 1.0:
                            bsld = 1.0
                        # repro: noqa-end RPL2xx
                        sum_bsld += bsld
                        if bsld > max_bsld:
                            max_bsld = bsld
                        if window:
                            acc = window_of[job.id]
                            acc.started += 1
                            acc.sum_wait += wait
                            if wait > acc.max_wait:
                                acc.max_wait = wait
                            acc.sum_bsld += bsld
                            if bsld > acc.max_bsld:
                                acc.max_bsld = bsld
                        if record is not None:
                            record[job.id] = now
                        end = now + jp
                        bucket = buckets.get(end)
                        if bucket is None:
                            buckets[end] = [job]
                            heappush(time_heap, end)
                        else:
                            bucket.append(job)

            if running_count > peak_running:
                peak_running = running_count

            # 4. compact the profile behind the clock (completion events
            # only: capacity history only accrues when jobs finish).
            # segment_count is O(1), so the peak gauge samples before
            # every compaction and is exact.
            if cheap_prune:
                if completed != pruned_to:
                    pruned_to = completed
                    segments = seg_count()
                    if segments > peak_segments:
                        peak_segments = segments
                    prune(now)
            elif since_prune >= prune_interval:
                since_prune = 0
                segments = seg_count()
                if segments > peak_segments:
                    peak_segments = segments
                prune(now)

        if not drain:
            if cur_acc is not None:
                # fold the filling window's locals back into its acc so
                # the successor epoch re-opens it exactly where it was
                acc = cur_acc
                acc.arrived = wa_arrived
                acc.first_release = wa_first
                acc.work = wa_work
                acc.pmax = wa_pmax
                acc.latest_lb_finish = wa_latest
            times_l, caps_l = profile.as_lists()
            result.windows = emitted
            result.checkpoint = ReplayCheckpoint(
                m=m, policy=self.policy_name, window=window,
                clock=now if now is not None else (
                    resume.clock if resume is not None else 0
                ),
                profile_times=times_l, profile_caps=caps_l,
                demoted=demoted, demoted_at=demoted_at,
                queue=list(queue.values()),
                buckets=sorted(buckets.items()),
                window_of={jid: acc.index for jid, acc in window_of.items()},
                windows={w: acc.state() for w, acc in windows.items()},
                next_emit=next_emit,
                counters=dict(zip(_CKPT_COUNTERS, (
                    arrived, completed, 0, total_work, pmax,
                    latest_lb_finish, last_completion, sum_wait, max_wait,
                    sum_slowdown, sum_bsld, max_bsld, peak_queue,
                    running_count, peak_running, peak_segments, since_prune,
                    pruned_to,
                ))),
                blocked_id=blocked_id, blocked_until=blocked_until,
            )
            return result

        if window:
            emit_done_windows(force=True)
        segments = seg_count()
        if segments > peak_segments:
            peak_segments = segments

        # the loop only exits fully drained, so every job contributed
        # exactly one arrival, one start and one completion event
        return self._finalize(
            result, emitted, started_clock,
            arrived=arrived, events=3 * arrived, total_work=total_work,
            pmax=pmax, latest_lb_finish=latest_lb_finish,
            last_completion=last_completion, sum_wait=sum_wait,
            max_wait=max_wait, sum_slowdown=sum_slowdown,
            sum_bsld=sum_bsld, max_bsld=max_bsld, peak_queue=peak_queue,
            peak_running=peak_running, peak_segments=peak_segments,
            demoted_at=demoted_at, windows_emitted=next_emit,
        )

    # ------------------------------------------------------------------
    def _run_batched(
        self,
        arrivals: Iterable[Job],
        resume: Optional[ReplayCheckpoint] = None,
        drain: bool = True,
    ) -> ReplayResult:
        """The columnar event-batch loop (the PR-6 tentpole).

        Arrivals are ingested in chunks of :data:`_BATCH_CHUNK` into
        parallel release/p/q columns; the arrival-side totals and
        window aggregates (work, pmax, latest ``release + p`` — all
        order-free integer stats) fold in one numpy pass per chunk
        instead of ~15 interpreted ops per job.  At each event time the
        whole same-release batch is decided at once: multi-arrival
        batches are screened with one
        :meth:`~repro.core.profiles.ArrayProfile.earliest_fit_many`
        sweep and committed atomically via
        :meth:`~repro.core.profiles.ArrayProfile.try_reserve_many`
        (falling back to the exact sequential pass when the screen's
        candidates interfere), while the dominant single-arrival /
        empty-queue case inlines the array backend's probe-and-commit
        directly on the int64 columns.  Order-sensitive float
        accounting (slowdown sums) stays scalar and per-start, in start
        order, so every row and total is byte-identical to the scalar
        engines — the differential tests and the throughput identity
        matrix pin this.

        A chunk that violates the int64 grid (non-``int`` times, an
        overflow, a ``q`` numpy cannot widen) hands the un-ingested
        jobs plus the remaining stream to :meth:`_run_fused` through an
        internal checkpoint: the scalar loop then demotes (or raises)
        at exactly the job the serial run would have.
        """
        started_clock = _time.perf_counter()
        m = self.m
        np = numpy_module()
        if resume is not None:
            profile = make_profile(
                list(resume.profile_times), list(resume.profile_caps), "array"
            )
        else:
            profile = make_profile([0], [m], "array")
        kind = _fused_policy_kind(self._policy)
        easy = kind == "easy"
        greedy = kind == "greedy"

        ptimes = profile._times      # stable objects: the batched loop
        pcaps = profile._caps        # never rebinds the columns
        try_reserve = profile.try_reserve
        reserve_fitting = profile.reserve_fitting
        earliest_fit = profile.earliest_fit
        fits_many_at = profile.fits_many_at
        try_res_many = profile.try_reserve_many
        min_capacity = profile.min_capacity
        capacity_at = profile.capacity_at
        fits = profile.fits
        prune = profile.prune_before

        queue: Dict[int, Job] = {}   # arrival index -> job, FIFO
        buckets: Dict = {}           # end time -> [(job, acc-or-None)]
        time_heap: List = []         # distinct end times
        now = None
        blocked_id: object = None    # easy: memoised blocked head ...
        blocked_until = 0            # ... and its exact earliest fit

        window = self.window
        bsld_tau = self.bsld_tau
        store = self.store
        windows: Dict[int, _WindowAcc] = {}
        emitted: List[Dict] = []
        next_emit = 0
        result = ReplayResult(
            policy=self.policy_name, m=m, window_size=window,
            starts={} if self.record_starts else None,
        )
        record = result.starts

        # totals
        arrived = 0
        completed = 0
        total_work = 0
        pmax = 0
        latest_lb_finish = 0
        last_completion = 0
        sum_wait = 0
        max_wait = 0
        sum_slowdown = 0
        sum_bsld = 0
        max_bsld = 0.0  # repro: noqa RPL201 -- bsld gauge is float by definition
        peak_queue = 0
        running_count = 0
        peak_running = 0
        peak_segments = 1
        since_prune = 0
        pruned_to = 0   # completions already compacted behind

        if resume is not None:
            windows = {
                w: _WindowAcc.from_state(s) for w, s in resume.windows.items()
            }
            if window:
                # synthesize FIFO keys that keep ``idx // window`` exact
                # for every queued job (collision-free with future real
                # indices: a window's queued jobs never outnumber the
                # arrivals processed so far)
                wcount: Dict[int, int] = {}
                for job in resume.queue:
                    w = resume.window_of[job.id]
                    k = wcount.get(w, 0)
                    wcount[w] = k + 1
                    queue[w * window + k] = job
            else:
                for k, job in enumerate(resume.queue):
                    queue[k] = job
            for end, bucket in resume.buckets:
                if window:
                    buckets[end] = [
                        (job, windows[resume.window_of[job.id]])
                        for job in bucket
                    ]
                else:
                    buckets[end] = [(job, None) for job in bucket]
                time_heap.append(end)
            heapify(time_heap)
            next_emit = resume.next_emit
            blocked_id = resume.blocked_id
            blocked_until = resume.blocked_until
            c = resume.counters
            (arrived, completed, _events, total_work, pmax, latest_lb_finish,
             last_completion, sum_wait, max_wait, sum_slowdown, sum_bsld,
             max_bsld, peak_queue, running_count, peak_running,
             peak_segments, since_prune, pruned_to) = (
                c[name] for name in _CKPT_COUNTERS
            )

        def emit_ready(force: bool = False) -> None:
            nonlocal next_emit
            while next_emit in windows and (windows[next_emit].done or force):
                acc = windows.pop(next_emit)
                if acc.arrived:
                    row = acc.row(m)
                    emitted.append(row)
                    if store is not None:
                        store.append(row)
                next_emit += 1

        def make_ckpt() -> ReplayCheckpoint:
            times_l, caps_l = profile.as_lists()
            wof: Dict = {}
            if window:
                for qidx, qjob in queue.items():
                    wof[qjob.id] = qidx // window
                for bucket in buckets.values():
                    for bjob, bacc in bucket:
                        wof[bjob.id] = bacc.index
            return ReplayCheckpoint(
                m=m, policy=self.policy_name, window=window,
                clock=now if now is not None else (
                    resume.clock if resume is not None else 0
                ),
                profile_times=times_l, profile_caps=caps_l,
                demoted=False, demoted_at=None,
                queue=list(queue.values()),
                buckets=sorted(
                    (end, [bj for bj, _ in bucket])
                    for end, bucket in buckets.items()
                ),
                window_of=wof,
                windows={w: acc.state() for w, acc in windows.items()},
                next_emit=next_emit,
                counters=dict(zip(_CKPT_COUNTERS, (
                    arrived, completed, 0, total_work, pmax,
                    latest_lb_finish, last_completion, sum_wait, max_wait,
                    sum_slowdown, sum_bsld, max_bsld, peak_queue,
                    running_count, peak_running, peak_segments, since_prune,
                    pruned_to,
                ))),
                blocked_id=blocked_id, blocked_until=blocked_until,
            )

        it = iter(arrivals)
        # columnar chunk state
        jobs_c: List[Job] = []
        rel_l: List[int] = []
        p_l: List[int] = []
        q_l: List[int] = []
        nchunk = 0
        ci = 0
        base = 0
        next_base = arrived
        stream_end = False

        def load_chunk() -> Optional[List[Job]]:
            """Ingest the next chunk; fold its arrival-side aggregates.

            Returns ``None`` on success (or stream end), or the
            un-ingested chunk when it cannot live on the int64 grid —
            the caller then hands everything off to the scalar loop.
            """
            nonlocal jobs_c, rel_l, p_l, q_l, nchunk, ci, base, next_base
            nonlocal stream_end, total_work, pmax, latest_lb_finish
            chunk = list(islice(it, _BATCH_CHUNK))
            if not chunk:
                stream_end = True
                if window and drain:
                    # the stream ended: every open window is full
                    for acc in windows.values():
                        acc.full = True
                    emit_ready()
                return None
            rl = [job.release for job in chunk]
            pl = [job.p for job in chunk]
            ql = [job.q for job in chunk]
            try:
                ra = np.asarray(rl)
                pa = np.asarray(pl)
                qa = np.asarray(ql)
                ok = (ra.dtype == np.int64 and pa.dtype == np.int64
                      and qa.dtype == np.int64)
            except (OverflowError, TypeError, ValueError):
                ok = False
            if not ok:
                return chunk
            # an int64 dtype still admits bools and int subclasses that
            # the scalar loop demotes on — the strict scan runs over the
            # extracted primitives, where it is ~2x cheaper
            for x in rl:
                if type(x) is not int:
                    return chunk  # off-grid: the scalar loop demotes
                    # (auto) or raises (explicit array) at this job
            for x in pl:
                if type(x) is not int:
                    return chunk
            mp = int(pa.max())
            mq = int(qa.max())
            if (
                int(ra.max()) + mp > _INT64_MAX  # rel + p overflows int64
                or mp * mq > 2 ** 48             # areas could overflow sums
                or mq > m                        # scalar raises at the job
            ):
                return chunk
            n = len(chunk)
            areas = pa * qa
            fin = ra + pa
            total_work += int(areas.sum())
            if mp > pmax:
                pmax = mp
            mf = int(fin.max())
            if mf > latest_lb_finish:
                latest_lb_finish = mf
            if window:
                gbase = next_base
                i0 = 0
                while i0 < n:
                    w = (gbase + i0) // window
                    hi = (w + 1) * window - gbase
                    if hi > n:
                        hi = n
                    acc = windows.get(w)
                    if acc is None:
                        acc = windows[w] = _WindowAcc(w)
                    if acc.first_release is None:
                        acc.first_release = rl[i0]
                    acc.arrived += hi - i0
                    acc.work += int(areas[i0:hi].sum())
                    sp = int(pa[i0:hi].max())
                    if sp > acc.pmax:
                        acc.pmax = sp
                    sf = int(fin[i0:hi].max())
                    if sf > acc.latest_lb_finish:
                        acc.latest_lb_finish = sf
                    if acc.arrived == window:
                        acc.full = True
                    i0 = hi
            jobs_c = chunk
            rel_l = rl
            p_l = pl
            q_l = ql
            nchunk = n
            ci = 0
            base = next_base
            next_base = base + n
            return None

        while True:
            if ci == nchunk and not stream_end:
                tail = load_chunk()
                if tail is not None:
                    return self._run_fused(
                        chain(tail, it), resume=make_ckpt(), drain=drain
                    )
            if ci < nchunk:
                t_arrival = rel_l[ci]
            else:
                t_arrival = None
                if not drain:
                    break  # slice exhausted: suspend at the frontier
                if not time_heap:
                    if queue:
                        raise SchedulingError(
                            f"replay stalled with {len(queue)} queued "
                            "job(s) that can never start"
                        )
                    break
            # bulk completion drain: with an empty queue no decision can
            # start anything, so every completion time before the next
            # arrival collapses into this tight loop
            if not queue and time_heap:
                tc = time_heap[0]
                if t_arrival is None or tc < t_arrival:
                    # nothing commits while draining, so the live segment
                    # count only shrinks: one entry sample bounds every
                    # per-completion sample the scalar loop would take,
                    # and one exit prune reaches the same offset state
                    segments = len(ptimes) - profile._lo
                    if segments > peak_segments:
                        peak_segments = segments
                    while t_arrival is None or tc < t_arrival:
                        heappop(time_heap)
                        finished = buckets.pop(tc)
                        nf = len(finished)
                        completed += nf
                        since_prune += nf
                        running_count -= nf
                        last_completion = now = tc
                        if window:
                            for _job, acc in finished:
                                acc.completed += 1
                                acc.last_completion = tc
                                if acc.full and acc.completed == acc.arrived:
                                    emit_ready()
                        if not time_heap:
                            break
                        tc = time_heap[0]
                    pruned_to = completed
                    prune(now)
                    if t_arrival is None:
                        continue  # drained dry: the loop top decides

            # the event: completions at `now` free their processors first
            had_completion = False
            if time_heap:
                tc = time_heap[0]
                if t_arrival is None or tc <= t_arrival:
                    now = tc
                    heappop(time_heap)
                    finished = buckets.pop(tc)
                    nf = len(finished)
                    completed += nf
                    since_prune += nf
                    running_count -= nf
                    last_completion = tc
                    if window:
                        for _job, acc in finished:
                            acc.completed += 1
                            acc.last_completion = tc
                            if acc.full and acc.completed == acc.arrived:
                                emit_ready()
                    had_completion = True
                else:
                    now = t_arrival
            else:
                now = t_arrival

            # arrivals at `now`
            b_B = 0
            solo_blocked = False
            if t_arrival == now:
                nxt = ci + 1
                if not queue and (
                    (nxt < nchunk and rel_l[nxt] != now)
                    or (nxt == nchunk and stream_end)
                ):
                    # fast path: one arrival, empty queue — it starts at
                    # `now` iff it fits (all three policies agree), with
                    # the probe-and-commit inlined on the int64 columns
                    job = jobs_c[ci]
                    jp = p_l[ci]
                    jq = q_l[ci]
                    idx = base + ci
                    ci = nxt
                    arrived += 1
                    if 1 > peak_queue:
                        peak_queue = 1
                    end = now + jp
                    if end > _INT64_MAX:
                        raise InvalidInstanceError(
                            f"array backend requires machine-int (int64) "
                            f"times: window end {end!r} overflows"
                        )
                    lo = profile._lo
                    i = bisect_right(ptimes, now, lo) - 1
                    if pcaps[i] < jq:
                        ok = False
                    else:
                        j = bisect_left(ptimes, end, i + 1)
                        ok = j - i == 1 or min(pcaps[i:j]) >= jq
                    if ok:
                        if jq:
                            if ptimes[i] != now:
                                i += 1
                                ptimes.insert(i, now)
                                pcaps.insert(i, pcaps[i - 1])
                                j += 1
                            if j == len(ptimes) or ptimes[j] != end:
                                ptimes.insert(j, end)
                                pcaps.insert(j, pcaps[j - 1])
                            if j - i == 1:
                                pcaps[i] -= jq
                            else:
                                pcaps[i:j] = array(
                                    "q", [c - jq for c in pcaps[i:j]]
                                )
                            if pcaps[j] == pcaps[j - 1]:
                                del ptimes[j]
                                del pcaps[j]
                            if i > lo and pcaps[i] == pcaps[i - 1]:
                                del ptimes[i]
                                del pcaps[i]
                        running_count += 1
                        # wait == 0 exactly, so the float block collapses
                        # (x/x == 1.0 and the clamp floors jp/tau): the
                        # same 1.0 the scalar engines accumulate
                        # repro: noqa-begin RPL2xx -- float gauge updates
                        sum_slowdown += 1.0
                        sum_bsld += 1.0
                        if 1.0 > max_bsld:
                            max_bsld = 1.0
                        if window:
                            wacc = windows[idx // window]
                            wacc.started += 1
                            wacc.sum_bsld += 1.0
                            if 1.0 > wacc.max_bsld:
                                wacc.max_bsld = 1.0
                        # repro: noqa-end RPL2xx
                        else:
                            wacc = None
                        if record is not None:
                            record[job.id] = now
                        bucket = buckets.get(end)
                        if bucket is None:
                            buckets[end] = [(job, wacc)]
                            heappush(time_heap, end)
                        else:
                            bucket.append((job, wacc))
                    else:
                        # the inline probe IS the head probe the decision
                        # pass would repeat, and a lone blocked head backs
                        # no backfill: the pass is provably a no-op
                        queue[idx] = job
                        solo_blocked = True
                else:
                    # general path: collect the whole same-time batch
                    # (loading across chunk boundaries when it spans)
                    j = nxt
                    while j < nchunk and rel_l[j] == now:
                        j += 1
                    if j - ci == 1 and (j < nchunk or stream_end):
                        # one arrival joining a live queue: plain enqueue,
                        # none of the batch-column machinery
                        queue[base + ci] = jobs_c[ci]
                        ci = j
                        arrived += 1
                        qlen = len(queue)
                        if qlen > peak_queue:
                            peak_queue = qlen
                    else:
                        b_jobs = jobs_c[ci:j]
                        b_p = p_l[ci:j]
                        b_q = q_l[ci:j]
                        b_idx = list(range(base + ci, base + j))
                        ci = j
                        while ci == nchunk and not stream_end:
                            tail = load_chunk()
                            if tail is not None:
                                return self._run_fused(
                                    chain(b_jobs, tail, it),
                                    resume=make_ckpt(), drain=drain,
                                )
                            if stream_end:
                                break
                            j = 0
                            while j < nchunk and rel_l[j] == now:
                                j += 1
                            if j:
                                b_jobs += jobs_c[:j]
                                b_p += p_l[:j]
                                b_q += q_l[:j]
                                b_idx += range(base, base + j)
                                ci = j
                        b_B = len(b_jobs)
                        b_was_empty = not queue
                        for k in range(b_B):
                            queue[b_idx[k]] = b_jobs[k]
                        arrived += b_B
                        qlen = len(queue)
                        if qlen > peak_queue:
                            peak_queue = qlen

            # one decision pass (exactly the fused policies' semantics)
            if queue and not solo_blocked:
                scalar_pass = True
                if (
                    b_B >= 2 and b_was_empty
                    and sum(b_q) <= capacity_at(now)
                ):
                    # vectorized screen: one cumulative-min sweep answers
                    # every batch job's fit at `now` (the earliest-fit
                    # question restricted to the one candidate a decision
                    # pass at `now` acts on).  A screen miss is final
                    # (capacity only shrinks during a pass); screen hits
                    # commit atomically, and any interference inside the
                    # batch falls back to the exact sequential pass.  The
                    # sum gate is the necessary co-start condition: when
                    # the whole batch cannot even fit at `now`, the
                    # sweep mostly misses and the scalar pass wins.
                    fits_v = fits_many_at(now, b_q, b_p)
                    if greedy:
                        commit = [k for k in range(b_B) if fits_v[k]]
                    else:
                        # fcfs stops at its first blocked job; easy's
                        # phase 1 starts heads until one blocks
                        cut = 0
                        while cut < b_B and fits_v[cut]:
                            cut += 1
                        commit = list(range(cut))
                    if not commit or try_res_many(
                        now, [(b_p[k], b_q[k]) for k in commit]
                    ):
                        scalar_pass = False
                        for k in commit:
                            job = b_jobs[k]
                            jp = b_p[k]
                            kidx = b_idx[k]
                            del queue[kidx]
                            running_count += 1
                            # repro: noqa-begin RPL2xx -- float gauge updates
                            sum_slowdown += 1.0  # wait == 0 exactly
                            sum_bsld += 1.0
                            if 1.0 > max_bsld:
                                max_bsld = 1.0
                            if window:
                                acc = windows[kidx // window]
                                acc.started += 1
                                acc.sum_bsld += 1.0
                                if 1.0 > acc.max_bsld:
                                    acc.max_bsld = 1.0
                            # repro: noqa-end RPL2xx
                            else:
                                acc = None
                            if record is not None:
                                record[job.id] = now
                            end = now + jp
                            bucket = buckets.get(end)
                            if bucket is None:
                                buckets[end] = [(job, acc)]
                                heappush(time_heap, end)
                            else:
                                bucket.append((job, acc))
                if scalar_pass:
                    if easy:
                        # phase 1: heads (the blocked-head memo argument
                        # of _run_fused carries over verbatim)
                        while queue:
                            hkey = next(iter(queue))
                            head = queue[hkey]
                            if blocked_id == head.id and now < blocked_until:
                                break
                            jp = head.p
                            if not try_reserve(now, jp, head.q):
                                break
                            del queue[hkey]
                            running_count += 1
                            wait = now - head.release
                            sum_wait += wait
                            if wait > max_wait:
                                max_wait = wait
                            # repro: noqa-begin RPL2xx -- float slowdown/bsld
                            # gauges; never read back into grid times
                            sum_slowdown += (wait + jp) / jp
                            den = jp if jp > bsld_tau else bsld_tau
                            bsld = float(wait + jp) / float(den)
                            if bsld < 1.0:
                                bsld = 1.0
                            # repro: noqa-end RPL2xx
                            sum_bsld += bsld
                            if bsld > max_bsld:
                                max_bsld = bsld
                            if window:
                                acc = windows[hkey // window]
                                acc.started += 1
                                acc.sum_wait += wait
                                if wait > acc.max_wait:
                                    acc.max_wait = wait
                                acc.sum_bsld += bsld
                                if bsld > acc.max_bsld:
                                    acc.max_bsld = bsld
                            else:
                                acc = None
                            if record is not None:
                                record[head.id] = now
                            end = now + jp
                            bucket = buckets.get(end)
                            if bucket is None:
                                buckets[end] = [(head, acc)]
                                heappush(time_heap, end)
                            else:
                                bucket.append((head, acc))
                    else:
                        # fcfs / greedy: one ordered sweep
                        for kidx, job in list(queue.items()):
                            jp = job.p
                            if not try_reserve(now, jp, job.q):
                                if greedy:
                                    continue
                                break
                            del queue[kidx]
                            running_count += 1
                            wait = now - job.release
                            sum_wait += wait
                            if wait > max_wait:
                                max_wait = wait
                            # repro: noqa-begin RPL2xx -- float slowdown/bsld
                            # gauges; never read back into grid times
                            sum_slowdown += (wait + jp) / jp
                            den = jp if jp > bsld_tau else bsld_tau
                            bsld = float(wait + jp) / float(den)
                            if bsld < 1.0:
                                bsld = 1.0
                            # repro: noqa-end RPL2xx
                            sum_bsld += bsld
                            if bsld > max_bsld:
                                max_bsld = bsld
                            if window:
                                acc = windows[kidx // window]
                                acc.started += 1
                                acc.sum_wait += wait
                                if wait > acc.max_wait:
                                    acc.max_wait = wait
                                acc.sum_bsld += bsld
                                if bsld > acc.max_bsld:
                                    acc.max_bsld = bsld
                            else:
                                acc = None
                            if record is not None:
                                record[job.id] = now
                            end = now + jp
                            bucket = buckets.get(end)
                            if bucket is None:
                                buckets[end] = [(job, acc)]
                                heappush(time_heap, end)
                            else:
                                bucket.append((job, acc))
                if easy and len(queue) > 1:
                    # phase 2: the head's shadow reservation as <=3
                    # window queries (see _run_fused; identical code,
                    # index-keyed queue)
                    items = iter(list(queue.items()))
                    _hkey, head = next(items)
                    hp = head.p
                    hq = head.q
                    if blocked_id == head.id:
                        s_head = blocked_until
                    else:
                        s_head = earliest_fit(hq, hp, after=now)
                        if s_head is None:
                            raise SchedulingError(
                                f"job {head.id!r} can never start"
                            )
                        blocked_id = head.id
                        blocked_until = s_head
                    h_end = s_head + hp
                    cap_now = capacity_at(now)
                    for kidx, job in items:
                        jq = job.q
                        if jq > cap_now:
                            continue
                        jp = job.p
                        j_end = now + jp
                        if s_head >= j_end:
                            ok = fits(jq, now, jp)
                        else:
                            lim = j_end if j_end < h_end else h_end
                            ok = (
                                min_capacity(s_head, lim) >= jq + hq
                                and (s_head <= now
                                     or min_capacity(now, s_head) >= jq)
                                and (j_end <= h_end
                                     or min_capacity(h_end, j_end) >= jq)
                            )
                        if ok:
                            cap_now -= jq
                            reserve_fitting(now, jp, jq)
                            del queue[kidx]
                            running_count += 1
                            wait = now - job.release
                            sum_wait += wait
                            if wait > max_wait:
                                max_wait = wait
                            # repro: noqa-begin RPL2xx -- float slowdown/bsld
                            # gauges; never read back into grid times
                            sum_slowdown += (wait + jp) / jp
                            den = jp if jp > bsld_tau else bsld_tau
                            bsld = float(wait + jp) / float(den)
                            if bsld < 1.0:
                                bsld = 1.0
                            # repro: noqa-end RPL2xx
                            sum_bsld += bsld
                            if bsld > max_bsld:
                                max_bsld = bsld
                            if window:
                                acc = windows[kidx // window]
                                acc.started += 1
                                acc.sum_wait += wait
                                if wait > acc.max_wait:
                                    acc.max_wait = wait
                                acc.sum_bsld += bsld
                                if bsld > acc.max_bsld:
                                    acc.max_bsld = bsld
                            else:
                                acc = None
                            if record is not None:
                                record[job.id] = now
                            end = now + jp
                            bucket = buckets.get(end)
                            if bucket is None:
                                buckets[end] = [(job, acc)]
                                heappush(time_heap, end)
                            else:
                                bucket.append((job, acc))

            if running_count > peak_running:
                peak_running = running_count
            if had_completion:
                pruned_to = completed
                segments = len(ptimes) - profile._lo
                if segments > peak_segments:
                    peak_segments = segments
                prune(now)

        if not drain:
            result.windows = emitted
            result.checkpoint = make_ckpt()
            return result

        if window:
            emit_ready(force=True)
        segments = len(ptimes) - profile._lo
        if segments > peak_segments:
            peak_segments = segments

        return self._finalize(
            result, emitted, started_clock,
            arrived=arrived, events=3 * arrived, total_work=total_work,
            pmax=pmax, latest_lb_finish=latest_lb_finish,
            last_completion=last_completion, sum_wait=sum_wait,
            max_wait=max_wait, sum_slowdown=sum_slowdown,
            sum_bsld=sum_bsld, max_bsld=max_bsld, peak_queue=peak_queue,
            peak_running=peak_running, peak_segments=peak_segments,
            windows_emitted=next_emit,
        )

    # ------------------------------------------------------------------
    def _finalize(
        self, result: ReplayResult, emitted: List[Dict], started_clock,
        *, arrived, events, total_work, pmax, latest_lb_finish,
        last_completion, sum_wait, max_wait, sum_slowdown, sum_bsld,
        max_bsld, peak_queue, peak_running, peak_segments,
        demoted_at=None, windows_emitted=None, uncertainty_totals=None,
    ) -> ReplayResult:
        """Assemble the totals row (shared by both loops, so the fused
        and generic paths cannot drift)."""
        makespan = last_completion
        lb = max(pmax, _exact_ratio(total_work, self.m), latest_lb_finish)
        result.windows = emitted
        result.totals = {
            "n_jobs": arrived,
            "makespan": makespan,
            "total_work": total_work,
            "utilization": (
                float(total_work) / float(self.m * makespan) if makespan else 0.0
            ),
            "mean_wait": _mean(sum_wait, arrived),
            "max_wait": max_wait,
            "mean_slowdown": _mean(sum_slowdown, arrived),
            "mean_bounded_slowdown": _mean(sum_bsld, arrived),
            "max_bounded_slowdown": max_bsld,
            "lower_bound": float(lb),
            "ratio_lb": float(makespan) / float(lb) if lb else 0.0,
            "events": events,
            "windows": len(emitted) if windows_emitted is None else windows_emitted,
            "peak_queue_length": peak_queue,
            "peak_running": peak_running,
            "peak_profile_segments": peak_segments,
            "elapsed_seconds": _time.perf_counter() - started_clock,
        }
        if demoted_at is not None:
            result.totals["demoted_to_list_at"] = dict(demoted_at)
        if uncertainty_totals is not None:
            result.totals.update(uncertainty_totals)
        if self.store is not None:
            self.store.append({"key": "totals", **result.totals})
        return result


def _exact_ratio(num, den):
    """``num / den`` kept exact for int inputs (Fractions sum without
    float-order noise), plain division otherwise."""
    if isinstance(num, Integral) and isinstance(den, Integral):
        f = Fraction(int(num), int(den))
        return f.numerator if f.denominator == 1 else f
    return num / den


def replay(
    arrivals: Iterable[Job],
    m: int,
    policy: str = "easy",
    **engine_kwargs,
) -> ReplayResult:
    """Convenience wrapper: replay an arrival iterable on ``m`` machines."""
    return ReplayEngine(m, policy=policy, **engine_kwargs).run(arrivals)


def replay_swf(
    source,
    policy: str = "easy",
    m: Optional[int] = None,
    max_jobs: Optional[int] = None,
    **engine_kwargs,
) -> ReplayResult:
    """Stream an SWF trace (path, ``.gz`` path or text stream) through
    the replay engine.

    The machine size comes from ``m=`` or the trace's ``; MaxProcs:``
    header (resolved from the first arrival before the engine starts).
    Returns the :class:`ReplayResult`; the stream's counters are
    attached as ``totals["skipped_lines"]`` (lines dropped from the
    stream) and ``totals["clipped_jobs"]`` (jobs replayed at reduced
    width).
    """
    from itertools import chain

    from ..workloads.swf import iter_swf

    stream = iter_swf(source, m=m, max_jobs=max_jobs)
    it: Iterator[Job] = iter(stream)
    first = next(it, None)
    if first is None:
        raise TraceFormatError("SWF stream contains no usable jobs")
    engine = ReplayEngine(stream.m, policy=policy, **engine_kwargs)
    result = engine.run(chain([first], it))
    result.totals["skipped_lines"] = stream.n_skipped
    result.totals["clipped_jobs"] = stream.n_clipped
    return result


# ---------------------------------------------------------------------------
# sharded multi-policy replay
# ---------------------------------------------------------------------------

#: Prefix of a synthetic scenario-pack source (``synth:<profile>[:<n>]``).
SYNTH_PREFIX = "synth:"

#: Job count of a synthetic source that names no ``:<n>`` (shared by the
#: CLI and the sharded runner so the default cannot drift).
DEFAULT_SYNTH_JOBS = 100_000


def parse_synth_source(source: str) -> Tuple[str, Optional[int]]:
    """Split ``synth:<profile>[:<n>]`` into ``(profile, n-or-None)``.

    Raises :class:`~repro.errors.TraceFormatError` on unknown profiles
    or a non-integer length, so the CLI and the sharded runner reject
    malformed sources with the same message.
    """
    from ..workloads.swf import SYNTH_PROFILES

    parts = source.split(":")
    profile = parts[1] if len(parts) > 1 else ""
    if profile not in SYNTH_PROFILES:
        raise TraceFormatError(
            f"unknown synthetic profile {profile!r}; known: "
            f"{', '.join(SYNTH_PROFILES)}"
        )
    if len(parts) > 2:
        try:
            return profile, int(parts[2])
        except ValueError:
            raise TraceFormatError(
                f"synthetic trace length {parts[2]!r} is not an integer "
                "(expected synth:<profile>[:<n>])"
            ) from None
    return profile, None


@dataclass
class MultiReplayResult:
    """Outcome of a multi-policy replay (serial or sharded).

    ``results`` maps each policy to its :class:`ReplayResult` (in the
    declaration order of the run); ``rows`` is the merged JSONL row list
    — per-window rows then a totals row per policy, policies in
    declaration order, volatile wall-clock fields stripped — which is
    byte-identical between serial and sharded executions.
    """

    m: int
    results: Dict[str, ReplayResult] = field(default_factory=dict)
    rows: List[Dict] = field(default_factory=list)


def _merged_policy_rows(policy: str, result: ReplayResult) -> List[Dict]:
    """The deterministic JSONL rows one policy contributes."""
    rows: List[Dict] = []
    for window_row in result.windows:
        row = {"key": f"{policy}/{window_row['key']}", "policy": policy}
        row.update(
            (k, v) for k, v in window_row.items() if k != "key"
        )
        rows.append(row)
    totals = {
        k: v for k, v in result.totals.items()
        if k not in VOLATILE_TOTAL_FIELDS
    }
    rows.append({"key": f"{policy}/totals", "policy": policy, **totals})
    return rows


def _run_policy_shard(payload: Tuple) -> Tuple[str, ReplayResult]:
    """One worker: replay ``source`` under a single policy.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; the payload re-creates the arrival stream inside the
    worker (streams themselves are not picklable).
    """
    source, policy, m, n, max_jobs, seed, engine_kwargs = payload
    if isinstance(source, str) and source.startswith(SYNTH_PREFIX):
        from ..workloads.swf import synth_swf_jobs

        profile, parsed_n = parse_synth_source(source)
        jobs_n = n if n is not None else (parsed_n or DEFAULT_SYNTH_JOBS)
        if max_jobs is not None:
            jobs_n = min(jobs_n, max_jobs)
        machine = m or 256
        engine = ReplayEngine(machine, policy=policy, **engine_kwargs)
        result = engine.run(
            synth_swf_jobs(profile, jobs_n, m=machine, seed=seed)
        )
    else:
        result = replay_swf(
            source, policy=policy, m=m, max_jobs=max_jobs, **engine_kwargs
        )
    return policy, result


def replay_policies(
    source,
    policies: Iterable[str] = ("easy",),
    m: Optional[int] = None,
    jobs: int = 1,
    store=None,
    n: Optional[int] = None,
    max_jobs: Optional[int] = None,
    seed: int = 0,
    **engine_kwargs,
) -> MultiReplayResult:
    """Replay one trace under several policies — sharded when asked.

    Each policy's replay consumes an *independent* stream of the same
    source (an SWF path or ``synth:<profile>[:<n>]``), so the K policies
    are embarrassingly parallel: ``jobs > 1`` runs them on a process
    pool, one worker per policy.  Workers return their per-window
    aggregates, and the merged rows are assembled **policy by policy in
    declaration order** with wall-clock fields stripped, so the JSONL
    written to ``store`` is byte-identical between ``jobs=1`` and any
    sharded execution (a test and the ``replay-throughput`` benchmark
    gate both assert this).

    ``engine_kwargs`` pass through to :class:`ReplayEngine` (window,
    profile_backend, record_starts, ...).  Returns a
    :class:`MultiReplayResult`.
    """
    policy_list = list(policies)
    if not policy_list:
        raise SchedulingError("replay needs at least one policy")
    if len(set(policy_list)) != len(policy_list):
        raise SchedulingError(f"duplicate policies in {policy_list}")
    for name in policy_list:
        POLICIES.get(name)  # loud, early resolution
    if jobs < 1:
        raise SchedulingError(f"jobs must be >= 1, got {jobs!r}")
    if store is not None and not hasattr(store, "append"):
        from ..run.store import JsonlStore

        store = JsonlStore(store)

    payloads = [
        (source, policy, m, n, max_jobs, seed, dict(engine_kwargs))
        for policy in policy_list
    ]
    if jobs == 1 or len(policy_list) == 1:
        outcomes = [_run_policy_shard(p) for p in payloads]
    else:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(jobs, len(policy_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves submission order: merged rows come out in
            # declaration order no matter which shard finishes first
            outcomes = list(pool.map(_run_policy_shard, payloads))

    merged = MultiReplayResult(m=outcomes[0][1].m)
    for policy, result in outcomes:
        merged.results[policy] = result
        rows = _merged_policy_rows(policy, result)
        merged.rows.extend(rows)
        if store is not None:
            for row in rows:
                store.append(row)
    return merged


# ---------------------------------------------------------------------------
# epoch-sharded single-policy replay
# ---------------------------------------------------------------------------

#: Seconds an epoch worker waits for its predecessor's checkpoint before
#: giving up (a deadlock backstop, not a tuning knob — the relay normally
#: resolves in milliseconds once the predecessor finishes its slice).
#: Also the parent orchestrator's per-epoch hang budget.
EPOCH_RELAY_TIMEOUT = 600.0

#: Seconds without a heartbeat update before a worker is presumed dead.
#: A live worker beats every :data:`EPOCH_HEARTBEAT_INTERVAL` from a
#: daemon thread, so staleness means the *process* died (a kill, an
#: OOM) without publishing either its checkpoint or an error record —
#: the liveness hole that previously left successors waiting for the
#: full relay timeout.
EPOCH_LIVENESS_TIMEOUT = 30.0

#: Seconds between heartbeat touches by a live epoch worker.
EPOCH_HEARTBEAT_INTERVAL = 0.1

#: Default retry budget for a failed epoch worker before the
#: orchestrator degrades to serial re-execution in the parent.
EPOCH_MAX_RETRIES = 2

#: Base of the exponential backoff between epoch retries (seconds):
#: attempt ``i`` sleeps ``EPOCH_RETRY_BACKOFF * 2**(i-1)``.
EPOCH_RETRY_BACKOFF = 0.25


def epoch_boundaries(releases: "List", epochs: int) -> List[int]:
    """Frontier-quiescent cut indices for ``epochs`` slices of a trace.

    A cut at index ``i`` means slice boundaries ``[.., i), [i, ..)``.
    Cuts start at the even split points ``n*k/epochs`` and are pushed
    *forward* past any run of equal release times, so no two slices
    share an arrival event time — the engine checkpoints after an event
    time is fully processed (completions < arrivals < decision), and a
    tie split across two slices would hand half an arrival batch to
    each.  Release times must be non-decreasing (the replay engine's
    own streaming contract).  Degenerate cuts collapse, so fewer than
    ``epochs`` slices come back when the trace is too short or too tied.
    """
    n = len(releases)
    if epochs <= 1 or n == 0:
        return []
    cuts: List[int] = []
    for k in range(1, epochs):
        i = (n * k) // epochs
        if cuts and i <= cuts[-1]:
            i = cuts[-1] + 1
        while 0 < i < n and releases[i] == releases[i - 1]:
            i += 1
        if i >= n:
            break
        if i > 0 and (not cuts or i > cuts[-1]):
            cuts.append(i)
    return cuts


def _epoch_ckpt_paths(relay_dir: str, k: int) -> Tuple[str, str, str]:
    import os

    return (
        os.path.join(relay_dir, f"ckpt-{k:04d}.pkl"),
        os.path.join(relay_dir, f"ckpt-{k:04d}.err"),
        os.path.join(relay_dir, f"hb-{k:04d}"),
    )


class _EpochHeartbeat:
    """Daemon thread touching an epoch worker's heartbeat file.

    A live worker refreshes the file's mtime every
    :data:`EPOCH_HEARTBEAT_INTERVAL`; a successor (or the parent
    orchestrator) that sees no mtime *change* for the liveness timeout
    may presume the process dead.  Only changes are compared, against
    the monotonic clock — wall-clock time never enters the judgment.
    """

    def __init__(self, path: str) -> None:
        import threading

        self._path = path
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def _touch(self) -> None:
        import os

        with open(self._path, "a"):
            pass
        os.utime(self._path)

    def _beat(self) -> None:
        while not self._stop.wait(EPOCH_HEARTBEAT_INTERVAL):
            try:
                self._touch()
            except OSError:
                return

    def start(self) -> None:
        try:
            self._touch()
        except OSError:
            return
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=1.0)


def _mark_epoch_error(relay_dir: str, k: int, exc: BaseException) -> None:
    """Publish a structured error record for epoch ``k``.

    Successors fail fast with the recorded cause, and the parent
    orchestrator's retry loop knows what it is healing.  Atomic, so a
    reader never sees a half-written record; local import because the
    durability package itself imports this module.
    """
    import json

    from ..durability.atomic import atomic_write_bytes

    _, err_path, _ = _epoch_ckpt_paths(relay_dir, k)
    record = {"epoch": k, "type": type(exc).__name__, "error": str(exc)}
    fire("epoch.error.mark")
    try:
        atomic_write_bytes(
            err_path, json.dumps(record, sort_keys=True).encode("utf-8")
        )
    except OSError:
        pass


def _await_epoch_checkpoint(
    relay_dir: str,
    k: int,
    timeout: float = EPOCH_RELAY_TIMEOUT,
    liveness_timeout: float = EPOCH_LIVENESS_TIMEOUT,
) -> ReplayCheckpoint:
    """Block until epoch ``k``'s checkpoint file appears, then load it.

    Fails fast instead of deadlocking on a dead predecessor:

    * an ``.err`` record aborts immediately with the recorded cause;
    * a heartbeat that stops updating for ``liveness_timeout`` seconds
      means the predecessor died (kill, OOM) without publishing either
      its checkpoint or an error record — previously that hole left
      every successor waiting out the full relay timeout;
    * ``timeout`` still bounds the total wait regardless.
    """
    import json
    import os
    import pickle

    path, err_path, hb_path = _epoch_ckpt_paths(relay_dir, k)
    start = _time.monotonic()
    deadline = start + timeout
    last_beat_ns: Optional[int] = None
    last_change = start
    while not os.path.exists(path):
        if os.path.exists(err_path):
            try:
                with open(err_path, "rb") as fh:
                    cause = json.loads(fh.read().decode("utf-8"))
            except (OSError, ValueError):
                cause = {}
            detail = (
                f": {cause.get('type')}: {cause.get('error')}"
                if cause else ""
            )
            raise ReplayRelayError(
                f"epoch worker {k} failed{detail}"
            )
        now = _time.monotonic()
        try:
            beat_ns: Optional[int] = os.stat(hb_path).st_mtime_ns
        except OSError:
            beat_ns = None
        if beat_ns != last_beat_ns:
            last_beat_ns = beat_ns
            last_change = now
        elif now - last_change > liveness_timeout:
            raise ReplayRelayError(
                f"epoch worker {k} stopped heartbeating (no update for "
                f"{liveness_timeout:.1f}s) without publishing a "
                "checkpoint or an error record — presumed dead"
            )
        if now > deadline:
            raise ReplayRelayError(
                f"timed out after {timeout:.1f}s waiting for epoch "
                f"{k}'s checkpoint"
            )
        _time.sleep(0.002)
    with open(path, "rb") as fh:
        ckpt = pickle.load(fh)
    if not isinstance(ckpt, ReplayCheckpoint):
        raise ReplayRelayError(
            f"epoch relay file {path!r} did not contain a checkpoint"
        )
    return ckpt


def _publish_epoch_checkpoint(
    relay_dir: str, k: int, ckpt: ReplayCheckpoint
) -> None:
    """Publish epoch ``k``'s checkpoint atomically (tmp + rename), so a
    polling successor never observes a half-written pickle.  Double
    publishes — a healed re-execution racing an abandoned worker — are
    benign: both compute byte-identical state and ``os.replace`` is
    atomic, so either write yields the same readable file.
    """
    from ..durability.atomic import atomic_pickle

    path, _, _ = _epoch_ckpt_paths(relay_dir, k)
    fire("epoch.checkpoint.publish")
    atomic_pickle(path, ckpt)


def _run_epoch_shard(payload: Tuple) -> Tuple[int, List[Dict], Dict, Optional[Dict]]:
    """One epoch worker: resume from the predecessor's frontier, replay
    this slice's arrivals, publish the new frontier.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it (the parent also calls it directly for serial
    fallback after the retry budget is spent).  Returns ``(k, window
    rows, totals, starts)`` — totals are empty for every non-final
    epoch (the counters ride the checkpoint relay instead, which is
    what makes the final totals identical to a serial run's).
    """
    (k, final, jobs, relay_dir, m, policy, engine_kwargs,
     liveness_timeout, relay_timeout) = payload
    heartbeat = _EpochHeartbeat(_epoch_ckpt_paths(relay_dir, k)[2])
    heartbeat.start()
    try:
        fire("epoch.slice.run")
        resume = None
        if k > 0:
            resume = _await_epoch_checkpoint(
                relay_dir, k - 1,
                timeout=relay_timeout, liveness_timeout=liveness_timeout,
            )
        engine = ReplayEngine(m, policy=policy, **engine_kwargs)
        result = engine.run_slice(jobs, resume=resume, drain=final)
        if not final:
            assert result.checkpoint is not None
            _publish_epoch_checkpoint(relay_dir, k, result.checkpoint)
        return k, result.windows, result.totals, result.starts
    except BaseException as exc:
        # structured marker: successors stop polling and fail fast,
        # the orchestrator records what it healed
        _mark_epoch_error(relay_dir, k, exc)
        raise
    finally:
        heartbeat.stop()


class _EpochHungError(ReplayRelayError):
    """An epoch worker exceeded the orchestrator's hang budget without
    returning, failing, or breaking the pool — internal to the healing
    loop, which responds by recreating the pool and retrying."""


def _replay_epochs_processes(
    payloads: List[Tuple],
    relay_dir: str,
    max_retries: int,
    retry_backoff: float,
    epoch_timeout: float,
) -> Tuple[List[Tuple[int, List[Dict], Dict, Optional[Dict]]], List[Dict]]:
    """Run epoch shards in a process pool, healing failed workers.

    Epochs are all submitted up front (pipelining: worker startup and
    arrival deserialisation overlap the predecessor's replay) but
    reaped strictly in order.  When epoch ``k`` fails — its worker
    raised, was killed (the pool breaks wholesale), or hung past
    ``epoch_timeout`` — the orchestrator heals it instead of failing
    the run: clear the error marker, recreate the pool if it broke,
    back off exponentially, and resubmit, up to ``max_retries``
    attempts; after that, degrade to serial re-execution of just that
    epoch in the parent process (its predecessor's checkpoint is
    already on disk, so nothing upstream is recomputed).  Successor
    workers that failed fast on ``k``'s error marker are healed the
    same way when their turn comes, at which point the repaired
    predecessor checkpoint lets them succeed immediately.

    Returns ``(outcomes, recoveries)`` — outcomes in epoch order, and
    one structured record per healing action (``action`` is ``retry``
    or ``serial-fallback``).  Recoveries are reported on the result,
    never written to stores: recovery metadata is volatile and must not
    break serial-vs-sharded byte identity.
    """
    import os
    from concurrent.futures import (
        BrokenExecutor,
        ProcessPoolExecutor,
    )
    from concurrent.futures import (
        TimeoutError as _FuturesTimeout,
    )

    k_eff = len(payloads)
    outcomes: List[Tuple[int, List[Dict], Dict, Optional[Dict]]] = []
    recoveries: List[Dict] = []
    pool = ProcessPoolExecutor(max_workers=k_eff)
    futures: Dict[int, object] = {}

    def _clear_err(k: int) -> None:
        _, err_path, _ = _epoch_ckpt_paths(relay_dir, k)
        try:
            os.unlink(err_path)
        except OSError:
            pass

    def _submit(k: int) -> None:
        _clear_err(k)
        futures[k] = pool.submit(_run_epoch_shard, payloads[k])

    def _reap(k: int) -> Tuple[int, List[Dict], Dict, Optional[Dict]]:
        deadline = _time.monotonic() + epoch_timeout
        fut = futures[k]
        while True:
            try:
                return fut.result(timeout=0.05)  # type: ignore[attr-defined]
            except _FuturesTimeout:
                if _time.monotonic() > deadline:
                    raise _EpochHungError(
                        f"epoch worker {k} still running after "
                        f"{epoch_timeout:.1f}s — presumed hung"
                    ) from None

    try:
        for k in range(k_eff):
            _submit(k)
        for k in range(k_eff):
            attempt = 0
            while True:
                try:
                    outcomes.append(_reap(k))
                    break
                except Exception as exc:
                    attempt += 1
                    broken = isinstance(
                        exc, (BrokenExecutor, _EpochHungError)
                    )
                    if broken:
                        # a SIGKILLed worker breaks the whole pool; a
                        # hung worker poisons its slot — either way,
                        # start a fresh pool and resubmit everything
                        # still outstanding
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=k_eff)
                    if attempt <= max_retries:
                        recoveries.append({
                            "epoch": k,
                            "attempt": attempt,
                            "error": f"{type(exc).__name__}: {exc}",
                            "action": "retry",
                        })
                        _time.sleep(retry_backoff * (2 ** (attempt - 1)))
                        _submit(k)
                        if broken:
                            for j in range(k + 1, k_eff):
                                _submit(j)
                        continue
                    # budget spent: re-execute just this epoch in the
                    # parent, off the predecessor checkpoint already on
                    # disk — the run degrades, it does not fail
                    recoveries.append({
                        "epoch": k,
                        "attempt": attempt,
                        "error": f"{type(exc).__name__}: {exc}",
                        "action": "serial-fallback",
                    })
                    _clear_err(k)
                    outcomes.append(_run_epoch_shard(payloads[k]))
                    if broken:
                        # the successors' futures died with the old
                        # pool; give them to the fresh one
                        for j in range(k + 1, k_eff):
                            _submit(j)
                    break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return outcomes, recoveries


def _materialize_trace(
    source,
    m: Optional[int],
    n: Optional[int],
    max_jobs: Optional[int],
    seed: int,
) -> Tuple[List[Job], int, Dict]:
    """Resolve a replay source to ``(jobs, machine size, extra totals)``.

    Accepts the same sources as :func:`replay_policies` — an SWF path,
    a ``synth:<profile>[:<n>]`` spec — plus any in-memory iterable of
    jobs (``m`` is then required).  Epoch boundaries need every release
    time up front, so the trace is materialised here once, in the
    parent; slices ship to the workers by pickle.
    """
    if isinstance(source, str) and source.startswith(SYNTH_PREFIX):
        from ..workloads.swf import synth_swf_jobs

        profile, parsed_n = parse_synth_source(source)
        jobs_n = n if n is not None else (parsed_n or DEFAULT_SYNTH_JOBS)
        if max_jobs is not None:
            jobs_n = min(jobs_n, max_jobs)
        machine = m or 256
        return (
            list(synth_swf_jobs(profile, jobs_n, m=machine, seed=seed)),
            machine,
            {},
        )
    if isinstance(source, str):
        from ..workloads.swf import iter_swf

        stream = iter_swf(source, m=m, max_jobs=max_jobs)
        jobs = list(stream)
        if not jobs:
            raise TraceFormatError("SWF stream contains no usable jobs")
        return jobs, stream.m, {
            "skipped_lines": stream.n_skipped,
            "clipped_jobs": stream.n_clipped,
        }
    jobs = list(source)
    if m is None:
        raise SchedulingError(
            "epoch-sharded replay of an in-memory job list needs m="
        )
    if max_jobs is not None:
        jobs = jobs[:max_jobs]
    return jobs, m, {}


def replay_epochs(
    source,
    policy: str = "easy",
    epochs: int = 2,
    m: Optional[int] = None,
    n: Optional[int] = None,
    max_jobs: Optional[int] = None,
    seed: int = 0,
    store=None,
    use_processes: bool = True,
    max_retries: int = EPOCH_MAX_RETRIES,
    retry_backoff: float = EPOCH_RETRY_BACKOFF,
    liveness_timeout: float = EPOCH_LIVENESS_TIMEOUT,
    epoch_timeout: float = EPOCH_RELAY_TIMEOUT,
    **engine_kwargs,
) -> ReplayResult:
    """Epoch-sharded replay of **one** policy on one trace.

    The trace is cut at frontier-quiescent boundaries
    (:func:`epoch_boundaries`), each slice runs in its own worker, and
    the frontier is handed from slice ``k`` to ``k+1`` as a
    :class:`ReplayCheckpoint` — the predecessor's pruned profile plus
    its in-flight and queued job snapshot — over an atomic file relay
    (``use_processes=True``, the default) or directly in-process
    (``use_processes=False``, for tests and single-core hosts where
    process spawn overhead buys nothing).  Totals counters ride the
    relay, so the stitched result — window rows, totals, recorded
    starts — is **identical to a serial run** of the same engine
    configuration; only the volatile wall-clock fields differ.

    Workers replay strictly in epoch order (slice ``k+1`` cannot move
    before ``k``'s frontier exists); the process pool overlaps worker
    startup, arrival deserialisation and row marshalling with the
    predecessor's replay, which is where multi-core wall-clock goes.
    On a single core ``use_processes=False`` is the honest choice.

    The process path **self-heals**: a worker that raises, is killed,
    or hangs past ``epoch_timeout`` is retried with exponential backoff
    (``retry_backoff * 2**(attempt-1)``) up to ``max_retries`` times,
    then degraded to serial re-execution of just that epoch in the
    parent — the run completes with identical output either way, and
    each healing action is recorded in
    :attr:`ReplayResult.recoveries` (never in stores: recovery
    metadata is volatile).  Workers heartbeat every
    :data:`EPOCH_HEARTBEAT_INTERVAL`; a successor whose predecessor
    stops beating for ``liveness_timeout`` without publishing a
    checkpoint or error record raises
    :class:`~repro.errors.ReplayRelayError` instead of waiting out the
    relay timeout.

    ``engine_kwargs`` pass through to :class:`ReplayEngine` (window,
    profile_backend, batch, record_starts, ...); ``store`` receives the
    stitched window rows and totals row (the same JSONL a serial run
    writes).  Returns the stitched :class:`ReplayResult`.
    """
    started_clock = _time.perf_counter()
    if epochs < 1:
        raise SchedulingError(f"epochs must be >= 1, got {epochs!r}")
    if "store" in engine_kwargs:
        raise SchedulingError("pass store= to replay_epochs, not the engine")
    if engine_kwargs.get("completion_queue", "calendar") != "calendar":
        raise SchedulingError(
            "epoch-sharded replay requires completion_queue='calendar'"
        )
    POLICIES.get(policy)  # loud, early resolution
    if store is not None and not hasattr(store, "append"):
        from ..run.store import JsonlStore

        store = JsonlStore(store)

    jobs, machine, extra_totals = _materialize_trace(
        source, m, n, max_jobs, seed
    )
    cuts = epoch_boundaries([job.release for job in jobs], epochs)
    bounds = [0, *cuts, len(jobs)]
    slices = [
        (jobs[bounds[i]:bounds[i + 1]]) for i in range(len(bounds) - 1)
    ]
    k_eff = len(slices)

    if k_eff == 1:
        engine = ReplayEngine(machine, policy=policy, store=store,
                              **engine_kwargs)
        result = engine.run(jobs)
        result.totals.update(extra_totals)
        return result

    outcomes: List[Tuple[int, List[Dict], Dict, Optional[Dict]]]
    recoveries: List[Dict] = []
    if not use_processes:
        # same relay, no files: hand each checkpoint to the next slice
        # directly — the reference implementation the process path is
        # differential-tested against
        outcomes = []
        resume: Optional[ReplayCheckpoint] = None
        for k, chunk in enumerate(slices):
            final = k == k_eff - 1
            engine = ReplayEngine(machine, policy=policy, **engine_kwargs)
            result = engine.run_slice(chunk, resume=resume, drain=final)
            resume = result.checkpoint
            outcomes.append((k, result.windows, result.totals, result.starts))
    else:
        import tempfile

        # abandoned hung workers may still write relay files after
        # healing finishes; their late scribbles must not turn cleanup
        # into an error
        with tempfile.TemporaryDirectory(
            prefix="repro-epochs-", ignore_cleanup_errors=True
        ) as relay:
            payloads = [
                (k, k == k_eff - 1, chunk, relay, machine, policy,
                 dict(engine_kwargs), liveness_timeout, epoch_timeout)
                for k, chunk in enumerate(slices)
            ]
            outcomes, recoveries = _replay_epochs_processes(
                payloads, relay, max_retries, retry_backoff, epoch_timeout
            )

    outcomes.sort(key=lambda item: item[0])
    windows: List[Dict] = []
    starts: Optional[Dict] = None
    for _, slice_windows, _, slice_starts in outcomes:
        windows.extend(slice_windows)
        if slice_starts is not None:
            if starts is None:
                starts = {}
            starts.update(slice_starts)
    totals = dict(outcomes[-1][2])
    totals.update(extra_totals)
    # the final worker timed only its own slice; report the whole
    # sharded run (volatile field — never part of identity comparisons)
    totals["elapsed_seconds"] = _time.perf_counter() - started_clock
    result = ReplayResult(
        policy=policy,
        m=machine,
        window_size=engine_kwargs.get("window", DEFAULT_WINDOW),
        totals=totals,
        windows=windows,
        starts=starts,
        recoveries=recoveries,
    )
    if store is not None:
        for row in windows:
            store.append(row)
        store.append({"key": "totals", **totals})
    return result
