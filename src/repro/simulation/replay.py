"""Rolling-horizon trace replay: online policies at million-job scale.

:class:`~repro.simulation.online_sim.OnlineSimulation` materialises the
whole instance, preloads every arrival into the event calendar and keeps
the full event trace — the right shape for paper-scale experiments, and
exactly the wrong one for archive SWF traces (10⁵–10⁷ jobs).  This
module is the out-of-core twin: :class:`ReplayEngine` consumes *any*
iterator of :class:`~repro.core.job.Job` arrivals in release order
(:func:`repro.workloads.swf.iter_swf` streams them off disk in constant
memory, :func:`repro.workloads.swf.synth_swf_jobs` generates them), runs
one of the registered online policies
(:data:`repro.simulation.online_sim.POLICIES`) against a live
availability profile, and keeps every structure bounded by the *active
window* of the simulation rather than by trace length:

* arrivals are pulled one look-ahead at a time — the trace never exists
  in memory;
* completed jobs are accounted into window/total aggregates and
  forgotten — there is no ``finished`` dict and no event trace;
* the availability profile is compacted behind the clock with
  :meth:`~repro.core.profiles.base.ProfileBackend.prune_before` (see the
  soundness argument there), so it holds the active segments only.

Equivalence with the in-memory engine
-------------------------------------
The engine processes, at each distinct event time, all completions, then
all arrivals, then one policy decision pass — the same
completion < arrival < decision ordering the event calendar of
:class:`~repro.simulation.engine.Simulator` enforces.  The built-in
policies are *pass-idempotent* (a second decision pass at the same
instant starts nothing new), so one pass per event time yields the exact
start times ``OnlineSimulation`` produces; a hypothesis differential
test in ``tests/test_replay.py`` asserts byte-identical schedules and
metrics across policies, profile backends and plain/gzip ingestion.
Third-party policies must be pass-idempotent to share that guarantee.

Times pass through arithmetically untouched: integer traces (all SWF
archives, the synthetic pack) therefore run entirely on machine ints —
the replay face of the ``timebase="auto"`` fast path, whose scale factor
a stream cannot compute but which is 1 for every integer trace anyway.

The hot path (the flat-array kernel + calendar queue)
-----------------------------------------------------
Two structures bound the per-event cost:

* the availability profile defaults to ``profile_backend="auto"``: the
  int64 flat-column :class:`~repro.core.profiles.ArrayProfile`, whose
  O(1) ``prune_before`` lets the engine compact behind the clock on
  *every* completion instead of every few thousand, keeping the live
  window at active-jobs size (a trace that turns out non-integral
  demotes to the exact ``"list"`` backend mid-stream — profile state
  converts losslessly, so results are unchanged);
* completions live in a **bucketed calendar queue** — a dict from end
  time to the jobs finishing then, plus a heap of *distinct* end times —
  so simultaneous completions cost one heap operation instead of one
  each, and the per-event peek is a list index.  The PR-4 per-job heap
  remains available as ``completion_queue="heap"``: it is the A/B
  reference the ``replay-throughput`` benchmark gate measures against,
  and both modes are asserted row-identical.

``repro replay`` can also run **several policies at once** — serially,
or sharded across worker processes with ``--jobs N``
(:func:`replay_policies`): each policy's replay is independent, workers
return their per-window aggregates, and the merged JSONL rows are
written policy by policy in declaration order, so serial and sharded
output files are byte-identical (volatile wall-clock fields are kept
out of the merged rows).

Windowed metrics
----------------
Jobs are grouped into fixed-size windows by arrival index (default
10 000).  A window's row reports its jobs' waiting times, bounded
slowdowns, work, utilization over the window's span, and the makespan
ratio against the certified per-window lower bound
``max(pmax, W/m, max_i(release_i + p_i) - first_release)`` — the
paper's ratio-vs-LB criterion applied per window.  Rows are emitted in
window order to an optional :class:`~repro.run.store.JsonlStore` as soon
as the trailing job of a window completes, so monitoring a multi-hour
replay costs no memory.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from fractions import Fraction
from heapq import heappop, heappush
from numbers import Integral
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.job import Job
from ..core.metrics import BSLD_TAU, bounded_slowdown
from ..core.profiles import BackendSpec, convert_profile, make_profile
from ..errors import CapacityError, SchedulingError, TraceFormatError
from .online_sim import POLICIES

#: Default window size (jobs per metrics window).
DEFAULT_WINDOW = 10_000

#: Default completions between profile compactions for backends whose
#: ``prune_before`` is O(active segments).  Pruning at a coarse cadence
#: amortises it to O(1) per job; backends advertising ``CHEAP_PRUNE``
#: (the array backend's O(1) offset bump) are pruned on every
#: completion instead, which keeps the live profile at active-window
#: size and this constant irrelevant to them.
DEFAULT_PRUNE_INTERVAL = 4096

#: ``totals`` fields excluded from the merged multi-policy JSONL rows:
#: anything wall-clock-dependent would break the byte-identity of
#: serial vs sharded output.
VOLATILE_TOTAL_FIELDS = frozenset({"elapsed_seconds"})

#: Keys of :attr:`ReplayResult.totals` — the metric names a spec's
#: ``traces`` factor may request (validated in
#: :meth:`repro.run.spec.ExperimentSpec.validate`).
REPLAY_METRIC_FIELDS = frozenset({
    "n_jobs", "makespan", "total_work", "utilization",
    "mean_wait", "max_wait", "mean_slowdown",
    "mean_bounded_slowdown", "max_bounded_slowdown",
    "lower_bound", "ratio_lb", "events", "windows",
    "peak_queue_length", "peak_running", "peak_profile_segments",
    "elapsed_seconds",
})


class ReplayState:
    """Policy-facing cluster state for one replay run.

    Implements the protocol the registered policies program against
    (``queue`` / ``queue_in_order`` / ``can_start_now`` / ``start_job``
    / ``earliest_start`` / ``profile``) like
    :class:`~repro.simulation.cluster.ClusterState`, with two scale
    adaptations: the queue is an insertion-ordered dict so committing a
    job is O(1) instead of an O(queue) rebuild, and completed jobs are
    dropped rather than archived.
    """

    def __init__(self, m: int, profile_backend: BackendSpec = None):
        self.m = m
        self.profile = make_profile([0], [m], profile_backend)
        self.queue: Dict[object, Job] = {}
        self.running: Dict[object, Job] = {}

    # -- queue management -------------------------------------------------
    def enqueue(self, job: Job) -> None:
        if job.q > self.m:
            raise SchedulingError(
                f"job {job.id!r} requires {job.q} processors but the "
                f"machine only has {self.m}"
            )
        self.queue[job.id] = job

    def queue_in_order(self) -> List[Job]:
        """Arrived jobs in submission order."""
        return list(self.queue.values())

    # -- placement --------------------------------------------------------
    def can_start_now(self, job: Job, now) -> bool:
        return self.profile.fits(job.q, now, job.p)

    def start_job(self, job: Job, now) -> None:
        # `reserve` re-validates capacity atomically, so committing costs
        # one windowed min instead of the former check-then-reserve two.
        try:
            self.profile.reserve(now, job.p, job.q)
        except CapacityError:
            raise SchedulingError(
                f"job {job.id!r} does not fit at time {now}"
            ) from None
        self.running[job.id] = job
        del self.queue[job.id]

    def complete_job(self, job_id) -> Job:
        job = self.running.pop(job_id, None)
        if job is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        return job

    # -- introspection ----------------------------------------------------
    def earliest_start(self, job: Job, now):
        return self.profile.earliest_fit(job.q, job.p, after=now)


# ---------------------------------------------------------------------------
# fused decision-pass dispatch
# ---------------------------------------------------------------------------

def _fused_policy_kind(policy) -> Optional[str]:
    """Which fused in-engine loop implements ``policy`` — ``None`` for
    policies without one (they run through the generic loop).

    Dispatch is by *registered function object*: re-registering a
    built-in name under a custom function transparently routes it back
    to the generic loop.
    """
    from .online_sim import policy_easy, policy_fcfs, policy_greedy

    if policy is policy_fcfs:
        return "fcfs"
    if policy is policy_greedy:
        return "greedy"
    if policy is policy_easy:
        return "easy"
    return None


class _WindowAcc:
    """Metric accumulator for one arrival-index window."""

    __slots__ = (
        "index", "arrived", "started", "completed", "full",
        "first_release", "last_completion", "work", "pmax",
        "latest_lb_finish", "sum_wait", "max_wait",
        "sum_bsld", "max_bsld",
    )

    def __init__(self, index: int):
        self.index = index
        self.arrived = 0
        self.started = 0
        self.completed = 0
        self.full = False          # no more arrivals will join
        self.first_release = None
        self.last_completion = None
        self.work = 0
        self.pmax = 0
        self.latest_lb_finish = 0  # max(release + p): no window schedule beats it
        self.sum_wait = 0
        self.max_wait = 0
        self.sum_bsld = 0
        self.max_bsld = 0.0

    @property
    def done(self) -> bool:
        return self.full and self.completed == self.arrived

    def row(self, m: int) -> Dict:
        span = self.last_completion - self.first_release
        lb = max(
            self.pmax,
            self.work / m,
            self.latest_lb_finish - self.first_release,
        )
        n = self.arrived
        return {
            "key": f"window-{self.index:08d}",
            "window": self.index,
            "jobs": n,
            "t_start": self.first_release,
            "t_end": self.last_completion,
            "makespan": span,
            "lower_bound": lb,
            "ratio_lb": float(span) / float(lb) if lb else 0.0,
            "utilization": float(self.work) / float(m * span) if span else 0.0,
            "mean_wait": _mean(self.sum_wait, n),
            "max_wait": self.max_wait,
            "mean_bounded_slowdown": _mean(self.sum_bsld, n),
            "max_bounded_slowdown": self.max_bsld,
        }


def _mean(total, n: int) -> float:
    return float(total) / n if n else 0.0


@dataclass
class ReplayResult:
    """Outcome of one rolling-horizon replay."""

    policy: str
    m: int
    window_size: int
    totals: Dict = field(default_factory=dict)
    windows: List[Dict] = field(default_factory=list)
    #: start times, only populated under ``record_starts=True`` (testing /
    #: small traces — it is the one unbounded structure).
    starts: Optional[Dict] = None

    @property
    def n_jobs(self) -> int:
        return self.totals.get("n_jobs", 0)

    @property
    def makespan(self):
        return self.totals.get("makespan")


class ReplayEngine:
    """Rolling-horizon replay of an arrival stream (see module docs).

    Parameters
    ----------
    m:
        Machine size the stream is replayed on.
    policy:
        Registered online policy name (``repro list --kind policies``).
    profile_backend:
        Availability structure (``"list"``/``"tree"``/``"array"``/class,
        ``None`` for the module default, or the replay-specific
        ``"auto"``, the default).  ``"auto"`` starts on the int64
        flat-array kernel — pruned O(1) behind the clock on every
        completion, it holds only the active window, where flat columns
        beat both exact backends — and demotes the live profile to the
        exact ``"list"`` backend the moment a non-integral job time
        appears (conversion preserves the represented function, so
        results are identical; integer traces never demote).
    window:
        Jobs per metrics window (0 disables windowed rows).
    store:
        Optional :class:`~repro.run.store.JsonlStore` (or path) that
        window rows and the final totals row stream to.
    prune_interval:
        Completions between profile compactions (cheap-prune backends
        compact every completion regardless; see
        :data:`DEFAULT_PRUNE_INTERVAL`).
    bsld_tau:
        Bounded-slowdown runtime threshold.
    record_starts:
        Keep ``{job id: start}`` for the whole run — memory O(n); only
        for differential tests and paper-scale traces.
    completion_queue:
        ``"calendar"`` (default) buckets completions by end time with a
        heap of distinct times; ``"heap"`` is the PR-4 per-job heap,
        kept as the A/B reference for the throughput benchmark.  Both
        orderings are identical (same-time completions pop in start
        order either way).
    fused_policies:
        Dispatch built-in policies to their fused in-engine twins
        (identical semantics, fewer indirection layers; see the module
        docs).  ``False`` forces the generic registry functions — the
        A/B reference configuration.
    """

    def __init__(
        self,
        m: int,
        policy: str = "easy",
        profile_backend: BackendSpec = "auto",
        window: int = DEFAULT_WINDOW,
        store=None,
        prune_interval: int = DEFAULT_PRUNE_INTERVAL,
        bsld_tau=BSLD_TAU,
        record_starts: bool = False,
        completion_queue: str = "calendar",
        fused_policies: bool = True,
    ):
        if m < 1:
            raise SchedulingError(f"machine size must be >= 1, got {m!r}")
        if window < 0:
            raise SchedulingError(f"window must be >= 0, got {window!r}")
        if prune_interval < 1:
            raise SchedulingError("prune_interval must be >= 1")
        if completion_queue not in ("calendar", "heap"):
            raise SchedulingError(
                f"completion_queue must be 'calendar' or 'heap', "
                f"got {completion_queue!r}"
            )
        self.m = m
        self.policy_name = policy
        self._policy = POLICIES.get(policy)
        self.profile_backend = profile_backend
        self.window = window
        self.prune_interval = prune_interval
        self.bsld_tau = bsld_tau
        self.record_starts = record_starts
        self.completion_queue = completion_queue
        self.fused_policies = fused_policies
        if store is not None and not hasattr(store, "append"):
            from ..run.store import JsonlStore

            store = JsonlStore(store)
        self.store = store

    # ------------------------------------------------------------------
    def run(self, arrivals: Iterable[Job]) -> ReplayResult:
        """Replay ``arrivals``; returns the :class:`ReplayResult`.

        Dispatches to the fused hot loop (:meth:`_run_fused`) when the
        policy is a built-in with a fused twin and the calendar queue is
        active; the generic loop remains the reference implementation
        for custom policies, the heap queue and ``fused_policies=False``
        — both produce identical rows (differential-tested).
        """
        if (
            self.fused_policies
            and self.completion_queue == "calendar"
            and _fused_policy_kind(self._policy) is not None
        ):
            return self._run_fused(arrivals)
        return self._run_generic(arrivals)

    def _run_generic(self, arrivals: Iterable[Job]) -> ReplayResult:
        started_clock = _time.perf_counter()
        backend: BackendSpec = self.profile_backend
        auto_backend = backend == "auto"
        if auto_backend:
            backend = "array"
        state = ReplayState(self.m, backend)
        # `auto` watches for non-integral job times and demotes the live
        # profile to the exact list backend before they reach the int64
        # columns; an explicit backend choice is honoured (and loud).
        watch_times = auto_backend and getattr(
            state.profile, "CHEAP_PRUNE", False
        )
        cheap_prune = getattr(state.profile, "CHEAP_PRUNE", False)
        use_heap = self.completion_queue == "heap"
        decide = self._policy
        queue = state.queue  # the dict object is stable for the run
        heap: List[Tuple] = []       # heap mode: (end time, seq, job id)
        buckets: Dict = {}           # calendar mode: end time -> [jobs]
        time_heap: List = []         # calendar mode: distinct end times
        seq = 0
        now = None

        windows: Dict[int, _WindowAcc] = {}
        window_of: Dict[object, int] = {}   # live jobs only
        emitted: List[Dict] = []
        next_emit = 0
        result = ReplayResult(
            policy=self.policy_name, m=self.m, window_size=self.window,
            starts={} if self.record_starts else None,
        )

        # totals
        arrived = 0
        completed = 0
        events = 0
        total_work = 0
        pmax = 0
        latest_lb_finish = 0
        last_completion = 0
        sum_wait = 0
        max_wait = 0
        sum_slowdown = 0
        sum_bsld = 0
        max_bsld = 0.0
        peak_queue = 0
        peak_running = 0
        peak_segments = 1
        since_prune = 0
        pruned_to = 0   # completions already compacted behind

        def current_window(index: int) -> Optional[_WindowAcc]:
            if not self.window:
                return None
            w = index // self.window
            acc = windows.get(w)
            if acc is None:
                acc = windows[w] = _WindowAcc(w)
            return acc

        def emit_done_windows(force: bool = False) -> None:
            nonlocal next_emit
            while next_emit in windows and (windows[next_emit].done or force):
                acc = windows.pop(next_emit)
                if acc.arrived:
                    row = acc.row(self.m)
                    emitted.append(row)
                    if self.store is not None:
                        self.store.append(row)
                next_emit += 1

        it = iter(arrivals)
        pending = next(it, None)

        running = state.running
        while pending is not None or heap or time_heap or queue:
            if pending is None and not heap and not time_heap:
                raise SchedulingError(
                    f"replay stalled with {len(state.queue)} queued job(s) "
                    "that can never start"
                )
            # advance the clock to the next event time
            t_arrival = pending.release if pending is not None else None
            if use_heap:
                t_completion = heap[0][0] if heap else None
            else:
                t_completion = time_heap[0] if time_heap else None
            if t_completion is not None and (
                t_arrival is None or t_completion <= t_arrival
            ):
                now = t_completion
            else:
                now = t_arrival

            # 1. completions at `now` free their processors first
            if use_heap:
                while heap and heap[0][0] == now:
                    _, _, job_id = heappop(heap)
                    state.complete_job(job_id)
                    events += 1
                    completed += 1
                    since_prune += 1
                    last_completion = now
                    w = window_of.pop(job_id, None)
                    if w is not None:
                        acc = windows[w]
                        acc.completed += 1
                        acc.last_completion = now
                        if acc.done:
                            emit_done_windows()
            elif time_heap and time_heap[0] == now:
                # one bucket holds every job finishing at `now`, in start
                # order — a single heap pop serves them all
                heappop(time_heap)
                for job in buckets.pop(now):
                    job_id = job.id
                    del running[job_id]
                    events += 1
                    completed += 1
                    since_prune += 1
                    last_completion = now
                    w = window_of.pop(job_id, None)
                    if w is not None:
                        acc = windows[w]
                        acc.completed += 1
                        acc.last_completion = now
                        if acc.done:
                            emit_done_windows()

            # 2. arrivals at `now` join the queue in stream order
            while pending is not None and pending.release == now:
                job = pending
                if watch_times and not (
                    type(job.p) is int and type(job.release) is int
                ):
                    # non-integral trace: demote the live profile to the
                    # exact list backend (state converts losslessly)
                    state.profile = convert_profile(state.profile, "list")
                    watch_times = cheap_prune = False
                state.enqueue(job)
                events += 1
                acc = current_window(arrived)
                if acc is not None:
                    window_of[job.id] = acc.index
                    acc.arrived += 1
                    if acc.first_release is None:
                        acc.first_release = job.release
                    acc.work += job.area
                    if job.p > acc.pmax:
                        acc.pmax = job.p
                    finish = job.release + job.p
                    if finish > acc.latest_lb_finish:
                        acc.latest_lb_finish = finish
                    if acc.arrived == self.window:
                        acc.full = True
                arrived += 1
                total_work += job.area
                if job.p > pmax:
                    pmax = job.p
                if job.release + job.p > latest_lb_finish:
                    latest_lb_finish = job.release + job.p
                pending = next(it, None)
            if pending is None and self.window:
                # the stream ended: the partial trailing window is full
                for acc in windows.values():
                    acc.full = True
                emit_done_windows()

            if len(queue) > peak_queue:
                peak_queue = len(queue)

            # 3. one decision pass (policies are pass-idempotent)
            for job in decide(state, now) if queue else ():
                events += 1
                wait = now - job.release
                sum_wait += wait
                if wait > max_wait:
                    max_wait = wait
                # slowdown means are floats (order-noise accepted); the
                # identity-tested totals stay int-exact sums
                sum_slowdown += (wait + job.p) / job.p
                bsld = bounded_slowdown(wait, job.p, self.bsld_tau)
                sum_bsld += bsld
                if bsld > max_bsld:
                    max_bsld = bsld
                w = window_of.get(job.id)
                if w is not None:
                    acc = windows[w]
                    acc.started += 1
                    acc.sum_wait += wait
                    if wait > acc.max_wait:
                        acc.max_wait = wait
                    acc.sum_bsld += bsld
                    if bsld > acc.max_bsld:
                        acc.max_bsld = bsld
                if result.starts is not None:
                    result.starts[job.id] = now
                end = now + job.p
                if use_heap:
                    seq += 1
                    heappush(heap, (end, seq, job.id))
                else:
                    bucket = buckets.get(end)
                    if bucket is None:
                        buckets[end] = [job]
                        heappush(time_heap, end)
                    else:
                        bucket.append(job)

            if len(running) > peak_running:
                peak_running = len(running)

            # 4. compact the profile behind the clock (high-water sampled
            # just before pruning: the honest peak — cheap-prune backends
            # compact on every completion event, so the gauge is sampled
            # on a cadence)
            if cheap_prune:
                # O(1) prune and O(1) size probe: sample before every
                # compaction, so the peak gauge is exact
                if completed != pruned_to:
                    pruned_to = completed
                    segments = state.profile.segment_count()
                    if segments > peak_segments:
                        peak_segments = segments
                    state.profile.prune_before(now)
            elif since_prune >= self.prune_interval:
                since_prune = 0
                segments = state.profile.segment_count()
                if segments > peak_segments:
                    peak_segments = segments
                state.profile.prune_before(now)

        if self.window:
            emit_done_windows(force=True)
        segments = state.profile.segment_count()
        if segments > peak_segments:
            peak_segments = segments

        return self._finalize(
            result, emitted, started_clock,
            arrived=arrived, events=events, total_work=total_work,
            pmax=pmax, latest_lb_finish=latest_lb_finish,
            last_completion=last_completion, sum_wait=sum_wait,
            max_wait=max_wait, sum_slowdown=sum_slowdown,
            sum_bsld=sum_bsld, max_bsld=max_bsld, peak_queue=peak_queue,
            peak_running=peak_running, peak_segments=peak_segments,
        )

    # ------------------------------------------------------------------
    def _run_fused(self, arrivals: Iterable[Job]) -> ReplayResult:
        """The fused hot loop: the built-in policy's decision pass is
        inlined into the event loop, placement goes through the
        profile's single-bisect :meth:`~repro.core.profiles.base.
        ProfileBackend.try_reserve`, EASY's shadow reservation is
        replaced by the equivalent three-window queries (no mutation
        churn), and the calendar queue stores Job objects directly so
        there is no separate running dict.  Semantically identical to
        :meth:`_run_generic` — the differential tests and the
        ``replay-throughput`` identity matrix assert equal rows."""
        started_clock = _time.perf_counter()
        m = self.m
        backend: BackendSpec = self.profile_backend
        auto_backend = backend == "auto"
        if auto_backend:
            backend = "array"
        profile = make_profile([0], [m], backend)
        watch_times = auto_backend and getattr(profile, "CHEAP_PRUNE", False)
        cheap_prune = getattr(profile, "CHEAP_PRUNE", False)
        kind = _fused_policy_kind(self._policy)
        easy = kind == "easy"
        greedy = kind == "greedy"

        try_reserve = profile.try_reserve
        reserve_fitting = profile.reserve_fitting
        earliest_fit = profile.earliest_fit
        min_capacity = profile.min_capacity
        capacity_at = profile.capacity_at
        fits = profile.fits
        prune = profile.prune_before
        seg_count = profile.segment_count

        queue: Dict[object, Job] = {}
        buckets: Dict = {}           # end time -> jobs finishing then
        time_heap: List = []         # distinct end times
        now = None
        blocked_id: object = None    # easy: memoised blocked head ...
        blocked_until = 0            # ... and its exact earliest fit
        # arrival-side accumulators of the window currently filling —
        # arrivals are strictly sequential by index, so these live in
        # locals and flush into the _WindowAcc at rollover/stream end
        cur_acc = None
        wa_arrived = wa_work = wa_pmax = wa_latest = 0
        wa_first = None

        window = self.window
        prune_interval = self.prune_interval
        bsld_tau = self.bsld_tau
        store = self.store
        windows: Dict[int, _WindowAcc] = {}
        #: live jobs only; values are the accumulator objects themselves
        window_of: Dict[object, _WindowAcc] = {}
        emitted: List[Dict] = []
        next_emit = 0
        result = ReplayResult(
            policy=self.policy_name, m=m, window_size=window,
            starts={} if self.record_starts else None,
        )
        record = result.starts

        # totals
        arrived = 0
        completed = 0
        total_work = 0
        pmax = 0
        latest_lb_finish = 0
        last_completion = 0
        sum_wait = 0
        max_wait = 0
        sum_slowdown = 0
        sum_bsld = 0
        max_bsld = 0.0
        peak_queue = 0
        running_count = 0
        peak_running = 0
        peak_segments = 1
        since_prune = 0
        pruned_to = 0   # completions already compacted behind

        def emit_done_windows(force: bool = False) -> None:
            nonlocal next_emit
            while next_emit in windows and (windows[next_emit].done or force):
                acc = windows.pop(next_emit)
                if acc.arrived:
                    row = acc.row(m)
                    emitted.append(row)
                    if store is not None:
                        store.append(row)
                next_emit += 1

        it = iter(arrivals)
        pending = next(it, None)
        t_arrival = pending.release if pending is not None else None

        while pending is not None or time_heap or queue:
            if pending is None and not time_heap:
                raise SchedulingError(
                    f"replay stalled with {len(queue)} queued job(s) "
                    "that can never start"
                )
            # clock advance fused with completion processing: when the
            # next completion is due it *is* the event
            if time_heap:
                tc = time_heap[0]
                if t_arrival is None or tc <= t_arrival:
                    now = tc
                    # 1. completions at `now` free their processors first
                    heappop(time_heap)
                    finished = buckets.pop(now)
                    n_finished = len(finished)
                    completed += n_finished
                    since_prune += n_finished
                    running_count -= n_finished
                    last_completion = now
                    if window:
                        for job in finished:
                            acc = window_of.pop(job.id)
                            acc.completed += 1
                            acc.last_completion = now
                            if acc.full and acc.completed == acc.arrived:
                                emit_done_windows()
                else:
                    now = t_arrival
            else:
                now = t_arrival

            # 2. arrivals at `now` join the queue in stream order
            while t_arrival == now and pending is not None:
                job = pending
                if watch_times and not (
                    type(job.p) is int and type(job.release) is int
                ):
                    # non-integral trace: demote to the exact list
                    # backend (conversion preserves the function)
                    profile = convert_profile(profile, "list")
                    watch_times = cheap_prune = False
                    try_reserve = profile.try_reserve
                    reserve_fitting = profile.reserve_fitting
                    earliest_fit = profile.earliest_fit
                    min_capacity = profile.min_capacity
                    capacity_at = profile.capacity_at
                    fits = profile.fits
                    prune = profile.prune_before
                    seg_count = profile.segment_count
                jq = job.q
                if jq > m:
                    raise SchedulingError(
                        f"job {job.id!r} requires {jq} processors but the "
                        f"machine only has {m}"
                    )
                queue[job.id] = job
                # the queue only grows during the arrival phase, so
                # sampling after each enqueue sees every high-water mark
                qlen = len(queue)
                if qlen > peak_queue:
                    peak_queue = qlen
                jp = job.p
                rel = job.release
                area = jp * jq
                finish = rel + jp
                if window:
                    if cur_acc is None:
                        w = arrived // window
                        cur_acc = windows[w] = _WindowAcc(w)
                        wa_arrived = wa_work = wa_pmax = wa_latest = 0
                        wa_first = rel
                    window_of[job.id] = cur_acc
                    wa_arrived += 1
                    wa_work += area
                    if jp > wa_pmax:
                        wa_pmax = jp
                    if finish > wa_latest:
                        wa_latest = finish
                    if wa_arrived == window:
                        acc = cur_acc
                        acc.arrived = window
                        acc.first_release = wa_first
                        acc.work = wa_work
                        acc.pmax = wa_pmax
                        acc.latest_lb_finish = wa_latest
                        acc.full = True
                        cur_acc = None
                arrived += 1
                total_work += area
                if jp > pmax:
                    pmax = jp
                if finish > latest_lb_finish:
                    latest_lb_finish = finish
                pending = next(it, None)
                if pending is not None:
                    t_arrival = pending.release
                    continue
                t_arrival = None
                if window:
                    # the stream ended: flush the partial trailing
                    # window, then every open window is full
                    if cur_acc is not None:
                        acc = cur_acc
                        acc.arrived = wa_arrived
                        acc.first_release = wa_first
                        acc.work = wa_work
                        acc.pmax = wa_pmax
                        acc.latest_lb_finish = wa_latest
                        cur_acc = None
                    for acc in windows.values():
                        acc.full = True
                    emit_done_windows()

            # 3. one inlined decision pass (identical to the registered
            # policy; see _fused_policy_kind).  The per-start bookkeeping
            # block is intentionally repeated in each branch: a shared
            # closure would turn every hot counter into a cell variable
            # (slowing the whole loop), and the fused-vs-generic
            # differential tests pin all copies to _run_generic anyway.
            if queue:
                if easy:
                    # Blocked-head memo: while `blocked_id` heads the
                    # queue, `blocked_until` is its exact earliest fit.
                    # It stays exact because inside this loop the profile
                    # only ever *loses* capacity (no shadow mutation, no
                    # `add`), and each commit is either a head start —
                    # which changes the head id, missing the memo — or a
                    # shadow-checked backfill, which by construction
                    # leaves the head fitting at `blocked_until` while
                    # capacity loss cannot move an earliest fit earlier.
                    # So `now < blocked_until` proves the head probe
                    # fails and phase 2 may reuse the cached value.
                    # phase 1: heads
                    head = None
                    while queue:
                        head = next(iter(queue.values()))
                        if blocked_id == head.id and now < blocked_until:
                            break
                        jp = head.p
                        if not try_reserve(now, jp, head.q):
                            break
                        del queue[head.id]
                        running_count += 1
                        wait = now - head.release
                        sum_wait += wait
                        if wait > max_wait:
                            max_wait = wait
                        sum_slowdown += (wait + jp) / jp
                        den = jp if jp > bsld_tau else bsld_tau
                        bsld = float(wait + jp) / float(den)
                        if bsld < 1.0:
                            bsld = 1.0
                        sum_bsld += bsld
                        if bsld > max_bsld:
                            max_bsld = bsld
                        if window:
                            acc = window_of[head.id]
                            acc.started += 1
                            acc.sum_wait += wait
                            if wait > acc.max_wait:
                                acc.max_wait = wait
                            acc.sum_bsld += bsld
                            if bsld > acc.max_bsld:
                                acc.max_bsld = bsld
                        if record is not None:
                            record[head.id] = now
                        end = now + jp
                        bucket = buckets.get(end)
                        if bucket is None:
                            buckets[end] = [head]
                            heappush(time_heap, end)
                        else:
                            bucket.append(head)
                    if len(queue) > 1:
                        # phase 2: the head's shadow reservation,
                        # expressed as window queries — a backfill
                        # candidate fits under the shadow iff each of
                        # the <=3 sub-windows clears its demand.  (With
                        # no candidates behind the head the shadow can
                        # start nothing, so it is skipped outright.)
                        hp = head.p
                        hq = head.q
                        if blocked_id == head.id:
                            s_head = blocked_until
                        else:
                            s_head = earliest_fit(hq, hp, after=now)
                            if s_head is None:
                                raise SchedulingError(
                                    f"job {head.id!r} can never start"
                                )
                            blocked_id = head.id
                            blocked_until = s_head
                        h_end = s_head + hp
                        # Every candidate's window contains `now`, and
                        # the shadow starts strictly after `now`
                        # (s_head > now — the head just failed to fit),
                        # so a width above the capacity at `now` cannot
                        # start: one int compare screens most blocked
                        # candidates before any window query.
                        cap_now = capacity_at(now)
                        backfill = iter(list(queue.values()))
                        next(backfill)  # the head itself
                        for job in backfill:
                            jq = job.q
                            if jq > cap_now:
                                continue
                            jp = job.p
                            j_end = now + jp
                            if s_head >= j_end:
                                ok = fits(jq, now, jp)
                            else:
                                lim = j_end if j_end < h_end else h_end
                                ok = (
                                    min_capacity(s_head, lim) >= jq + hq
                                    and (s_head <= now
                                         or min_capacity(now, s_head) >= jq)
                                    and (j_end <= h_end
                                         or min_capacity(h_end, j_end) >= jq)
                                )
                            if ok:
                                cap_now -= jq
                                reserve_fitting(now, jp, jq)
                                del queue[job.id]
                                running_count += 1
                                wait = now - job.release
                                sum_wait += wait
                                if wait > max_wait:
                                    max_wait = wait
                                sum_slowdown += (wait + jp) / jp
                                den = jp if jp > bsld_tau else bsld_tau
                                bsld = float(wait + jp) / float(den)
                                if bsld < 1.0:
                                    bsld = 1.0
                                sum_bsld += bsld
                                if bsld > max_bsld:
                                    max_bsld = bsld
                                if window:
                                    acc = window_of[job.id]
                                    acc.started += 1
                                    acc.sum_wait += wait
                                    if wait > acc.max_wait:
                                        acc.max_wait = wait
                                    acc.sum_bsld += bsld
                                    if bsld > acc.max_bsld:
                                        acc.max_bsld = bsld
                                if record is not None:
                                    record[job.id] = now
                                end = now + jp
                                bucket = buckets.get(end)
                                if bucket is None:
                                    buckets[end] = [job]
                                    heappush(time_heap, end)
                                else:
                                    bucket.append(job)
                else:
                    # fcfs / greedy: one ordered sweep; fcfs stops at
                    # the first job that does not fit
                    for job in list(queue.values()):
                        jp = job.p
                        if not try_reserve(now, jp, job.q):
                            if greedy:
                                continue
                            break
                        del queue[job.id]
                        running_count += 1
                        wait = now - job.release
                        sum_wait += wait
                        if wait > max_wait:
                            max_wait = wait
                        sum_slowdown += (wait + jp) / jp
                        den = jp if jp > bsld_tau else bsld_tau
                        bsld = float(wait + jp) / float(den)
                        if bsld < 1.0:
                            bsld = 1.0
                        sum_bsld += bsld
                        if bsld > max_bsld:
                            max_bsld = bsld
                        if window:
                            acc = window_of[job.id]
                            acc.started += 1
                            acc.sum_wait += wait
                            if wait > acc.max_wait:
                                acc.max_wait = wait
                            acc.sum_bsld += bsld
                            if bsld > acc.max_bsld:
                                acc.max_bsld = bsld
                        if record is not None:
                            record[job.id] = now
                        end = now + jp
                        bucket = buckets.get(end)
                        if bucket is None:
                            buckets[end] = [job]
                            heappush(time_heap, end)
                        else:
                            bucket.append(job)

            if running_count > peak_running:
                peak_running = running_count

            # 4. compact the profile behind the clock (completion events
            # only: capacity history only accrues when jobs finish).
            # segment_count is O(1), so the peak gauge samples before
            # every compaction and is exact.
            if cheap_prune:
                if completed != pruned_to:
                    pruned_to = completed
                    segments = seg_count()
                    if segments > peak_segments:
                        peak_segments = segments
                    prune(now)
            elif since_prune >= prune_interval:
                since_prune = 0
                segments = seg_count()
                if segments > peak_segments:
                    peak_segments = segments
                prune(now)

        if window:
            emit_done_windows(force=True)
        segments = seg_count()
        if segments > peak_segments:
            peak_segments = segments

        # the loop only exits fully drained, so every job contributed
        # exactly one arrival, one start and one completion event
        return self._finalize(
            result, emitted, started_clock,
            arrived=arrived, events=3 * arrived, total_work=total_work,
            pmax=pmax, latest_lb_finish=latest_lb_finish,
            last_completion=last_completion, sum_wait=sum_wait,
            max_wait=max_wait, sum_slowdown=sum_slowdown,
            sum_bsld=sum_bsld, max_bsld=max_bsld, peak_queue=peak_queue,
            peak_running=peak_running, peak_segments=peak_segments,
        )

    # ------------------------------------------------------------------
    def _finalize(
        self, result: ReplayResult, emitted: List[Dict], started_clock,
        *, arrived, events, total_work, pmax, latest_lb_finish,
        last_completion, sum_wait, max_wait, sum_slowdown, sum_bsld,
        max_bsld, peak_queue, peak_running, peak_segments,
    ) -> ReplayResult:
        """Assemble the totals row (shared by both loops, so the fused
        and generic paths cannot drift)."""
        makespan = last_completion
        lb = max(pmax, _exact_ratio(total_work, self.m), latest_lb_finish)
        result.windows = emitted
        result.totals = {
            "n_jobs": arrived,
            "makespan": makespan,
            "total_work": total_work,
            "utilization": (
                float(total_work) / float(self.m * makespan) if makespan else 0.0
            ),
            "mean_wait": _mean(sum_wait, arrived),
            "max_wait": max_wait,
            "mean_slowdown": _mean(sum_slowdown, arrived),
            "mean_bounded_slowdown": _mean(sum_bsld, arrived),
            "max_bounded_slowdown": max_bsld,
            "lower_bound": float(lb),
            "ratio_lb": float(makespan) / float(lb) if lb else 0.0,
            "events": events,
            "windows": len(emitted),
            "peak_queue_length": peak_queue,
            "peak_running": peak_running,
            "peak_profile_segments": peak_segments,
            "elapsed_seconds": _time.perf_counter() - started_clock,
        }
        if self.store is not None:
            self.store.append({"key": "totals", **result.totals})
        return result


def _exact_ratio(num, den):
    """``num / den`` kept exact for int inputs (Fractions sum without
    float-order noise), plain division otherwise."""
    if isinstance(num, Integral) and isinstance(den, Integral):
        f = Fraction(int(num), int(den))
        return f.numerator if f.denominator == 1 else f
    return num / den


def replay(
    arrivals: Iterable[Job],
    m: int,
    policy: str = "easy",
    **engine_kwargs,
) -> ReplayResult:
    """Convenience wrapper: replay an arrival iterable on ``m`` machines."""
    return ReplayEngine(m, policy=policy, **engine_kwargs).run(arrivals)


def replay_swf(
    source,
    policy: str = "easy",
    m: Optional[int] = None,
    max_jobs: Optional[int] = None,
    **engine_kwargs,
) -> ReplayResult:
    """Stream an SWF trace (path, ``.gz`` path or text stream) through
    the replay engine.

    The machine size comes from ``m=`` or the trace's ``; MaxProcs:``
    header (resolved from the first arrival before the engine starts).
    Returns the :class:`ReplayResult`; the stream's counters are
    attached as ``totals["skipped_lines"]`` (lines dropped from the
    stream) and ``totals["clipped_jobs"]`` (jobs replayed at reduced
    width).
    """
    from itertools import chain

    from ..workloads.swf import iter_swf

    stream = iter_swf(source, m=m, max_jobs=max_jobs)
    it: Iterator[Job] = iter(stream)
    first = next(it, None)
    if first is None:
        raise TraceFormatError("SWF stream contains no usable jobs")
    engine = ReplayEngine(stream.m, policy=policy, **engine_kwargs)
    result = engine.run(chain([first], it))
    result.totals["skipped_lines"] = stream.n_skipped
    result.totals["clipped_jobs"] = stream.n_clipped
    return result


# ---------------------------------------------------------------------------
# sharded multi-policy replay
# ---------------------------------------------------------------------------

#: Prefix of a synthetic scenario-pack source (``synth:<profile>[:<n>]``).
SYNTH_PREFIX = "synth:"

#: Job count of a synthetic source that names no ``:<n>`` (shared by the
#: CLI and the sharded runner so the default cannot drift).
DEFAULT_SYNTH_JOBS = 100_000


def parse_synth_source(source: str) -> Tuple[str, Optional[int]]:
    """Split ``synth:<profile>[:<n>]`` into ``(profile, n-or-None)``.

    Raises :class:`~repro.errors.TraceFormatError` on unknown profiles
    or a non-integer length, so the CLI and the sharded runner reject
    malformed sources with the same message.
    """
    from ..workloads.swf import SYNTH_PROFILES

    parts = source.split(":")
    profile = parts[1] if len(parts) > 1 else ""
    if profile not in SYNTH_PROFILES:
        raise TraceFormatError(
            f"unknown synthetic profile {profile!r}; known: "
            f"{', '.join(SYNTH_PROFILES)}"
        )
    if len(parts) > 2:
        try:
            return profile, int(parts[2])
        except ValueError:
            raise TraceFormatError(
                f"synthetic trace length {parts[2]!r} is not an integer "
                "(expected synth:<profile>[:<n>])"
            ) from None
    return profile, None


@dataclass
class MultiReplayResult:
    """Outcome of a multi-policy replay (serial or sharded).

    ``results`` maps each policy to its :class:`ReplayResult` (in the
    declaration order of the run); ``rows`` is the merged JSONL row list
    — per-window rows then a totals row per policy, policies in
    declaration order, volatile wall-clock fields stripped — which is
    byte-identical between serial and sharded executions.
    """

    m: int
    results: Dict[str, ReplayResult] = field(default_factory=dict)
    rows: List[Dict] = field(default_factory=list)


def _merged_policy_rows(policy: str, result: ReplayResult) -> List[Dict]:
    """The deterministic JSONL rows one policy contributes."""
    rows: List[Dict] = []
    for window_row in result.windows:
        row = {"key": f"{policy}/{window_row['key']}", "policy": policy}
        row.update(
            (k, v) for k, v in window_row.items() if k != "key"
        )
        rows.append(row)
    totals = {
        k: v for k, v in result.totals.items()
        if k not in VOLATILE_TOTAL_FIELDS
    }
    rows.append({"key": f"{policy}/totals", "policy": policy, **totals})
    return rows


def _run_policy_shard(payload: Tuple) -> Tuple[str, ReplayResult]:
    """One worker: replay ``source`` under a single policy.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; the payload re-creates the arrival stream inside the
    worker (streams themselves are not picklable).
    """
    source, policy, m, n, max_jobs, seed, engine_kwargs = payload
    if isinstance(source, str) and source.startswith(SYNTH_PREFIX):
        from ..workloads.swf import synth_swf_jobs

        profile, parsed_n = parse_synth_source(source)
        jobs_n = n if n is not None else (parsed_n or DEFAULT_SYNTH_JOBS)
        if max_jobs is not None:
            jobs_n = min(jobs_n, max_jobs)
        machine = m or 256
        engine = ReplayEngine(machine, policy=policy, **engine_kwargs)
        result = engine.run(
            synth_swf_jobs(profile, jobs_n, m=machine, seed=seed)
        )
    else:
        result = replay_swf(
            source, policy=policy, m=m, max_jobs=max_jobs, **engine_kwargs
        )
    return policy, result


def replay_policies(
    source,
    policies: Iterable[str] = ("easy",),
    m: Optional[int] = None,
    jobs: int = 1,
    store=None,
    n: Optional[int] = None,
    max_jobs: Optional[int] = None,
    seed: int = 0,
    **engine_kwargs,
) -> MultiReplayResult:
    """Replay one trace under several policies — sharded when asked.

    Each policy's replay consumes an *independent* stream of the same
    source (an SWF path or ``synth:<profile>[:<n>]``), so the K policies
    are embarrassingly parallel: ``jobs > 1`` runs them on a process
    pool, one worker per policy.  Workers return their per-window
    aggregates, and the merged rows are assembled **policy by policy in
    declaration order** with wall-clock fields stripped, so the JSONL
    written to ``store`` is byte-identical between ``jobs=1`` and any
    sharded execution (a test and the ``replay-throughput`` benchmark
    gate both assert this).

    ``engine_kwargs`` pass through to :class:`ReplayEngine` (window,
    profile_backend, record_starts, ...).  Returns a
    :class:`MultiReplayResult`.
    """
    policy_list = list(policies)
    if not policy_list:
        raise SchedulingError("replay needs at least one policy")
    if len(set(policy_list)) != len(policy_list):
        raise SchedulingError(f"duplicate policies in {policy_list}")
    for name in policy_list:
        POLICIES.get(name)  # loud, early resolution
    if jobs < 1:
        raise SchedulingError(f"jobs must be >= 1, got {jobs!r}")
    if store is not None and not hasattr(store, "append"):
        from ..run.store import JsonlStore

        store = JsonlStore(store)

    payloads = [
        (source, policy, m, n, max_jobs, seed, dict(engine_kwargs))
        for policy in policy_list
    ]
    if jobs == 1 or len(policy_list) == 1:
        outcomes = [_run_policy_shard(p) for p in payloads]
    else:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(jobs, len(policy_list))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves submission order: merged rows come out in
            # declaration order no matter which shard finishes first
            outcomes = list(pool.map(_run_policy_shard, payloads))

    merged = MultiReplayResult(m=outcomes[0][1].m)
    for policy, result in outcomes:
        merged.results[policy] = result
        rows = _merged_policy_rows(policy, result)
        merged.rows.extend(rows)
        if store is not None:
            for row in rows:
                store.append(row)
    return merged
