"""Timeline analytics over simulation traces.

A batch-system operator judges a policy by more than the final makespan:
queue growth, time-in-system, and utilization as functions of time.  This
module turns a :class:`~repro.simulation.online_sim.SimulationResult`
trace into those piecewise-constant timelines and summary figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.profiles import ProfileBackend
from ..errors import InvalidInstanceError
from .online_sim import SimulationResult


@dataclass(frozen=True)
class TimelineSummary:
    """Aggregate view of one simulation run.

    Attributes
    ----------
    horizon:
        Last event time (= makespan for complete runs).
    max_queue_length / mean_queue_length:
        Extremes and time-average of the waiting-queue size.
    total_queue_time:
        Integral of queue length over time (job-seconds of waiting).
    busiest_instant:
        Time at which the queue peaked (first such instant).
    n_events:
        Number of trace events.
    """

    horizon: float
    max_queue_length: int
    mean_queue_length: float
    total_queue_time: float
    busiest_instant: float
    n_events: int


def queue_length_timeline(result: SimulationResult) -> List[Tuple]:
    """Piecewise-constant queue length as ``(time, length)`` steps.

    The queue grows on ``arrive`` and shrinks on ``start``; ``finish``
    events do not touch it.  Events at the same instant are applied in
    trace order, and only the final value per instant is emitted.
    """
    steps: List[Tuple] = []
    length = 0
    for event in result.trace:
        if event.kind == "arrive":
            length += 1
        elif event.kind == "start":
            length -= 1
        else:
            continue
        if steps and steps[-1][0] == event.time:
            steps[-1] = (event.time, length)
        else:
            steps.append((event.time, length))
    if length != 0:
        raise InvalidInstanceError(
            f"trace is inconsistent: queue ends at length {length}"
        )
    return steps


def running_count_timeline(result: SimulationResult) -> List[Tuple]:
    """Number of running jobs over time as ``(time, count)`` steps."""
    steps: List[Tuple] = []
    count = 0
    for event in result.trace:
        if event.kind == "start":
            count += 1
        elif event.kind == "finish":
            count -= 1
        else:
            continue
        if steps and steps[-1][0] == event.time:
            steps[-1] = (event.time, count)
        else:
            steps.append((event.time, count))
    return steps


def utilization_timeline(result: SimulationResult) -> ProfileBackend:
    """Processors used by jobs over time (the schedule's ``r(t)``)."""
    return result.schedule.usage_profile()


def summarize_timeline(result: SimulationResult) -> TimelineSummary:
    """Queue statistics for the whole run."""
    if not result.trace:
        raise InvalidInstanceError("empty trace")
    steps = queue_length_timeline(result)
    horizon = max(e.time for e in result.trace)
    max_len = 0
    busiest = steps[0][0] if steps else 0
    area = 0.0
    prev_t, prev_len = steps[0] if steps else (0, 0)
    for t, length in steps[1:]:
        area += prev_len * float(t - prev_t)
        prev_t, prev_len = t, length
    # tail after the last step has length 0 by the consistency check
    for t, length in steps:
        if length > max_len:
            max_len = length
            busiest = t
    span = float(horizon) or 1.0
    return TimelineSummary(
        horizon=float(horizon),
        max_queue_length=max_len,
        mean_queue_length=area / span,
        total_queue_time=area,
        busiest_instant=float(busiest),
        n_events=len(result.trace),
    )
