"""Online cluster simulation: arrivals, reservations, pluggable policies.

Drives :class:`~repro.simulation.cluster.ClusterState` with the event
engine to emulate a batch system front-end: jobs arrive at their release
times, the policy decides what to start at every state change, and the
result is an ordinary verified :class:`~repro.core.schedule.Schedule`
plus an event trace.

Policies (Section 2.2's spectrum, online versions):

* ``"fcfs"`` — start queue heads only, strictly in order;
* ``"easy"`` — heads plus backfills that do not delay the head's
  earliest start;
* ``"conservative"`` — every queued job holds a tentative reservation,
  re-planned on arrival events; a job starts when the clock reaches its
  planned start;
* ``"greedy"`` — start anything that fits now, in queue order: the
  online face of LSRC / most-aggressive backfilling.

For offline instances (all releases 0) ``"greedy"`` reproduces the
offline LSRC schedule exactly — an integration test asserts this.

Policies are public, name-addressable functions registered in
:data:`POLICIES` (a shared :class:`~repro.core.registry.Registry`), so
the experiment layer (:mod:`repro.run`) and the CLI address them by name
(``"online:easy"``) and third-party policies join via
:func:`register_policy`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from ..core.instance import ReservationInstance, as_reservation_instance
from ..core.registry import Registry
from ..core.schedule import Schedule
from ..core.timebase import check_timebase_policy, timebase_for
from ..errors import SchedulingError
from ..workloads.uncertainty import resolve_uncertainty
from .cluster import ClusterState, RunningJob
from .engine import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One line of the simulation log."""

    time: object
    kind: str       # "arrive" | "start" | "finish"
    job_id: object
    queue_length: int


@dataclass
class SimulationResult:
    """Outcome of an online run."""

    schedule: Schedule
    trace: List[TraceEvent]
    policy: str

    @property
    def makespan(self):
        return self.schedule.makespan


PolicyFn = Callable[[ClusterState, object], List]
# A policy inspects the cluster at `now` and returns the jobs to start now.

#: Online policy registry: name -> :data:`PolicyFn`.  Mapping-compatible
#: with the plain dict it replaced (``in``, ``[]``, sorted iteration).
POLICIES: Registry[PolicyFn] = Registry(
    "policy", plural="policies", error=SchedulingError
)


def register_policy(name: str, policy: Optional[PolicyFn] = None, *,
                    overwrite: Optional[bool] = None):
    """Register an online policy under ``name`` (usable as decorator)."""
    return POLICIES.register(name, policy, overwrite=overwrite)


def get_policy(name: str) -> PolicyFn:
    """The policy registered under ``name`` (loud error otherwise)."""
    return POLICIES.get(name)


def available_policies() -> List[str]:
    """Sorted names of all registered online policies."""
    return POLICIES.names()


@register_policy("fcfs", overwrite=True)
def policy_fcfs(state: ClusterState, now) -> List:
    started = []
    for job in state.queue_in_order():
        if state.can_start_now(job, now):
            started.append(job)
            state.start_job(job, now)
        else:
            break  # the head blocks everyone behind it
    return started


@register_policy("greedy", overwrite=True)
def policy_greedy(state: ClusterState, now) -> List:
    started = []
    for job in state.queue_in_order():
        if state.can_start_now(job, now):
            started.append(job)
            state.start_job(job, now)
    return started


@register_policy("easy", overwrite=True)
def policy_easy(state: ClusterState, now) -> List:
    started = []
    # phase 1: heads
    while state.queue:
        head = state.queue_in_order()[0]
        if not state.can_start_now(head, now):
            break
        started.append(head)
        state.start_job(head, now)
    if not state.queue:
        return started
    # phase 2: shadow the head, backfill the rest
    head = state.queue_in_order()[0]
    s_head = state.earliest_start(head, now)
    if s_head is None:
        raise SchedulingError(f"job {head.id!r} can never start")
    state.profile.reserve(s_head, head.p, head.q)
    try:
        for job in state.queue_in_order()[1:]:
            if state.can_start_now(job, now):
                started.append(job)
                state.start_job(job, now)
    finally:
        state.profile.add(s_head, head.p, head.q)
    return started


@register_policy("conservative", overwrite=True)
def policy_conservative(state: ClusterState, now) -> List:
    # re-plan every queued job in order on a scratch copy, then start the
    # ones whose planned start is now
    plan: Dict[object, object] = {}
    scratch = state.profile.copy()
    for job in state.queue_in_order():
        s = scratch.earliest_fit(job.q, job.p, after=now)
        if s is None:
            raise SchedulingError(f"job {job.id!r} can never start")
        scratch.reserve(s, job.p, job.q)
        plan[job.id] = s
    started = []
    for job in state.queue_in_order():
        if plan[job.id] == now:
            started.append(job)
            state.start_job(job, now)
    return started


class OnlineSimulation:
    """Event-driven online run of a policy over an instance.

    The decision pass runs after every arrival and completion, and at
    every availability-profile breakpoint (a reservation ending can make a
    queued job startable).

    ``timebase`` selects the :mod:`repro.core.timebase` fast path: under
    ``"auto"`` (default) an exactly-normalisable instance is simulated on
    its integer twin — every event-queue comparison and profile op on
    machine ints — and the schedule *and* trace are denormalised back, so
    callers observe identical results either way.

    ``uncertainty`` accepts an estimate-error
    :class:`~repro.workloads.uncertainty.UncertaintyModel` (or spec
    string): the policy keeps planning with each job's estimated ``p``,
    but the job completes at its drawn actual runtime under the
    walltime-kill policy (``min(actual, p)``); the unused tail of the
    estimate is credited back to the profile at the completion instant,
    and the returned schedule is built over the *actualized* jobs so it
    verifies against what actually ran.  Failures, reservation no-shows
    and grace extensions need the calendar engine's requeue/wake-up
    machinery and are loudly rejected here — they run through
    :class:`~repro.simulation.scheduler_core.SchedulerCore` and the
    replay engine.
    """

    def __init__(self, instance, policy: str = "greedy", profile_backend=None,
                 timebase: str = "auto", uncertainty=None):
        self.instance: ReservationInstance = as_reservation_instance(instance)
        self.policy_name = policy
        self._policy = POLICIES.get(policy)
        self.profile_backend = profile_backend
        self.timebase = check_timebase_policy(timebase)
        model = resolve_uncertainty(uncertainty)
        if model is not None and model.is_exact:
            model = None  # the degenerate model IS the certain world
        if model is not None:
            unsupported = []
            if model.failure_rate > 0.0:
                unsupported.append(f"failure_rate={model.failure_rate:g}")
            if model.no_show_rate > 0.0:
                unsupported.append(f"no_show_rate={model.no_show_rate:g}")
            if model.overrun != "kill":
                unsupported.append(f"overrun={model.overrun}")
            if unsupported:
                raise SchedulingError(
                    "online simulation supports estimate-error models under "
                    f"the kill policy only ({', '.join(unsupported)} "
                    "requested); failures, no-shows and grace extensions run "
                    "through the replay engine / SchedulerCore"
                )
        self.uncertainty = model

    def run(self) -> SimulationResult:
        if self.uncertainty is not None:
            # Uncertain runs pin the native timebase: actual-runtime
            # draws are functions of each job's own estimate, so the
            # normalised twin would draw from rescaled estimates.
            return self._run_on(self.instance)
        tb = timebase_for(self.instance, self.timebase)
        if tb is not None:
            twin = tb.normalize_instance(self.instance)
            if twin is not self.instance:
                result = self._run_on(twin)
                return SimulationResult(
                    schedule=Schedule(
                        self.instance,
                        tb.denormalize_starts(result.schedule.starts),
                        algorithm=result.schedule.algorithm,
                    ),
                    trace=[
                        replace(ev, time=tb.denormalize(ev.time))
                        for ev in result.trace
                    ],
                    policy=result.policy,
                )
        return self._run_on(self.instance)

    def _run_on(self, instance: ReservationInstance) -> SimulationResult:
        state = ClusterState(instance, self.profile_backend)
        sim = Simulator()
        trace: List[TraceEvent] = []
        model = self.uncertainty
        # Effective runtime per job under the kill policy: min(actual,
        # estimate).  Drawn up front (fate, not knowledge): the policy
        # never sees these — it plans with estimates, and capacity frees
        # only at the completion instant itself.
        effective: Dict[object, object] = {}
        if model is not None:
            for job in instance.jobs:
                actual, _ = model.draw(job.id, job.p, 0)
                effective[job.id] = actual if actual < job.p else job.p

        def decision_pass(s: Simulator) -> None:
            started = self._policy(state, s.now)
            for job in started:
                trace.append(
                    TraceEvent(s.now, "start", job.id, len(state.queue))
                )
                end = s.now + (
                    job.p if model is None else effective[job.id]
                )

                def make_finisher(job_id, end_time):
                    def finish(s2: Simulator) -> None:
                        if model is None:
                            state.complete_job(job_id, s2.now)
                        else:
                            self._complete_actual(state, job_id, s2.now)
                        trace.append(
                            TraceEvent(
                                s2.now, "finish", job_id, len(state.queue)
                            )
                        )

                    return finish

                sim.schedule_at(
                    end,
                    make_finisher(job.id, end),
                    priority=Simulator.PRIO_COMPLETION,
                    label=f"finish {job.id}",
                )
                # completions trigger a fresh decision pass
                sim.schedule_at(
                    end,
                    decision_pass,
                    priority=Simulator.PRIO_DECISION,
                    label="decide",
                )

        def make_arrival(job):
            def arrive(s: Simulator) -> None:
                state.enqueue(job)
                trace.append(
                    TraceEvent(s.now, "arrive", job.id, len(state.queue))
                )

            return arrive

        # Tie-break simultaneous arrivals by instance position so the
        # greedy policy's queue order equals offline LSRC's list order.
        position = {job.id: i for i, job in enumerate(instance.jobs)}
        for job in sorted(
            instance.jobs, key=lambda j: (j.release, position[j.id])
        ):
            sim.schedule_at(
                job.release,
                make_arrival(job),
                priority=Simulator.PRIO_ARRIVAL,
                label=f"arrive {job.id}",
            )
            sim.schedule_at(
                job.release,
                decision_pass,
                priority=Simulator.PRIO_DECISION,
                label="decide",
            )
        # availability changes at profile breakpoints can unblock jobs
        for t in instance.availability_profile().breakpoints:
            if t > 0:
                sim.schedule_at(
                    t, decision_pass, priority=Simulator.PRIO_DECISION,
                    label="decide@breakpoint",
                )

        sim.run()
        # Jobs can remain queued when every decision point has passed but
        # capacity frees only at future completion times of long jobs --
        # completions schedule passes, so after run() the queue must drain
        # unless something never fits at all.
        if not state.all_done:
            raise SchedulingError(
                f"simulation ended with {len(state.queue)} queued and "
                f"{len(state.running)} running job(s)"
            )
        if model is not None:
            # The schedule must verify against what actually ran: early
            # exits open holes later starts legitimately used, so the
            # estimated instance would reject them.
            instance = replace(
                instance,
                jobs=tuple(
                    state.finished[job.id].job for job in instance.jobs
                ),
            )
        schedule = Schedule(
            instance, state.starts(), algorithm=f"online-{self.policy_name}"
        )
        return SimulationResult(
            schedule=schedule, trace=trace, policy=self.policy_name
        )

    @staticmethod
    def _complete_actual(state: ClusterState, job_id, now) -> None:
        """Finish a job at its *actual* completion instant: credit the
        unused tail of the estimate back to the profile and record the
        actualized placement."""
        placed = state.running.pop(job_id, None)
        if placed is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        eff = now - placed.start
        tail = placed.job.p - eff
        if tail > 0:
            state.profile.add(now, tail, placed.job.q)
        state.finished[job_id] = RunningJob(
            job=replace(placed.job, p=eff), start=placed.start
        )


def simulate(instance, policy: str = "greedy", profile_backend=None,
             timebase: str = "auto", uncertainty=None) -> SimulationResult:
    """Convenience wrapper: run one online simulation."""
    return OnlineSimulation(
        instance, policy, profile_backend, timebase, uncertainty=uncertainty
    ).run()
