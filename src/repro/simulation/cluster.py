"""Simulated cluster state for the online scheduler.

Tracks, during an online simulation, exactly what a batch-system resource
manager tracks:

* the availability profile (machine minus reservations minus *running and
  committed* jobs);
* the set of running jobs with their completion times;
* the queue of arrived-but-not-started jobs in submission order.

Separating this state object from the event loop keeps the scheduling
*policies* (in :mod:`repro.simulation.online_sim`) small and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.instance import ReservationInstance
from ..core.job import Job
from ..core.profiles import ProfileBackend
from ..errors import SchedulingError


@dataclass
class RunningJob:
    """A started job and its immutable placement."""

    job: Job
    start: object

    @property
    def end(self):
        return self.start + self.job.p


class ClusterState:
    """Mutable cluster bookkeeping for one online simulation run."""

    def __init__(self, instance: ReservationInstance, profile_backend=None):
        self.instance = instance
        #: capacity left after reservations and committed jobs
        self.profile: ProfileBackend = instance.availability_profile(
            profile_backend
        )
        self.queue: List[Job] = []
        self.running: Dict[object, RunningJob] = {}
        self.finished: Dict[object, RunningJob] = {}

    # -- queue management -------------------------------------------------
    def enqueue(self, job: Job) -> None:
        """A job arrives (release time reached)."""
        self.queue.append(job)

    def queue_in_order(self) -> List[Job]:
        """Arrived jobs in submission (enqueue) order."""
        return list(self.queue)

    # -- placement --------------------------------------------------------
    def can_start_now(self, job: Job, now) -> bool:
        """Full-duration fit test at the current instant."""
        return self.profile.fits(job.q, now, job.p)

    def start_job(self, job: Job, now) -> RunningJob:
        """Commit ``job`` to start at ``now``; updates profile and queue."""
        if not self.can_start_now(job, now):
            raise SchedulingError(
                f"job {job.id!r} does not fit at time {now}"
            )
        self.profile.reserve(now, job.p, job.q)
        placed = RunningJob(job=job, start=now)
        self.running[job.id] = placed
        self.queue = [j for j in self.queue if j.id != job.id]
        return placed

    def complete_job(self, job_id, now) -> None:
        """Mark a running job finished (its profile share was pre-booked
        for exactly its duration, so no capacity update is needed)."""
        placed = self.running.pop(job_id, None)
        if placed is None:
            raise SchedulingError(f"job {job_id!r} is not running")
        if placed.end != now:
            raise SchedulingError(
                f"job {job_id!r} completes at {placed.end}, not {now}"
            )
        self.finished[job_id] = placed

    # -- introspection ------------------------------------------------------
    def earliest_start(self, job: Job, now):
        """Earliest feasible start for ``job`` given current commitments."""
        return self.profile.earliest_fit(job.q, job.p, after=now)

    @property
    def all_done(self) -> bool:
        return not self.queue and not self.running

    def starts(self) -> Dict:
        """Start times of every placed job so far."""
        out = {jid: rj.start for jid, rj in self.finished.items()}
        out.update({jid: rj.start for jid, rj in self.running.items()})
        return out
