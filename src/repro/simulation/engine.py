"""A minimal discrete-event simulation engine.

The online experiments need an event loop (job arrivals, completions,
reservation boundaries).  External simulators (simpy, SimGrid, Batsim)
are out of scope for a from-scratch reproduction, so this module provides
the classical calendar-queue engine: a priority queue of timestamped
events with deterministic FIFO tie-breaking, a clock, and a run loop.

The engine is deliberately generic — callbacks receive the simulator so
they can schedule further events — and is reused by the online cluster
simulation in :mod:`repro.simulation.online_sim`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import ReproError


class SimulationError(ReproError):
    """The event loop was driven incorrectly (time travel, bad handler)."""


@dataclass(order=True)
class _QueuedEvent:
    time: Any
    priority: int
    seq: int
    action: Callable[["Simulator"], None] = field(compare=False)
    label: str = field(compare=False, default="")


class Simulator:
    """Deterministic discrete-event loop.

    Events at equal times run in (priority, insertion) order; lower
    priority values run first.  This matters for correctness of the online
    scheduler: completions (freeing processors) must be processed before
    the decision pass at the same instant, so completions use priority 0,
    arrivals priority 1 and decision passes priority 2.
    """

    #: conventional priorities
    PRIO_COMPLETION = 0
    PRIO_ARRIVAL = 1
    PRIO_DECISION = 2

    def __init__(self, start_time=0):
        self.now = start_time
        self._queue: List[_QueuedEvent] = []
        self._counter = itertools.count()
        self._running = False
        #: number of events processed so far
        self.processed = 0

    def schedule_at(
        self,
        time,
        action: Callable[["Simulator"], None],
        priority: int = 2,
        label: str = "",
    ) -> None:
        """Enqueue ``action`` to run at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(
            self._queue,
            _QueuedEvent(
                time=time,
                priority=priority,
                seq=next(self._counter),
                action=action,
                label=label,
            ),
        )

    def schedule_in(
        self,
        delay,
        action: Callable[["Simulator"], None],
        priority: int = 2,
        label: str = "",
    ) -> None:
        """Enqueue ``action`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, action, priority=priority, label=label)

    @property
    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    def peek_time(self) -> Optional[Any]:
        """Time of the next event, or ``None`` when the queue is empty."""
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event; returns False when none is queued."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.now = event.time
        self.processed += 1
        event.action(self)
        return True

    def run(self, until=None, max_events: int = 10_000_000) -> None:
        """Drain the queue (optionally stopping after time ``until``).

        ``max_events`` guards against runaway self-rescheduling handlers.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            count = 0
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    break
                count += 1
                if count > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; handler loop?"
                    )
                self.step()
        finally:
            self._running = False
