"""The scheduler engine core: one event loop, many drivers.

:class:`SchedulerCore` is the event-application half of the replay
engine, promoted to a supported embedding API.  It owns the live
availability profile, the arrived-but-unstarted queue, the in-flight
calendar and the window/total accumulators, and exposes an explicit
four-verb surface:

``submit(job)``
    Stage an arrival.  Releases must be non-decreasing and at or after
    the advanced horizon — the core never time-travels.
``advance_to(t)``
    Apply every pending event (completions, staged arrivals, one
    policy decision pass, profile compaction) with event time ``<= t``.
``cancel(job_id)``
    Withdraw a staged or queued job (a live-service verb batch replay
    never uses; running jobs cannot be cancelled).
``drain()``
    Declare the arrival stream finished and run the event loop to
    quiescence, emitting every remaining window row.

:class:`~repro.simulation.replay.ReplayEngine` is now a thin
trace-driving client of this class (its generic loop groups an SWF
iterator's arrivals by release time and feeds them through
``submit``/``advance_to``), and ``repro serve`` is another driver
feeding the same core from sockets.  Both observe the exact event
ordering the replay module documents — completions < arrivals < one
decision pass < prune at each distinct time — so rows, totals and
checkpoints are byte-identical whichever driver is in front.

Embedders should program against this class (re-exported as
``repro.simulation.SchedulerCore``) rather than reaching into
``ReplayEngine._run_fused``/``_run_batched``/``_run_generic``; those
fused twins are engine internals, deprecated as extension points and
guarded by the ``RPL503`` lint rule.

State beyond the :class:`~repro.simulation.replay.ReplayCheckpoint`
(staged future arrivals, the cancel count, the advanced horizon) is
exported by :meth:`SchedulerCore.extra_state` so a live service can
snapshot and restore the *whole* core, not just the replay-visible
part.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.job import Job
from ..core.metrics import (
    BSLD_TAU,
    DEFAULT_SLOWDOWN_THRESHOLD,
    bounded_slowdown,
)
from ..core.profiles import BackendSpec, convert_profile, make_profile
from ..devtools.failpoints import fire
from ..errors import CapacityError, SchedulingError
from ..workloads.uncertainty import resolve_uncertainty
from .online_sim import POLICIES
from .replay import (
    _CKPT_COUNTERS,
    _note_demotion,
    _WindowAcc,
    DEFAULT_PRUNE_INTERVAL,
    DEFAULT_WINDOW,
    ReplayCheckpoint,
)

__all__ = ["SchedulerCore"]


class SchedulerCore:
    """Live scheduling state plus the event-application loop.

    Parameters mirror :class:`~repro.simulation.replay.ReplayEngine`
    (same names, same validation, same defaults) minus the dispatch
    knobs (``fused_policies``/``batch``) that select between engine
    loops — the core *is* the reference loop.

    ``decide`` optionally injects the policy function directly (an
    embedding convenience, and how the engine pins the function it
    resolved at construction time); by default the name is looked up in
    :data:`~repro.simulation.online_sim.POLICIES`.

    ``resume`` rehydrates a :class:`ReplayCheckpoint` — the calendar
    completion queue is required then, as for epoch-sharded replay.
    """

    def __init__(
        self,
        m: int,
        policy: str = "easy",
        *,
        profile_backend: BackendSpec = "auto",
        window: int = DEFAULT_WINDOW,
        store=None,
        prune_interval: int = DEFAULT_PRUNE_INTERVAL,
        bsld_tau=BSLD_TAU,
        record_starts: bool = False,
        completion_queue: str = "calendar",
        decide: Optional[Callable] = None,
        resume: Optional[ReplayCheckpoint] = None,
        uncertainty=None,
    ):
        from .replay import ReplayState  # circular-at-import-time guard

        if m < 1:
            raise SchedulingError(f"machine size must be >= 1, got {m!r}")
        if window < 0:
            raise SchedulingError(f"window must be >= 0, got {window!r}")
        if prune_interval < 1:
            raise SchedulingError("prune_interval must be >= 1")
        if completion_queue not in ("calendar", "heap"):
            raise SchedulingError(
                f"completion_queue must be 'calendar' or 'heap', "
                f"got {completion_queue!r}"
            )
        if resume is not None and completion_queue != "calendar":
            raise SchedulingError(
                "epoch-sharded replay requires completion_queue='calendar'"
            )
        if resume is not None and (resume.m, resume.policy, resume.window) != (
            m, policy, window
        ):
            raise SchedulingError(
                f"checkpoint was produced by a different engine config "
                f"(m={resume.m}, policy={resume.policy!r}, "
                f"window={resume.window}); this engine has m={m}, "
                f"policy={policy!r}, window={window}"
            )
        model = resolve_uncertainty(uncertainty)
        if model is not None and model.is_exact:
            # the degenerate model IS the certain world: dropping it here
            # keeps every downstream byte (rows, checkpoints, gauges)
            # identical to a run with no model at all
            model = None
        if model is not None and completion_queue != "calendar":
            raise SchedulingError(
                "uncertainty models require completion_queue='calendar' "
                "(requeue and no-show wake-ups ride the calendar buckets)"
            )
        self.uncertainty = model
        resume_u = getattr(resume, "uncertainty", None)
        if resume is not None:
            have = model.spec if model is not None else None
            want = resume_u["spec"] if resume_u is not None else None
            if have != want:
                raise SchedulingError(
                    f"checkpoint was produced under uncertainty model "
                    f"{want!r} but this engine has {have!r}"
                )
        self.m = m
        self.policy_name = policy
        self._decide = decide if decide is not None else POLICIES.get(policy)
        self.window = window
        self.prune_interval = prune_interval
        self.bsld_tau = bsld_tau
        self.use_heap = completion_queue == "heap"
        if store is not None and not hasattr(store, "append"):
            from ..run.store import JsonlStore

            store = JsonlStore(store)
        self.store = store

        backend: BackendSpec = profile_backend
        self._auto_backend = backend == "auto"
        self.demoted = resume is not None and resume.demoted
        self.demoted_at = resume.demoted_at if resume is not None else None
        if self._auto_backend:
            backend = "list" if self.demoted else "array"
        self.state = ReplayState(m, backend)
        # `auto` watches for non-integral job times and demotes the live
        # profile to the exact list backend before they reach the int64
        # columns; an explicit backend choice is honoured (and loud).
        self._watch_times = self._auto_backend and getattr(
            self.state.profile, "CHEAP_PRUNE", False
        )
        self._cheap_prune = getattr(self.state.profile, "CHEAP_PRUNE", False)

        self.heap: List[Tuple] = []     # heap mode: (end time, seq, job id)
        self.buckets: Dict = {}         # calendar mode: end time -> [jobs]
        self.time_heap: List = []       # calendar mode: distinct end times
        self.seq = 0
        self.now = None                 # last processed event time
        self._resume_clock = resume.clock if resume is not None else 0
        self.horizon = self._resume_clock  # furthest advance_to target

        self.windows: Dict[int, _WindowAcc] = {}
        self.window_of: Dict[object, int] = {}   # live jobs only
        self.emitted: List[Dict] = []
        self.next_emit = 0
        self.starts: Optional[Dict] = {} if record_starts else None

        self._staged: "deque[Job]" = deque()  # submitted, release in future
        self._staged_ids = set()
        self._eof = False
        self.cancelled = 0  # live-service gauge; not a checkpoint counter
        self.unstaged = 0   # staged reservations withdrawn before arrival

        # uncertainty state (empty and inert when no model is active)
        self._fates: Dict = {}          # job id -> (kind, boundary time)
        self._attempts: Dict = {}       # job id -> failed attempts so far
        self._requeue_ready: Dict = {}  # re-entry time -> [jobs]
        self._no_shows_at: Dict = {}    # release time -> [(p, q) holes]
        self._resv_seq = 0              # reservation-acceptance counter
        self.requeues = 0
        self.kills = 0
        self.no_shows = 0
        self.early_exits = 0
        self.n_starts = 0    # final (completing) attempts measured
        self.n_bsld_le = 0   # ... of which bsld <= the guarantee threshold

        # totals (names match _CKPT_COUNTERS where checkpointed)
        self.arrived = 0
        self.completed = 0
        self.events = 0
        self.total_work = 0
        self.pmax = 0
        self.latest_lb_finish = 0
        self.last_completion = 0
        self.sum_wait = 0
        self.max_wait = 0
        self.sum_slowdown = 0
        self.sum_bsld = 0
        self.max_bsld = 0.0  # repro: noqa RPL201 -- bsld gauge is float by definition
        self.peak_queue = 0
        self.peak_running = 0
        self.peak_segments = 1
        self.since_prune = 0
        self.pruned_to = 0   # completions already compacted behind

        if resume is not None:
            self.state.profile = make_profile(
                list(resume.profile_times), list(resume.profile_caps), backend
            )
            for job in resume.queue:
                self.state.queue[job.id] = job
            for end, bucket in resume.buckets:
                self.buckets[end] = list(bucket)
                self.time_heap.append(end)
                for job in bucket:
                    self.state.running[job.id] = job
            heapify(self.time_heap)
            self.windows = {
                w: _WindowAcc.from_state(s) for w, s in resume.windows.items()
            }
            self.window_of = dict(resume.window_of)
            self.next_emit = resume.next_emit
            c = resume.counters
            (self.arrived, self.completed, self.events, self.total_work,
             self.pmax, self.latest_lb_finish, self.last_completion,
             self.sum_wait, self.max_wait, self.sum_slowdown, self.sum_bsld,
             self.max_bsld, self.peak_queue, _running_count,
             self.peak_running, self.peak_segments, self.since_prune,
             self.pruned_to) = (c[name] for name in _CKPT_COUNTERS)
            if resume_u is not None:
                self._fates = {k: tuple(v) for k, v in resume_u["fates"]}
                self._attempts = dict(resume_u["attempts"])
                self._requeue_ready = {
                    t: list(jobs) for t, jobs in resume_u["requeue_ready"]
                }
                self._no_shows_at = {
                    t: [tuple(h) for h in holes]
                    for t, holes in resume_u["no_shows_at"]
                }
                self._resv_seq = resume_u["resv_seq"]
                (self.requeues, self.kills, self.no_shows, self.early_exits,
                 self.n_starts, self.n_bsld_le) = resume_u["counters"]

    # -- the four verbs ---------------------------------------------------
    def submit(self, job: Job) -> None:
        """Stage one arrival (applied when ``advance_to`` reaches its
        release).  Releases are validated non-decreasing and at or
        after the horizon; ids must be unique among live jobs."""
        if self._eof:
            raise SchedulingError(
                f"job {job.id!r} submitted after drain: the stream has ended"
            )
        if self._staged:
            floor = self._staged[-1].release
        else:
            floor = self.horizon
        if job.release < floor:
            raise SchedulingError(
                f"job {job.id!r} arrives out of order: release "
                f"{job.release!r} is before the clock at {floor!r}"
            )
        if (
            job.id in self._staged_ids
            or job.id in self.state.queue
            or job.id in self.state.running
        ):
            raise SchedulingError(f"job id {job.id!r} is already live")
        self._staged.append(job)
        self._staged_ids.add(job.id)

    def cancel(self, job_id) -> str:
        """Withdraw ``job_id``; returns where it was found (``"staged"``
        or ``"queued"``).  Running or unknown jobs raise
        :class:`~repro.errors.SchedulingError` — a started reservation
        is committed capacity."""
        if job_id in self._staged_ids:
            self._staged = deque(j for j in self._staged if j.id != job_id)
            self._staged_ids.discard(job_id)
            self.unstaged += 1
            return "staged"
        if job_id in self.state.queue:
            del self.state.queue[job_id]
            self.cancelled += 1
            w = self.window_of.pop(job_id, None)
            if w is not None:
                acc = self.windows[w]
                acc.completed += 1
                t = self.horizon
                if acc.last_completion is None or t > acc.last_completion:
                    acc.last_completion = t
                if acc.done:
                    self._emit_done_windows()
            return "queued"
        if job_id in self.state.running:
            raise SchedulingError(
                f"job {job_id!r} is running and cannot be cancelled"
            )
        raise SchedulingError(f"job {job_id!r} is not a live job")

    def reserve(self, start, p, q) -> None:
        """Carve ``q`` processors out of ``[start, start + p)`` — the
        paper's reservation shape, committed directly against the live
        availability profile (reservations are capacity holes, not
        jobs: no queue entry, no metrics).  An empty calendar bucket is
        planted at ``start + p`` so a decision pass wakes up when the
        hole opens — without it an otherwise-idle machine would sleep
        through the freed capacity and :meth:`drain` would mis-report
        a stall."""
        if self.use_heap:
            raise SchedulingError(
                "reservations require completion_queue='calendar'"
            )
        if q < 1 or q > self.m:
            raise SchedulingError(
                f"reservation requires {q!r} processors but the machine "
                f"has {self.m}"
            )
        if p <= 0:
            raise SchedulingError(
                f"reservation duration must be positive, got {p!r}"
            )
        if start < self.horizon:
            raise SchedulingError(
                f"reservation at {start!r} is in the past: the clock is "
                f"already at {self.horizon!r}"
            )
        try:
            self.state.profile.reserve(start, p, q)
        except CapacityError:
            raise SchedulingError(
                f"reservation of {q} processors at {start!r} for {p!r} "
                "does not fit"
            ) from None
        end = start + p
        if (self.now is None or end > self.now) and end not in self.buckets:
            self.buckets[end] = []
            heappush(self.time_heap, end)
        model = self.uncertainty
        if model is not None and model.no_show_rate > 0.0:
            seq = self._resv_seq
            self._resv_seq += 1
            if model.is_no_show(seq):
                if self.now is not None and start <= self.now:
                    # committed at the current instant and already a
                    # no-show: release the hole immediately
                    self.state.profile.add(start, p, q)
                    self.no_shows += 1
                    self.events += 1
                else:
                    # release the hole at its start, with a wake bucket
                    # so an idle machine notices the freed capacity
                    self._no_shows_at.setdefault(start, []).append((p, q))
                    if start not in self.buckets:
                        self.buckets[start] = []
                        heappush(self.time_heap, start)

    def advance_to(self, t) -> None:
        """Apply every pending event with event time ``<= t``."""
        if self.horizon is not None and t < self.horizon:
            raise SchedulingError(
                f"cannot advance to {t!r}: the clock is already at "
                f"{self.horizon!r}"
            )
        self._run_events(t)
        self.horizon = t

    def drain(self) -> None:
        """End the arrival stream and run the event loop to quiescence.

        Raises the replay stall error when queued jobs can never start
        (wider than the machine after a demotion, for instance); emits
        every remaining window row."""
        self._eof = True
        self._run_events(None)
        if self.state.queue:
            raise SchedulingError(
                f"replay stalled with {len(self.state.queue)} queued job(s) "
                "that can never start"
            )
        if self.window:
            self._emit_done_windows(force=True)
        segments = self.state.profile.segment_count()
        if segments > self.peak_segments:
            self.peak_segments = segments

    # -- snapshots ---------------------------------------------------------
    def checkpoint(self) -> ReplayCheckpoint:
        """Frontier state as a :class:`ReplayCheckpoint` (the epoch-relay
        and journal-snapshot format; calendar queue only)."""
        if self.use_heap:
            raise SchedulingError(
                "epoch-sharded replay requires completion_queue='calendar'"
            )
        times_l, caps_l = self.state.profile.as_lists()
        return ReplayCheckpoint(
            m=self.m, policy=self.policy_name, window=self.window,
            clock=self.now if self.now is not None else self._resume_clock,
            profile_times=times_l, profile_caps=caps_l,
            demoted=self.demoted, demoted_at=self.demoted_at,
            queue=list(self.state.queue.values()),
            buckets=sorted(self.buckets.items()),
            window_of=dict(self.window_of),
            windows={w: acc.state() for w, acc in self.windows.items()},
            next_emit=self.next_emit,
            counters=dict(zip(_CKPT_COUNTERS, (
                self.arrived, self.completed, self.events, self.total_work,
                self.pmax, self.latest_lb_finish, self.last_completion,
                self.sum_wait, self.max_wait, self.sum_slowdown,
                self.sum_bsld, self.max_bsld, self.peak_queue,
                len(self.state.running), self.peak_running,
                self.peak_segments, self.since_prune, self.pruned_to,
            ))),
            uncertainty=self._uncertainty_state(),
        )

    def _uncertainty_state(self) -> Optional[Dict]:
        """Uncertainty frontier state for :meth:`checkpoint` (``None``
        when no model is active, so certain-world checkpoints stay
        byte-identical to pre-uncertainty ones)."""
        model = self.uncertainty
        if model is None:
            return None
        return {
            "spec": model.spec,
            "fates": list(self._fates.items()),
            "attempts": list(self._attempts.items()),
            "requeue_ready": [
                (t, list(jobs))
                for t, jobs in sorted(self._requeue_ready.items())
            ],
            "no_shows_at": [
                (t, list(holes))
                for t, holes in sorted(self._no_shows_at.items())
            ],
            "resv_seq": self._resv_seq,
            "counters": (self.requeues, self.kills, self.no_shows,
                         self.early_exits, self.n_starts, self.n_bsld_le),
        }

    def extra_state(self) -> Dict:
        """Live-service state a :class:`ReplayCheckpoint` does not carry
        (staged future arrivals, cancel count, horizon, eof flag)."""
        return {
            "staged": list(self._staged),
            "cancelled": self.cancelled,
            "unstaged": self.unstaged,
            "horizon": self.horizon,
            "eof": self._eof,
        }

    def restore_extra_state(self, extras: Dict) -> None:
        """Re-attach :meth:`extra_state` output after a ``resume=``
        construction (staged jobs bypass re-validation: they were
        validated when first submitted)."""
        self._staged = deque(extras["staged"])
        self._staged_ids = {job.id for job in self._staged}
        self.cancelled = extras["cancelled"]
        self.unstaged = extras.get("unstaged", 0)
        self.horizon = extras["horizon"]
        self._eof = extras["eof"]

    def status(self) -> Dict:
        """Cheap JSON-safe live gauges (the serve ``/v1/status`` body)."""
        return {
            "clock": self.now,
            "horizon": self.horizon,
            "arrived": self.arrived,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "unstaged": self.unstaged,
            "queued": len(self.state.queue),
            "running": len(self.state.running),
            "staged": len(self._staged),
            "events": self.events,
            "windows_emitted": self.next_emit,
            "requeues": self.requeues,
            "kills": self.kills,
            "no_shows": self.no_shows,
            "early_exits": self.early_exits,
            "eof": self._eof,
        }

    def describe_state(self) -> Dict:
        """The full core state as one canonical JSON-safe dict.

        This is the byte-compare surface of the serve crash-recovery
        tests: a recovered daemon must report exactly the dict an
        uninterrupted one does."""
        def plain(jobs: Iterable[Job]) -> List[Dict]:
            return [
                {"id": j.id, "p": j.p, "q": j.q,
                 "release": j.release, "name": j.name}
                for j in jobs
            ]

        ck = self.checkpoint()
        return {
            "m": ck.m,
            "policy": ck.policy,
            "window": ck.window,
            "clock": ck.clock,
            "horizon": self.horizon,
            "eof": self._eof,
            "cancelled": self.cancelled,
            "unstaged": self.unstaged,
            "demoted": ck.demoted,
            "demoted_at": ck.demoted_at,
            "profile_times": list(ck.profile_times),
            "profile_caps": list(ck.profile_caps),
            "staged": plain(self._staged),
            "queue": plain(ck.queue),
            "buckets": [[end, plain(bucket)] for end, bucket in ck.buckets],
            "window_of": {str(k): v for k, v in sorted(ck.window_of.items())},
            "windows": {str(w): s for w, s in sorted(ck.windows.items())},
            "next_emit": ck.next_emit,
            "counters": ck.counters,
            "uncertainty": None if self.uncertainty is None else {
                "spec": self.uncertainty.spec,
                "fates": {
                    str(k): list(v)
                    for k, v in sorted(
                        self._fates.items(), key=lambda kv: str(kv[0])
                    )
                },
                "attempts": {
                    str(k): v
                    for k, v in sorted(
                        self._attempts.items(), key=lambda kv: str(kv[0])
                    )
                },
                "requeue_ready": [
                    [t, plain(jobs)]
                    for t, jobs in sorted(self._requeue_ready.items())
                ],
                "no_shows_at": [
                    [t, [list(hole) for hole in holes]]
                    for t, holes in sorted(self._no_shows_at.items())
                ],
                "resv_seq": self._resv_seq,
                "counters": {
                    "requeues": self.requeues,
                    "kills": self.kills,
                    "no_shows": self.no_shows,
                    "early_exits": self.early_exits,
                    "n_starts": self.n_starts,
                    "n_bsld_le": self.n_bsld_le,
                },
            },
        }

    def totals_kwargs(self) -> Dict:
        """Keyword arguments for the engine's ``_finalize`` totals row."""
        kwargs = self._plain_totals_kwargs()
        if self.uncertainty is not None:
            n = self.n_starts
            kwargs["uncertainty_totals"] = {
                "uncertainty": self.uncertainty.spec,
                # repro: noqa-begin RPL2xx -- the guarantee level is a
                # probability, a float by definition
                "p_slowdown_le": (self.n_bsld_le / n) if n else 1.0,
                # repro: noqa-end RPL2xx
                "requeues": self.requeues,
                "kills": self.kills,
                "no_shows": self.no_shows,
                "early_exits": self.early_exits,
            }
        return kwargs

    def _plain_totals_kwargs(self) -> Dict:
        return {
            "arrived": self.arrived, "events": self.events,
            "total_work": self.total_work, "pmax": self.pmax,
            "latest_lb_finish": self.latest_lb_finish,
            "last_completion": self.last_completion,
            "sum_wait": self.sum_wait, "max_wait": self.max_wait,
            "sum_slowdown": self.sum_slowdown, "sum_bsld": self.sum_bsld,
            "max_bsld": self.max_bsld, "peak_queue": self.peak_queue,
            "peak_running": self.peak_running,
            "peak_segments": self.peak_segments,
            "demoted_at": self.demoted_at,
            "windows_emitted": self.next_emit,
        }

    # -- event loop --------------------------------------------------------
    def _current_window(self, index: int) -> Optional[_WindowAcc]:
        if not self.window:
            return None
        w = index // self.window
        acc = self.windows.get(w)
        if acc is None:
            acc = self.windows[w] = _WindowAcc(w)
            if self.uncertainty is not None:
                # under uncertainty, window rows carry distributional
                # metrics: collect the per-job samples to quantile over
                acc.waits = []
                acc.bslds = []
        return acc

    def _emit_done_windows(self, force: bool = False) -> None:
        windows = self.windows
        while self.next_emit in windows and (
            windows[self.next_emit].done or force
        ):
            acc = windows.pop(self.next_emit)
            if acc.arrived:
                row = acc.row(self.m)
                self.emitted.append(row)
                if self.store is not None:
                    self.store.append(row)
            self.next_emit += 1

    def _run_events(self, limit) -> None:
        """Apply pending events in time order, stopping after the last
        event time ``<= limit`` (``None``: run to quiescence)."""
        staged = self._staged
        while True:
            if self.use_heap:
                t_completion = self.heap[0][0] if self.heap else None
            else:
                t_completion = self.time_heap[0] if self.time_heap else None
            t_arrival = staged[0].release if staged else None
            if t_completion is not None and (
                t_arrival is None or t_completion <= t_arrival
            ):
                now = t_completion
            elif t_arrival is not None:
                now = t_arrival
            else:
                break
            if limit is not None and now > limit:
                break
            self._apply_event(now)

    def _apply_event(self, now) -> None:
        """One event: completions, then arrivals, then one decision
        pass, then profile compaction — the documented ordering."""
        state = self.state
        queue = state.queue
        running = state.running
        windows = self.windows
        window_of = self.window_of
        staged = self._staged

        # 1. completions at `now` free their processors first
        if self.use_heap:
            heap = self.heap
            while heap and heap[0][0] == now:
                _, _, job_id = heappop(heap)
                state.complete_job(job_id)
                self.events += 1
                self.completed += 1
                self.since_prune += 1
                self.last_completion = now
                w = window_of.pop(job_id, None)
                if w is not None:
                    acc = windows[w]
                    acc.completed += 1
                    acc.last_completion = now
                    if acc.done:
                        self._emit_done_windows()
        elif self.time_heap and self.time_heap[0] == now:
            # one bucket holds every job finishing at `now`, in start
            # order — a single heap pop serves them all
            heappop(self.time_heap)
            bucket = self.buckets.pop(now)
            if self.uncertainty is not None and bucket:
                bucket = self._apply_uncertain_completions(now, bucket)
            for job in bucket:
                job_id = job.id
                del running[job_id]
                self.events += 1
                self.completed += 1
                self.since_prune += 1
                self.last_completion = now
                w = window_of.pop(job_id, None)
                if w is not None:
                    acc = windows[w]
                    acc.completed += 1
                    acc.last_completion = now
                    if acc.done:
                        self._emit_done_windows()

        # 1b. uncertainty events at `now`: no-show holes release their
        # capacity, backed-off failed jobs re-enter the queue — both
        # before arrivals, so the decision pass sees the true state
        if self.uncertainty is not None:
            self._apply_uncertainty_events(now)

        # 2. arrivals at `now` join the queue in submission order
        while staged and staged[0].release == now:
            job = staged.popleft()
            self._staged_ids.discard(job.id)
            if self._watch_times and not (
                type(job.p) is int and type(job.release) is int
            ):
                # non-integral trace: demote the live profile to the
                # exact list backend (state converts losslessly)
                state.profile = convert_profile(state.profile, "list")
                self._watch_times = self._cheap_prune = False
                self.demoted = True
                self.demoted_at = _note_demotion(job)
            state.enqueue(job)
            self.events += 1
            acc = self._current_window(self.arrived)
            if acc is not None:
                window_of[job.id] = acc.index
                acc.arrived += 1
                if acc.first_release is None:
                    acc.first_release = job.release
                acc.work += job.area
                if job.p > acc.pmax:
                    acc.pmax = job.p
                finish = job.release + job.p
                if finish > acc.latest_lb_finish:
                    acc.latest_lb_finish = finish
                if acc.arrived == self.window:
                    acc.full = True
            self.arrived += 1
            self.total_work += job.area
            if job.p > self.pmax:
                self.pmax = job.p
            if job.release + job.p > self.latest_lb_finish:
                self.latest_lb_finish = job.release + job.p
        if self._eof and not staged and self.window:
            # the stream ended: the partial trailing window is full
            for acc in windows.values():
                acc.full = True
            self._emit_done_windows()

        if len(queue) > self.peak_queue:
            self.peak_queue = len(queue)

        # 3. one decision pass (policies are pass-idempotent)
        for job in self._decide(state, now) if queue else ():
            self.events += 1
            end = now + job.p
            doomed = False
            if self.uncertainty is not None:
                end, doomed = self._draw_fate(job, now)
            if self.starts is not None:
                # restarted jobs overwrite: the recorded start is the
                # final (completing) attempt's
                self.starts[job.id] = now
            if not doomed:
                # metrics measure each job's final attempt only — a
                # doomed attempt's wait is not the job's wait
                wait = now - job.release
                self.sum_wait += wait
                if wait > self.max_wait:
                    self.max_wait = wait
                # slowdown means are floats (order-noise accepted); the
                # identity-tested totals stay int-exact sums
                self.sum_slowdown += (wait + job.p) / job.p
                bsld = bounded_slowdown(wait, job.p, self.bsld_tau)
                self.sum_bsld += bsld
                if bsld > self.max_bsld:
                    self.max_bsld = bsld
                if self.uncertainty is not None:
                    self.n_starts += 1
                    if bsld <= DEFAULT_SLOWDOWN_THRESHOLD:
                        self.n_bsld_le += 1
                w = window_of.get(job.id)
                if w is not None:
                    acc = windows[w]
                    acc.started += 1
                    acc.sum_wait += wait
                    if wait > acc.max_wait:
                        acc.max_wait = wait
                    acc.sum_bsld += bsld
                    if bsld > acc.max_bsld:
                        acc.max_bsld = bsld
                    if acc.waits is not None:
                        acc.waits.append(wait)
                        acc.bslds.append(bsld)
            if self.use_heap:
                self.seq += 1
                heappush(self.heap, (end, self.seq, job.id))
            else:
                bucket = self.buckets.get(end)
                if bucket is None:
                    self.buckets[end] = [job]
                    heappush(self.time_heap, end)
                else:
                    bucket.append(job)

        if len(running) > self.peak_running:
            self.peak_running = len(running)

        # 4. compact the profile behind the clock (high-water sampled
        # just before pruning: the honest peak — cheap-prune backends
        # compact on every completion event, so the gauge is sampled
        # on a cadence)
        if self._cheap_prune:
            # O(1) prune and O(1) size probe: sample before every
            # compaction, so the peak gauge is exact
            if self.completed != self.pruned_to:
                self.pruned_to = self.completed
                segments = state.profile.segment_count()
                if segments > self.peak_segments:
                    self.peak_segments = segments
                state.profile.prune_before(now)
        elif self.since_prune >= self.prune_interval:
            self.since_prune = 0
            segments = state.profile.segment_count()
            if segments > self.peak_segments:
                self.peak_segments = segments
            state.profile.prune_before(now)

        self.now = now

    # -- uncertainty mechanics ---------------------------------------------
    def _draw_fate(self, job: Job, now):
        """Seal the fate of a starting attempt: ``(event time, doomed)``.

        The scheduler just committed ``[now, now + p)`` for the job; the
        model says what really happens.  The returned event time is when
        the calendar must next look at the job (failure instant, early
        completion, or the estimate boundary for overruns); ``doomed``
        marks attempts that will fail and requeue."""
        model = self.uncertainty
        actual, fail_at = model.draw(
            job.id, job.p, self._attempts.get(job.id, 0)
        )
        est_end = now + job.p
        if fail_at is not None:
            self._fates[job.id] = ("fail", est_end)
            return now + fail_at, True
        if actual < job.p:
            self._fates[job.id] = ("early", est_end)
            return now + actual, False
        if actual > job.p:
            if model.overrun == "kill":
                self._fates[job.id] = ("kill", est_end)
            else:
                self._fates[job.id] = ("grace", now + actual)
            return est_end, False
        return est_end, False

    def _apply_uncertain_completions(self, now, bucket: List[Job]):
        """Resolve the calendar bucket at ``now`` against recorded fates,
        returning the jobs that actually complete here.

        Failures credit their unused reservation tail and park the job
        for requeue; early exits credit the tail and complete; overruns
        are killed at the estimate or granted a capacity-checked grace
        extension (and re-bucketed at its end)."""
        model = self.uncertainty
        state = self.state
        window_of = self.window_of
        out: List[Job] = []
        for job in bucket:
            fate = self._fates.pop(job.id, None)
            if fate is None:
                out.append(job)
                continue
            kind, boundary = fate
            if kind == "early":
                # finished short of the estimate: free the tail now
                state.profile.add(now, boundary - now, job.q)
                self.early_exits += 1
                out.append(job)
            elif kind == "fail":
                fire("uncertainty.requeue")
                if boundary > now:
                    # a p=1 job failing at its only tick has no tail
                    state.profile.add(now, boundary - now, job.q)
                del state.running[job.id]
                self._attempts[job.id] = self._attempts.get(job.id, 0) + 1
                self.requeues += 1
                self.events += 1
                w = window_of.get(job.id)
                if w is not None:
                    self.windows[w].requeues += 1
                ready = now + model.backoff
                self._requeue_ready.setdefault(ready, []).append(job)
                if ready not in self.buckets:
                    self.buckets[ready] = []
                    heappush(self.time_heap, ready)
            elif kind == "kill":
                fire("uncertainty.overrun_kill")
                self.kills += 1
                w = window_of.get(job.id)
                if w is not None:
                    self.windows[w].kills += 1
                out.append(job)
            elif kind == "grace":
                actual_end = boundary
                cap_end = now + model.grace_budget(job.p)
                if actual_end < cap_end:
                    cap_end = actual_end
                try:
                    state.profile.reserve(now, cap_end - now, job.q)
                except CapacityError:
                    # the extension does not fit: walltime kill after all
                    fire("uncertainty.overrun_kill")
                    self.kills += 1
                    w = window_of.get(job.id)
                    if w is not None:
                        self.windows[w].kills += 1
                    out.append(job)
                    continue
                self.events += 1
                if cap_end < actual_end:
                    # grace budget exhausted before the actual runtime:
                    # the kill lands at the extension boundary
                    self._fates[job.id] = ("kill", cap_end)
                bkt = self.buckets.get(cap_end)
                if bkt is None:
                    self.buckets[cap_end] = [job]
                    heappush(self.time_heap, cap_end)
                else:
                    bkt.append(job)
            else:
                raise SchedulingError(
                    f"unknown uncertainty fate {kind!r} for job {job.id!r}"
                )
        for job in out:
            self._attempts.pop(job.id, None)
        return out

    def _apply_uncertainty_events(self, now) -> None:
        """No-show hole releases and failure re-entries due at ``now``."""
        holes = self._no_shows_at.pop(now, None)
        if holes:
            for p, q in holes:
                self.state.profile.add(now, p, q)
                self.no_shows += 1
                self.events += 1
        ready = self._requeue_ready.pop(now, None)
        if ready:
            for job in ready:
                # the job arrived once: re-entry touches no arrival
                # counters, only the queue (and its retained window slot)
                self.state.enqueue(job)
                self.events += 1
