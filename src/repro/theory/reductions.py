"""The paper's reductions and transformations, executable.

Three constructions:

* **Theorem 1 / Figure 1** — 3-PARTITION → RESASCHEDULING on one machine:
  ``3k`` unit-width jobs of lengths ``x_i`` and ``k`` reservations leaving
  gaps of exactly ``B``; the last reservation has length
  ``ρ k (B+1) + 1`` so that any ρ-approximation must solve 3-PARTITION
  exactly.  :func:`three_partition_reduction` builds the instance,
  :func:`reduction_yes_makespan` gives the target makespan
  ``k(B+1) - 1``, and :func:`schedule_solves_3partition` extracts a
  3-PARTITION certificate back out of a schedule (the proof's converse
  direction).

* **Theorem 1, ``n' = 1`` case** — RIGIDSCHEDULING → RESASCHEDULING with
  a single huge reservation placed at a guessed deadline
  (:func:`deadline_reservation_reduction`): a ρ-approximation scheduling
  below the reservation decides "is C*max <= deadline".

* **Proposition 1 / Figure 2** — instances with non-increasing
  reservations: truncate availability after ``C*max``
  (:func:`truncate_availability`, the ``I'`` of the proof) and replace
  the staircase by rigid *head jobs* (:func:`reservations_to_head_jobs`,
  the ``I''``), such that LSRC with the head jobs first yields the same
  schedule.  :func:`proposition1_certify` runs the whole argument on an
  instance and checks the resulting guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.instance import (
    ReservationInstance,
    RigidInstance,
    as_reservation_instance,
)
from ..core.job import Job, Reservation
from ..core.schedule import Schedule
from ..errors import InvalidInstanceError
from ..algorithms.list_scheduling import ListScheduler
from ..algorithms.priority import explicit_order
from .graham import nonincreasing_ratio


# ---------------------------------------------------------------------------
# Theorem 1 / Figure 1: 3-PARTITION -> RESASCHEDULING (m = 1)
# ---------------------------------------------------------------------------

def three_partition_reduction(
    values: Sequence[int], bound: int, rho: int = 1
) -> ReservationInstance:
    """Figure 1's instance: one machine, gaps of ``B`` between reservations.

    Given 3-PARTITION values ``x_1..x_{3k}`` with ``sum x_i = k B``:

    * ``m = 1``;
    * ``3k`` jobs with ``q_i = 1`` and ``p_i = x_i``;
    * ``k`` unit reservations at ``r_j = (j)(B+1) - 1`` for ``j = 1..k``
      (i.e. ``r_{n+1} = B`` and then every ``B + 1``), except the last
      which has length ``ρ k (B+1) + 1`` and therefore ends at
      ``(ρ+1) k (B+1)``.

    A schedule with makespan ``k(B+1) - 1`` exists iff the 3-PARTITION
    instance is a yes-instance; any ρ-approximation must then find it
    (Theorem 1's contradiction).
    """
    vals = list(values)
    if len(vals) % 3:
        raise InvalidInstanceError("3-PARTITION needs 3k values")
    k = len(vals) // 3
    if sum(vals) != k * bound:
        raise InvalidInstanceError(
            f"values sum to {sum(vals)}, expected k*B = {k * bound}"
        )
    if rho < 1:
        raise InvalidInstanceError("rho must be >= 1")
    jobs = tuple(
        Job(id=i, p=v, q=1, name=f"x{i}") for i, v in enumerate(vals)
    )
    reservations = []
    for j in range(1, k + 1):
        start = j * (bound + 1) - 1
        length = 1 if j < k else rho * k * (bound + 1) + 1
        reservations.append(
            Reservation(id=f"R{j}", start=start, p=length, q=1)
        )
    return ReservationInstance(
        m=1,
        jobs=jobs,
        reservations=tuple(reservations),
        name=f"3partition(k={k},B={bound},rho={rho})",
    )


def reduction_yes_makespan(k: int, bound: int):
    """The optimal makespan ``k(B+1) - 1`` of a yes-instance's reduction."""
    return k * (bound + 1) - 1


def blocked_horizon(k: int, bound: int, rho: int):
    """End of the last reservation: ``(ρ+1) k (B+1)``.

    Any schedule that misses the ``k(B+1) - 1`` target is pushed past this
    time, which is what makes the ratio unbounded as ``ρ`` grows.
    """
    return (rho + 1) * k * (bound + 1)


def schedule_solves_3partition(
    schedule: Schedule, values: Sequence[int], bound: int
) -> Optional[List[Tuple[int, ...]]]:
    """Extract the 3-PARTITION solution encoded by a reduction schedule.

    If the schedule's makespan is ``k(B+1) - 1`` (all jobs packed into the
    gaps), group the jobs by the gap they run in and return the ``k``
    groups of values; otherwise return ``None``.  This is the converse
    direction of Theorem 1's proof.
    """
    k = len(values) // 3
    target = reduction_yes_makespan(k, bound)
    if schedule.makespan > target:
        return None
    groups: Dict[int, List[int]] = {g: [] for g in range(k)}
    for job in schedule.instance.jobs:
        start = schedule.starts[job.id]
        gap = int(start // (bound + 1))
        # job must lie inside its gap [gap(B+1), gap(B+1)+B)
        gap_start = gap * (bound + 1)
        if not (gap_start <= start and start + job.p <= gap_start + bound):
            return None
        groups[gap].append(int(job.p))
    result = []
    for g in range(k):
        if sum(groups[g]) != bound:
            return None
        result.append(tuple(sorted(groups[g])))
    return result


# ---------------------------------------------------------------------------
# Section 2.1, footnote 1: RIGIDSCHEDULING on two machines IS PARTITION
# ---------------------------------------------------------------------------

def partition_to_rigid(values: Sequence[int]) -> RigidInstance:
    """PARTITION → RIGIDSCHEDULING on ``m = 2`` (Section 2.1, footnote 1).

    The paper recalls that scheduling sequential jobs on two processors
    "is exactly the same as PARTITION": unit-width jobs with ``p_i = x_i``
    admit a schedule of makespan ``sum(x)/2`` iff the values split into
    two equal-sum halves.
    """
    vals = list(values)
    if not vals:
        raise InvalidInstanceError("PARTITION needs at least one value")
    if any((not isinstance(v, int)) or v <= 0 for v in vals):
        raise InvalidInstanceError("PARTITION values must be positive integers")
    jobs = tuple(Job(id=i, p=v, q=1, name=f"x{i}") for i, v in enumerate(vals))
    return RigidInstance(m=2, jobs=jobs, name=f"partition(n={len(vals)})")


def partition_target(values: Sequence[int]):
    """The yes-makespan of :func:`partition_to_rigid`: ``sum(values) / 2``.

    Returned exactly (an ``int`` when the sum is even, else a ``Fraction``
    — odd sums are automatic no-instances).
    """
    total = sum(values)
    if total % 2 == 0:
        return total // 2
    from fractions import Fraction as _F

    return _F(total, 2)


def schedule_solves_partition(
    schedule: Schedule, values: Sequence[int]
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Extract a PARTITION certificate from a target-makespan schedule.

    With makespan ``sum/2`` on two machines and total work ``sum``, the
    machine is saturated: jobs split into two sequences by processor.
    Returns the two value groups, or ``None`` when the schedule misses
    the target.
    """
    target = partition_target(values)
    if schedule.makespan > target:
        return None
    assignment = schedule.assign_processors()
    groups = {0: [], 1: []}
    for job in schedule.instance.jobs:
        procs = assignment[("job", job.id)]
        groups[procs[0]].append(int(job.p))
    if sum(groups[0]) != target or sum(groups[1]) != target:
        return None  # pragma: no cover - saturation forces equality
    return tuple(sorted(groups[0])), tuple(sorted(groups[1]))


# ---------------------------------------------------------------------------
# Theorem 1, n' = 1: RIGID -> RESA with one deadline reservation
# ---------------------------------------------------------------------------

def deadline_reservation_reduction(
    rigid: RigidInstance, deadline, rho: int = 1
) -> ReservationInstance:
    """Add one full-width reservation at ``deadline`` for ``ρ·deadline + 1``.

    If ``C*max(rigid) <= deadline``, the reservation is harmless and the
    optimum is unchanged; otherwise every schedule overflows past the
    reservation's end ``(ρ+1) deadline + 1``.  A ρ-approximation therefore
    decides the RIGIDSCHEDULING decision problem — the ``n' = 1`` half of
    Theorem 1.
    """
    if deadline <= 0:
        raise InvalidInstanceError("deadline must be positive")
    if rho < 1:
        raise InvalidInstanceError("rho must be >= 1")
    blocker = Reservation(
        id="deadline",
        start=deadline,
        p=rho * deadline + 1,
        q=rigid.m,
        name="deadline blocker",
    )
    return ReservationInstance(
        m=rigid.m,
        jobs=rigid.jobs,
        reservations=(blocker,),
        name=f"{rigid.name or 'rigid'}+deadline@{deadline}",
    )


# ---------------------------------------------------------------------------
# Proposition 1 / Figure 2: non-increasing reservations
# ---------------------------------------------------------------------------

def truncate_availability(instance, horizon) -> ReservationInstance:
    """The proof's ``I'``: freeze availability at its value at ``horizon``.

    For a non-increasing-reservations instance, capacity beyond
    ``horizon`` (in the proof, ``C*max``) is replaced by the constant
    ``m(horizon)``, i.e. the machine "stays as open as it was at the
    optimum".  Optimal value and feasibility below the horizon are
    untouched; schedules of ``I'`` are feasible for ``I``.

    Implemented by rebuilding reservations from the truncated
    unavailability staircase (each capacity *drop* from the right becomes
    one reservation starting at 0 — valid because availability is
    non-decreasing).
    """
    inst = as_reservation_instance(instance)
    if not inst.has_nonincreasing_reservations():
        raise InvalidInstanceError(
            "truncate_availability requires non-increasing reservations"
        )
    profile = inst.availability_profile().truncated_after(horizon)
    return _staircase_to_instance(inst, profile)


def _staircase_to_instance(
    inst: ReservationInstance, profile
) -> ReservationInstance:
    """Rebuild an instance whose availability equals a non-decreasing
    ``profile`` using reservations that all start at 0."""
    m = inst.m
    reservations = []
    segs = list(profile.segments())
    # capacity m - c missing during [0, t_end of segment); since capacity is
    # non-decreasing we emit one reservation per step, nested like Figure 2.
    for idx, (start, end, cap) in enumerate(segs):
        if idx + 1 < len(segs):
            nxt_cap = segs[idx + 1][2]
        else:
            break
        drop = nxt_cap - cap
        if drop <= 0:  # pragma: no cover - nondecreasing guarantees drop > 0
            raise InvalidInstanceError("profile is not non-decreasing")
        reservations.append(
            Reservation(id=f"U{idx}", start=0, p=end, q=drop)
        )
    tail_missing = m - segs[-1][2]
    if tail_missing > 0:
        # capacity never returns to m: represent with a very long reservation
        # (RESASCHEDULING reservations are finite; use a horizon far beyond
        # any job completion so schedules cannot tell the difference).
        horizon_guard = _safe_horizon(inst)
        reservations.append(
            Reservation(id="Utail", start=0, p=horizon_guard, q=tail_missing)
        )
    return ReservationInstance(
        m=m,
        jobs=inst.jobs,
        reservations=tuple(reservations),
        name=f"{inst.name or 'instance'}|truncated",
    )


def _safe_horizon(inst: ReservationInstance):
    """A time no reasonable schedule of ``inst`` can reach: total work plus
    every processing time plus the reservation horizon, and then doubled."""
    span = sum(job.p for job in inst.jobs) + inst.total_work + 1
    span = span + inst.last_reservation_end
    return 2 * span + 1


@dataclass(frozen=True)
class HeadJobsTransform:
    """Result of the ``I' -> I''`` transformation of Proposition 1.

    Attributes
    ----------
    rigid:
        The RIGIDSCHEDULING instance ``I''`` (original jobs + head jobs).
    head_ids:
        Ids of the synthetic jobs encoding the staircase, in the order
        they must head the list.
    """

    rigid: RigidInstance
    head_ids: Tuple

    def list_order(self) -> List:
        """Job-id order: head jobs first, then original jobs in instance
        order — the order under which LSRC reproduces the ``I'`` schedule."""
        originals = [
            j.id for j in self.rigid.jobs if j.id not in set(self.head_ids)
        ]
        return list(self.head_ids) + originals


def reservations_to_head_jobs(instance, horizon) -> HeadJobsTransform:
    """The proof's ``I''``: replace the (truncated) staircase by rigid jobs.

    If ``U^{I'}`` takes values ``U_1 > U_2 > ... > U_k = 0`` with
    ``U(t) = U_j`` on ``[t_j, t_{j+1})``, add ``k - 1`` jobs with
    ``q_{n+j} = U_j - U_{j+1}`` and ``p_{n+j} = t_{j+1}``.  Placed at the
    head of the list they all start at time 0 under LSRC and exactly
    rebuild the staircase, so LSRC produces the same schedule for ``I'``
    and ``I''`` — which transfers Theorem 2's bound.
    """
    inst = as_reservation_instance(instance)
    if not inst.has_nonincreasing_reservations():
        raise InvalidInstanceError(
            "reservations_to_head_jobs requires non-increasing reservations"
        )
    profile = inst.availability_profile().truncated_after(horizon)
    m_prime = profile.final_capacity()  # m^{I'} = m(horizon)
    if inst.jobs and inst.qmax > m_prime:
        raise InvalidInstanceError(
            f"a job needs {inst.qmax} processors but only {m_prime} are "
            f"available at the horizon {horizon}; in Proposition 1 the "
            "horizon is C*max, where every job provably fits "
            "(availability is non-decreasing and all jobs finish by C*max)"
        )
    segs = list(profile.segments())
    head_jobs: List[Job] = []
    for idx in range(len(segs) - 1):
        start, end, cap = segs[idx]
        nxt_cap = segs[idx + 1][2]
        drop = nxt_cap - cap
        head_jobs.append(
            Job(
                id=f"head{idx}",
                p=end,
                q=drop,
                name=f"staircase step {idx}",
            )
        )
    jobs = tuple(head_jobs) + tuple(inst.jobs)
    rigid = RigidInstance(
        m=m_prime,
        jobs=jobs,
        name=f"{inst.name or 'instance'}|head-jobs",
    )
    return HeadJobsTransform(
        rigid=rigid, head_ids=tuple(j.id for j in head_jobs)
    )


@dataclass(frozen=True)
class Proposition1Certificate:
    """Everything Proposition 1 predicts, measured on a concrete instance."""

    lsrc_makespan: object
    cstar: object
    guarantee: object           # 2 - 1/m(C*max)
    ratio: object
    head_schedule_matches: bool  # LSRC(I') == LSRC(I'') on original jobs

    @property
    def holds(self) -> bool:
        """Proposition 1's inequality on this instance."""
        return self.ratio <= self.guarantee and self.head_schedule_matches


def proposition1_certify(instance, cstar) -> Proposition1Certificate:
    """Run the full Proposition 1 argument on one instance.

    ``cstar`` must be the instance's optimal makespan (from the exact
    solver).  Checks both the final bound on LSRC(I) and the structural
    claim that LSRC schedules ``I'`` (availability frozen at ``C*max``)
    and ``I''`` (staircase as head-of-list jobs) identically.
    """
    inst = as_reservation_instance(instance)
    guarantee = nonincreasing_ratio(inst, cstar)
    lsrc = ListScheduler().schedule(inst)
    ratio = lsrc.makespan / cstar

    i_prime = truncate_availability(inst, cstar)
    sched_i1 = ListScheduler().schedule(i_prime)
    transform = reservations_to_head_jobs(inst, cstar)
    order = transform.list_order()
    sched_i2 = ListScheduler(explicit_order(order)).schedule(transform.rigid)
    # the proof's structural identity: original jobs start at the same
    # times in LSRC(I') and LSRC(I'') when the head jobs lead the list
    matches = all(
        sched_i2.starts[j.id] == sched_i1.starts[j.id] for j in inst.jobs
    )
    return Proposition1Certificate(
        lsrc_makespan=lsrc.makespan,
        cstar=cstar,
        guarantee=guarantee,
        ratio=ratio,
        head_schedule_matches=matches,
    )
