"""PARTITION and 3-PARTITION: solvers and instance generators.

Theorem 1's inapproximability proof reduces 3-PARTITION to
RESASCHEDULING, and Section 2.1 recalls that RIGIDSCHEDULING on two
processors *is* PARTITION.  To make the reductions executable we need the
NP-complete source problems themselves:

* :func:`solve_partition` — pseudo-polynomial subset-sum DP (PARTITION is
  only weakly NP-hard, footnote 1 of the paper);
* :func:`solve_3partition` — exact backtracking for 3-PARTITION (strongly
  NP-hard, so exponential in general; fine at reduction-verification
  sizes);
* generators for yes- and no-instances with the standard
  ``B/4 < x_i < B/2`` restriction (which forces every group to have
  exactly three elements).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidInstanceError


def solve_partition(values: Sequence[int]) -> Optional[Tuple[List[int], List[int]]]:
    """Split ``values`` into two halves of equal sum, or return ``None``.

    Subset-sum dynamic program over achievable sums with parent pointers;
    runs in ``O(n * sum)`` time and space.
    """
    vals = list(values)
    if any((not isinstance(v, int)) or v <= 0 for v in vals):
        raise InvalidInstanceError("PARTITION values must be positive integers")
    total = sum(vals)
    if total % 2:
        return None
    target = total // 2
    # parent[s] = (previous sum, item index used), -1 roots the chain
    parent = {0: (-1, -1)}
    for idx, v in enumerate(vals):
        # iterate over a snapshot so each item is used at most once
        for s in list(parent):
            ns = s + v
            if ns <= target and ns not in parent:
                parent[ns] = (s, idx)
    if target not in parent:
        return None
    chosen = set()
    s = target
    while s != 0:
        prev, idx = parent[s]
        chosen.add(idx)
        s = prev
    left = [vals[i] for i in sorted(chosen)]
    right = [vals[i] for i in range(len(vals)) if i not in chosen]
    return left, right


def solve_3partition(
    values: Sequence[int], bound: int
) -> Optional[List[Tuple[int, int, int]]]:
    """Partition ``3k`` integers into ``k`` triples each summing to ``bound``.

    Returns the triples (as value tuples) or ``None`` when impossible.
    Backtracking over items sorted decreasingly, filling one group at a
    time; prunes on group overshoot and skips equal values at the same
    decision point to avoid redundant branches.
    """
    vals = sorted(values, reverse=True)
    n = len(vals)
    if n % 3:
        raise InvalidInstanceError(
            f"3-PARTITION needs a multiple of 3 values, got {n}"
        )
    k = n // 3
    if any((not isinstance(v, int)) or v <= 0 for v in vals):
        raise InvalidInstanceError("3-PARTITION values must be positive integers")
    if sum(vals) != k * bound:
        return None
    used = [False] * n
    groups: List[List[int]] = []

    def fill(start: int, current: List[int], acc: int) -> bool:
        if len(current) == 3:
            if acc != bound:
                return False
            groups.append(list(current))
            if len(groups) == k:
                return True
            # start the next group at the first unused item (canonical order
            # kills group-permutation symmetry)
            nxt = next(i for i in range(n) if not used[i])
            used[nxt] = True
            current2 = [vals[nxt]]
            ok = fill(nxt + 1, current2, vals[nxt])
            if ok:
                return True
            used[nxt] = False
            groups.pop()
            return False
        prev = None
        for i in range(start, n):
            if used[i]:
                continue
            v = vals[i]
            if v == prev:
                continue  # same value at same position: symmetric branch
            if acc + v > bound:
                prev = v
                continue
            # not enough room for the remaining slots even with the
            # smallest available values -> all later (smaller) values fail
            used[i] = True
            current.append(v)
            if fill(i + 1, current, acc + v):
                return True
            current.pop()
            used[i] = False
            prev = v
        return False

    if k == 0:
        return []
    used[0] = True
    if fill(1, [vals[0]], vals[0]):
        return [tuple(g) for g in groups]  # type: ignore[misc]
    return None


def is_3partition_yes(values: Sequence[int], bound: int) -> bool:
    """True when the 3-PARTITION instance admits a solution."""
    return solve_3partition(values, bound) is not None


def random_yes_3partition(
    k: int, bound: int = 100, seed: int = 0
) -> Tuple[List[int], int]:
    """A guaranteed-yes 3-PARTITION instance with ``3k`` values.

    Builds ``k`` triples summing to ``bound`` with every value in the
    standard open range ``(bound/4, bound/2)``, then shuffles.  ``bound``
    must be large enough for that range to contain three valid integers
    (``bound >= 20`` is comfortable).
    """
    if k < 1:
        raise InvalidInstanceError("k must be >= 1")
    rng = random.Random(seed)
    lo, hi = bound // 4 + 1, (bound - 1) // 2
    if lo + 2 > hi or 3 * lo > bound:
        raise InvalidInstanceError(
            f"bound {bound} too small for the B/4 < x < B/2 restriction"
        )
    values: List[int] = []
    for _ in range(k):
        # choose x, y, z = B - x - y inside (B/4, B/2)
        for _attempt in range(10_000):
            x = rng.randint(lo, hi)
            y = rng.randint(lo, hi)
            z = bound - x - y
            if lo <= z <= hi:
                values.extend((x, y, z))
                break
        else:  # pragma: no cover - range is never this tight for bound>=20
            raise InvalidInstanceError("failed to sample a valid triple")
    rng.shuffle(values)
    return values, bound


def random_no_3partition(
    k: int, bound: int = 100, seed: int = 0, max_tries: int = 200
) -> Tuple[List[int], int]:
    """A no-instance: same sum ``k * bound`` but no triple partition.

    Perturbs a yes-instance (moving a unit between two values so both stay
    in range) until the exact solver rejects it.  Verification keeps the
    generator honest, at the cost of an exact solve per attempt.
    """
    rng = random.Random(seed)
    for attempt in range(max_tries):
        values, _ = random_yes_3partition(k, bound, seed=rng.randrange(2**30))
        vals = list(values)
        i, j = rng.sample(range(len(vals)), 2)
        lo, hi = bound // 4 + 1, (bound - 1) // 2
        if vals[i] + 1 <= hi and vals[j] - 1 >= lo:
            vals[i] += 1
            vals[j] -= 1
        if solve_3partition(vals, bound) is None:
            return vals, bound
    raise InvalidInstanceError(
        f"could not build a no-instance in {max_tries} tries (k={k}, B={bound})"
    )
