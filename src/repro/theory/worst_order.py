"""Empirical worst-order analysis: how bad can the list order get?

The paper sandwiches LSRC's worst-case ratio on α-RESASCHEDULING between
``B1`` and ``2/α`` *over all instances and all orders*.  A natural
empirical companion — which the paper's Figure 4 invites but cannot show
analytically — is the per-instance quantity

    worst_ratio(I) = max over list orders of Cmax(LSRC_order(I)) / C*max(I)

computed exactly on small instances (all ``n!`` orders, exact optimum).
By Theorem 2 / Proposition 3 this never exceeds the upper-bound curve;
Proposition 2's family shows instances where it touches the lower-bound
curve.  Random instances land in between, and the benchmark
``bench_worst_order.py`` plots where.

For larger ``n`` the exhaustive maximum is replaced by a seeded random +
structured-order search (:func:`worst_order_sample`), a lower bound on
the true per-instance worst case.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..algorithms.list_scheduling import ListScheduler
from ..algorithms.optimal import branch_and_bound
from ..algorithms.priority import RULES, explicit_order
from ..core.instance import as_reservation_instance
from ..errors import InvalidInstanceError


@dataclass(frozen=True)
class WorstOrderResult:
    """Per-instance worst-order analysis outcome.

    Attributes
    ----------
    worst_makespan / best_makespan:
        Extremes of LSRC makespan over the explored orders.
    optimal_makespan:
        Exact ``C*max`` from branch-and-bound.
    worst_order / best_order:
        Job-id sequences achieving the extremes.
    orders_explored:
        Number of orders evaluated.
    exhaustive:
        True when every permutation was evaluated (exact worst case).
    """

    worst_makespan: object
    best_makespan: object
    optimal_makespan: object
    worst_order: Tuple
    best_order: Tuple
    orders_explored: int
    exhaustive: bool

    @property
    def worst_ratio(self) -> float:
        """``worst LSRC / C*`` — the per-instance list-order risk.

        Requires the exact optimum (``optimal_makespan`` not ``None``).
        """
        if self.optimal_makespan is None:
            raise InvalidInstanceError(
                "optimum was not computed; rerun with compute_optimal=True"
            )
        return self.worst_makespan / self.optimal_makespan

    @property
    def best_ratio(self) -> float:
        """``best LSRC / C*`` — how close some order gets to optimal."""
        if self.optimal_makespan is None:
            raise InvalidInstanceError(
                "optimum was not computed; rerun with compute_optimal=True"
            )
        return self.best_makespan / self.optimal_makespan

    @property
    def order_spread(self) -> float:
        """``worst / best`` — how much the order alone can cost."""
        return self.worst_makespan / self.best_makespan


def _evaluate_orders(instance, orders) -> Tuple:
    worst = best = None
    worst_order = best_order = None
    count = 0
    for order in orders:
        count += 1
        schedule = ListScheduler(explicit_order(order)).schedule(instance)
        c = schedule.makespan
        if worst is None or c > worst:
            worst, worst_order = c, tuple(order)
        if best is None or c < best:
            best, best_order = c, tuple(order)
    return worst, best, worst_order, best_order, count


def worst_order_exhaustive(instance, node_limit: int = 500_000) -> WorstOrderResult:
    """Exact per-instance worst/best order (all ``n!`` permutations).

    Limited to ``n <= 8`` (40k+ LSRC runs beyond that).
    """
    inst = as_reservation_instance(instance)
    ids = [job.id for job in inst.jobs]
    if len(ids) > 8:
        raise InvalidInstanceError(
            f"{len(ids)}! orders is too many; use worst_order_sample"
        )
    if not ids:
        raise InvalidInstanceError("instance has no jobs")
    worst, best, worst_order, best_order, count = _evaluate_orders(
        inst, itertools.permutations(ids)
    )
    optimal = branch_and_bound(inst, node_limit=node_limit).makespan
    return WorstOrderResult(
        worst_makespan=worst,
        best_makespan=best,
        optimal_makespan=optimal,
        worst_order=worst_order,
        best_order=best_order,
        orders_explored=count,
        exhaustive=True,
    )


def worst_order_sample(
    instance,
    samples: int = 200,
    seed: int = 0,
    node_limit: int = 500_000,
    compute_optimal: bool = True,
) -> WorstOrderResult:
    """Sampled worst/best order for larger instances.

    Explores every named priority rule, their reversals, and ``samples``
    random permutations.  The reported worst case is a *lower bound* on
    the true per-instance worst order.  For instances too large for the
    exact solver, pass ``compute_optimal=False`` — the ratio properties
    then raise, but the order spread remains available.
    """
    inst = as_reservation_instance(instance)
    ids = [job.id for job in inst.jobs]
    if not ids:
        raise InvalidInstanceError("instance has no jobs")
    rng = random.Random(seed)
    orders: List[Sequence] = []
    for rule in RULES.values():
        ordered = [j.id for j in rule(inst.jobs)]
        orders.append(ordered)
        orders.append(list(reversed(ordered)))
    for _ in range(samples):
        perm = list(ids)
        rng.shuffle(perm)
        orders.append(perm)
    worst, best, worst_order, best_order, count = _evaluate_orders(
        inst, orders
    )
    optimal = (
        branch_and_bound(inst, node_limit=node_limit).makespan
        if compute_optimal
        else None
    )
    return WorstOrderResult(
        worst_makespan=worst,
        best_makespan=best,
        optimal_makespan=optimal,
        worst_order=worst_order,
        best_order=best_order,
        orders_explored=count,
        exhaustive=False,
    )
