"""Graham's bound for list scheduling, as executable certificates.

The paper's appendix gives a new continuous proof of the Garey–Graham
``2 - 1/m`` guarantee for LSRC on independent rigid jobs (single shared
resource).  The two executable artifacts are:

* **Lemma 1**: for a list schedule, any two times ``t' >= t + pmax``
  inside ``[0, Cmax)`` satisfy ``r(t) + r(t') >= m + 1`` where ``r`` is
  the processor usage.  :func:`lemma1_violations` checks the property
  exhaustively on the usage profile of a schedule — our LSRC
  implementation must never violate it on reservation-free instances
  (property-tested in the suite);
* **Theorem 2**: ``Cmax(A) <= (2 - 1/m) C*max`` for every list algorithm.
  :func:`theorem2_check` certifies a (schedule, optimum) pair, and
  :func:`work_area_inequality` verifies the integral inequality
  ``X <= W(I) - x C*max`` that drives the proof.

Proposition 1's refinement for non-increasing reservations
(``2 - 1/m(C*max)``) lives here too since it is a direct corollary.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

from ..core.instance import as_reservation_instance
from ..core.schedule import Schedule
from ..errors import InvalidInstanceError


def graham_ratio(m: int):
    """``2 - 1/m`` — Theorem 2's guarantee (exact Fraction)."""
    if m < 1:
        raise InvalidInstanceError(f"machine count must be >= 1, got {m}")
    return 2 - Fraction(1, m)


def nonincreasing_ratio(instance, cstar):
    """Proposition 1's guarantee ``2 - 1/m(C*max)`` for an instance with
    non-increasing reservations.

    ``m(C*max)`` is the number of available machines at the optimal
    makespan; since availability is non-decreasing, this is the largest
    availability the schedule can ever use before ``C*max``.
    """
    inst = as_reservation_instance(instance)
    if not inst.has_nonincreasing_reservations():
        raise InvalidInstanceError(
            "Proposition 1 requires non-increasing reservations"
        )
    m_at = inst.availability_profile().capacity_at(cstar)
    if m_at < 1:
        raise InvalidInstanceError(
            f"no machine available at C*max = {cstar}; degenerate instance"
        )
    return 2 - Fraction(1, m_at)


def lemma1_violations(schedule: Schedule) -> List[Tuple]:
    """All pairs witnessing a violation of Lemma 1.

    Lemma 1 (appendix): if ``A`` is a list algorithm then for all
    ``t, t' in [0, Cmax)`` with ``t' >= t + pmax``,
    ``r(t) + r(t') >= m + 1``.

    ``r`` is piecewise constant, so it suffices to check one representative
    time per segment pair; returned tuples are
    ``(t, t', r(t), r(t'))`` for each violated pair of segments.

    The lemma concerns the *reservation-free* model; calling this on a
    schedule whose instance has reservations is allowed (the benchmark for
    Proposition 1 does, after transforming reservations into jobs) but the
    caller is responsible for the model fitting.
    """
    inst = schedule.instance
    m = inst.m
    if not inst.jobs:
        return []
    pmax = inst.pmax
    cmax = schedule.makespan
    usage = schedule.usage_profile()
    # representative points: segment starts clipped to [0, cmax)
    segs = [
        (start, end, cap)
        for (start, end, cap) in usage.segments(horizon=cmax)
        if start < cmax
    ]
    violations: List[Tuple] = []
    for (s1, e1, r1) in segs:
        for (s2, e2, r2) in segs:
            # does the segment pair contain t, t' with t' >= t + pmax?
            # smallest achievable gap uses t = s1, t' approaching e2; the
            # constraint is satisfiable iff e2 > s1 + pmax, and then t' can
            # be any point in [max(s2, s1 + pmax), e2).
            t = s1
            t_prime_lo = t + pmax
            if t_prime_lo < s2:
                t_prime = s2
            elif t_prime_lo < e2:
                t_prime = t_prime_lo
            else:
                continue
            if t_prime >= cmax:
                continue
            if r1 + r2 <= m:
                violations.append((t, t_prime, r1, r2))
    return violations


def check_lemma1(schedule: Schedule) -> None:
    """Assert Lemma 1 on a schedule; raises ``AssertionError`` with the
    first violating pair otherwise (used by tests and benches)."""
    violations = lemma1_violations(schedule)
    if violations:
        t, tp, r1, r2 = violations[0]
        raise AssertionError(
            f"Lemma 1 violated: r({t}) + r({tp}) = {r1} + {r2} <= "
            f"m = {schedule.instance.m}"
        )


def theorem2_check(schedule: Schedule, cstar) -> Tuple[object, object]:
    """Certify Theorem 2 on a (list schedule, optimal makespan) pair.

    Returns ``(achieved_ratio, guaranteed_ratio)`` and raises
    ``AssertionError`` when ``Cmax > (2 - 1/m) C*max`` (which would
    disprove the implementation's list property or the claimed optimum).
    """
    if cstar <= 0:
        raise InvalidInstanceError(f"C*max must be positive, got {cstar!r}")
    m = schedule.instance.m
    ratio = Fraction(schedule.makespan) / Fraction(cstar) if isinstance(
        cstar, (int, Fraction)
    ) and isinstance(schedule.makespan, (int, Fraction)) else (
        schedule.makespan / cstar
    )
    guarantee = graham_ratio(m)
    if ratio > guarantee + Fraction(1, 10**9):
        raise AssertionError(
            f"Theorem 2 violated: Cmax/C* = {ratio} > 2 - 1/m = {guarantee}"
        )
    return ratio, guarantee


def work_area_inequality(schedule: Schedule, cstar) -> Tuple:
    """The integral inequality at the heart of the Theorem 2 proof.

    With ``x`` defined by ``Cmax = (2 - x) C*max``, the proof integrates
    Lemma 1 to get::

        X := ∫_0^{(1-x)C*} [ r(t) + r(t + C*) ] dt  >=  (m+1)(1-x) C*
        X <= W(I) - x C*

    hence ``x >= 1/m``.  Returns ``(X, (m+1)(1-x)C*, W - x C*)`` so tests
    can confirm both inequalities numerically on concrete schedules
    (x is clamped at 0 when the schedule is better than ``2 C*``...
    the inequality chain is only meaningful when ``0 <= x <= 1``).
    """
    inst = schedule.instance
    m = inst.m
    cmax = schedule.makespan
    x = 2 - (Fraction(cmax) / Fraction(cstar) if isinstance(cmax, (int, Fraction))
             and isinstance(cstar, (int, Fraction)) else cmax / cstar)
    usage = schedule.usage_profile()
    window = (1 - x) * cstar
    if window <= 0:
        return (0, 0, inst.total_work)
    X = usage.area(0, window) + usage.area(cstar, cstar + window)
    lower = (m + 1) * window
    upper = inst.total_work - x * cstar
    return (X, lower, upper)
