"""The α-RESASCHEDULING performance bounds (Section 4.2 and Figure 4).

For the restricted problem where reservations leave at least ``α m``
processors free and no job needs more than ``α m``, the paper proves:

* **upper bound** (Proposition 3): LSRC is a ``2/α``-approximation;
* **integer-case lower bound** (Proposition 2): when ``2/α`` is an
  integer, LSRC's worst-case ratio is at least ``2/α - 1 + α/2``;
* **general lower bounds**::

      B1 = ceil(2/α) - 1 + 1 / ( floor( (1 - α/2) /
               (1 - (α/2) (ceil(2/α) - 1)) ) + 1 )
      B2 = ceil(2/α) - (ceil(2/α) - 1) / (2/α)

  with ``B1 >= B2`` (B2 is "a bit less precise but easier to express").

Figure 4 of the paper plots ``2/α``, ``B1`` and ``B2`` against α; this
module computes the exact series (use :class:`fractions.Fraction` inputs
for exact arithmetic) and ``benchmarks/bench_fig4_bounds.py`` regenerates
the plot.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, NamedTuple, Sequence

from ..errors import InvalidInstanceError


def _check_alpha(alpha) -> None:
    if not 0 < alpha <= 1:
        raise InvalidInstanceError(f"alpha must lie in (0, 1], got {alpha!r}")


def upper_bound(alpha):
    """Proposition 3: LSRC's guarantee ``2 / α`` on α-RESASCHEDULING."""
    _check_alpha(alpha)
    return 2 / alpha


def _exact(alpha) -> Fraction:
    """Exact rational value of ``alpha`` (floats are exact binary rationals,
    so this conversion is lossless; all ceil/floor are then exact)."""
    return alpha if isinstance(alpha, Fraction) else Fraction(alpha)


def lower_bound_integer_case(alpha):
    """Proposition 2: ``2/α - 1 + α/2``, valid when ``2/α`` is an integer.

    Raises when ``2/α`` is not integral — use :func:`lower_bound_b1` then.
    Pass :class:`fractions.Fraction` values (for example ``Fraction(2, 3)``)
    to hit the integral case exactly.
    """
    _check_alpha(alpha)
    a = _exact(alpha)
    two_over = 2 / a
    if two_over.denominator != 1:
        raise InvalidInstanceError(
            f"2/alpha = {two_over!r} is not an integer; Proposition 2's "
            "closed form needs alpha = 2/k (pass a Fraction for exactness)"
        )
    result = two_over - 1 + a / 2
    return result if isinstance(alpha, Fraction) else float(result)


def lower_bound_b1(alpha):
    """The paper's ``B1`` lower bound on LSRC's performance ratio.

    Computed in exact rational arithmetic; the return type matches the
    input (Fraction in, Fraction out).  For ``alpha = 2/k`` it coincides
    with Proposition 2's ``2/α - 1 + α/2``.
    """
    _check_alpha(alpha)
    a = _exact(alpha)
    c = math.ceil(2 / a)
    half = a / 2
    denom_inner = 1 - half * (c - 1)
    if denom_inner <= 0:  # pragma: no cover - c - 1 < 2/a makes this impossible
        raise InvalidInstanceError(f"degenerate B1 denominator for alpha={alpha!r}")
    floor_term = math.floor((1 - half) / denom_inner)
    result = c - 1 + Fraction(1, floor_term + 1)
    return result if isinstance(alpha, Fraction) else float(result)


def lower_bound_b2(alpha):
    """The paper's ``B2`` lower bound: ``ceil(2/α) - (ceil(2/α) - 1)/(2/α)``.

    Weaker than B1 but a single closed form; exact rational arithmetic as
    for :func:`lower_bound_b1`.
    """
    _check_alpha(alpha)
    a = _exact(alpha)
    two_over = 2 / a
    c = math.ceil(two_over)
    result = c - (c - 1) / two_over
    return result if isinstance(alpha, Fraction) else float(result)


class BoundsRow(NamedTuple):
    """One α sample of Figure 4."""

    alpha: object
    upper: object  # 2/α      (Proposition 3)
    b1: object     # B1       (Proposition 2, general α)
    b2: object     # B2       (weaker closed form)


def figure4_series(alphas: Sequence) -> List[BoundsRow]:
    """The three Figure 4 curves sampled at the given α values."""
    rows = []
    for a in alphas:
        rows.append(
            BoundsRow(
                alpha=a,
                upper=upper_bound(a),
                b1=lower_bound_b1(a),
                b2=lower_bound_b2(a),
            )
        )
    return rows


def default_alpha_grid(points: int = 200, lo: float = 0.05) -> List[float]:
    """An evenly spaced α grid over ``[lo, 1]`` (Figure 4's x-axis).

    The figure's axis starts at 0 but the bounds diverge as ``α -> 0``;
    ``lo`` bounds the plotted range like the paper's y-axis clip at 10.
    """
    if points < 2:
        raise InvalidInstanceError("need at least 2 grid points")
    step = (1.0 - lo) / (points - 1)
    return [lo + i * step for i in range(points)]


def gap_at(alpha):
    """Absolute gap between the upper bound and B1 at ``alpha``.

    The paper notes the two "can be arbitrarily close to each other for
    some values of the parameter α"; at ``α = 2/k`` the gap is
    ``1 - α/2 < 1`` while both bounds are ``Θ(1/α)``, so the *relative*
    gap vanishes as ``α -> 0``.
    """
    return upper_bound(alpha) - lower_bound_b1(alpha)
