"""Worst-case instance families from the paper, built exactly.

* :func:`proposition2_instance` — the lower-bound family of Proposition 2
  (Figure 3): for ``α = 2/k`` the optimal makespan is ``1`` (scaled:
  ``k``) while LSRC with the adversarial list order achieves
  ``2/α - 1 + α/2`` times that.  The default integer scaling by ``k``
  reproduces Figure 3's annotations for ``k = 6``: ``C* = 6`` and
  ``Cmax = 5 × 6 + 1 = 31`` on ``m = 180`` machines.

* :func:`fcfs_worstcase_instance` — Section 2.2's claim that FCFS (even
  conservative) has no constant guarantee: a family with optimal makespan
  ``K + m - 1`` and FCFS makespan ``m K + m - 1``, whose ratio tends to
  ``m`` as ``K`` grows.

* :func:`graham_tight_instance` — the classical family showing Theorem 2's
  ``2 - 1/m`` is tight for list scheduling: ratio ``(2m - 1)/m``.

All constructions use integer times only, so every makespan and ratio in
the benchmarks is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..core.instance import ReservationInstance, RigidInstance
from ..core.job import Job, Reservation
from ..core.schedule import Schedule
from ..errors import InvalidInstanceError


# ---------------------------------------------------------------------------
# Proposition 2 / Figure 3
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Proposition2Family:
    """The Proposition 2 construction for ``α = 2/k``, scaled by ``k``.

    Attributes
    ----------
    instance:
        The RESASCHEDULING instance (integer times).
    k:
        The parameter; ``α = 2/k``.
    optimal_makespan:
        ``k`` (the paper's ``1``, scaled).
    lsrc_makespan:
        ``1 + k(k-1)`` (the paper's ``1/k + k - 1``, scaled): what LSRC
        produces under :attr:`bad_order`.
    bad_order:
        The adversarial list order (first set of tasks first).
    """

    instance: ReservationInstance
    k: int

    @property
    def alpha(self) -> Fraction:
        return Fraction(2, self.k)

    @property
    def scale(self) -> int:
        return self.k

    @property
    def optimal_makespan(self) -> int:
        return self.k  # = 1 * scale

    @property
    def lsrc_makespan(self) -> int:
        # (1/k + k - 1) * scale with scale = k
        return 1 + self.k * (self.k - 1)

    @property
    def ratio(self) -> Fraction:
        """``2/α - 1 + α/2`` — Proposition 2's lower bound, exactly."""
        return Fraction(self.lsrc_makespan, self.optimal_makespan)

    @property
    def bad_order(self) -> List:
        """List order that makes LSRC hit the bound: short/wide set first."""
        return [f"A{i}" for i in range(self.k)] + [
            f"B{i}" for i in range(self.k - 1)
        ]

    def optimal_schedule(self) -> Schedule:
        """The analytic optimal schedule finishing at the reservation start.

        The ``k - 1`` long/wide B tasks run side by side on ``[0, k)``;
        the ``k`` short A tasks run *one after another* on the remaining
        ``(k-1)^2`` processors (the widths satisfy
        ``(k-1)(k(k-1)+1) + (k-1)^2 = m`` exactly, the paper's packing
        identity), each taking 1 time unit (scaled), so the machine is
        fully busy on ``[0, k)`` and ``C* = k``.
        """
        starts = {}
        for i in range(self.k - 1):
            starts[f"B{i}"] = 0
        for i in range(self.k):
            starts[f"A{i}"] = i
        return Schedule(self.instance, starts, algorithm="analytic-optimal")


def proposition2_instance(k: int) -> Proposition2Family:
    """Build the Proposition 2 family member for ``α = 2/k`` (``k >= 3``).

    Construction (times scaled by ``k`` to stay integral):

    * ``m = k^2 (k - 1)`` machines;
    * set A: ``k`` tasks with ``p = 1`` (paper: ``1/k``) and
      ``q = (k-1)^2``;
    * set B: ``k - 1`` tasks with ``p = k`` (paper: ``1``) and
      ``q = k(k-1) + 1``;
    * one reservation starting at ``k`` (paper: ``1``) of length
      ``2k · k`` (paper: ``2k``) over ``k(k-1)(k-2)`` processors —
      exactly ``(1 - α) m``.

    ``k = 2`` is degenerate (the reservation would need 0 processors and
    α = 1); the construction requires ``k >= 3``.
    """
    if k < 3:
        raise InvalidInstanceError(
            f"Proposition 2's construction needs k >= 3, got {k}"
        )
    m = k * k * (k - 1)
    set_a = [
        Job(id=f"A{i}", p=1, q=(k - 1) ** 2, name=f"short/narrow A{i}")
        for i in range(k)
    ]
    set_b = [
        Job(id=f"B{i}", p=k, q=k * (k - 1) + 1, name=f"long/wide B{i}")
        for i in range(k - 1)
    ]
    reservation = Reservation(
        id="R", start=k, p=2 * k * k, q=k * (k - 1) * (k - 2)
    )
    instance = ReservationInstance(
        m=m,
        jobs=tuple(set_a + set_b),
        reservations=(reservation,),
        name=f"prop2(k={k},alpha=2/{k})",
    )
    return Proposition2Family(instance=instance, k=k)


# ---------------------------------------------------------------------------
# FCFS has no constant guarantee (Section 2.2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FCFSWorstCase:
    """FCFS ratio-``m`` family.

    ``m`` narrow long jobs ``(q=1, p=K)`` interleaved with ``m - 1`` full
    -width short jobs ``(q=m, p=1)``, submitted alternately.  FCFS (which
    may not overtake) serialises every pair; the optimum runs all narrow
    jobs in parallel and the wide jobs after one another.
    """

    instance: RigidInstance
    m: int
    K: int

    @property
    def optimal_makespan(self) -> int:
        """Narrow jobs in parallel on ``[0, K)``, wide ones after: K + m - 1."""
        return self.K + self.m - 1

    @property
    def fcfs_makespan(self) -> int:
        """Each narrow job then a wide one, strictly alternating:
        ``m K + (m - 1)``."""
        return self.m * self.K + self.m - 1

    @property
    def ratio(self) -> Fraction:
        """Tends to ``m`` as ``K -> inf`` (the paper's unbounded-ratio
        statement, with optimal makespan normalised to 1)."""
        return Fraction(self.fcfs_makespan, self.optimal_makespan)

    def optimal_schedule(self) -> Schedule:
        starts = {}
        for i in range(self.m):
            starts[f"N{i}"] = 0
        for i in range(self.m - 1):
            starts[f"W{i}"] = self.K + i
        return Schedule(self.instance, starts, algorithm="analytic-optimal")


def fcfs_worstcase_instance(m: int, K: int = 100) -> FCFSWorstCase:
    """Build the FCFS worst-case family member (``m >= 2``, ``K >= 1``).

    Submission order (= instance order) alternates narrow and wide:
    ``N0, W0, N1, W1, ..., N_{m-1}``.
    """
    if m < 2:
        raise InvalidInstanceError("FCFS worst case needs m >= 2")
    if K < 1:
        raise InvalidInstanceError("K must be >= 1")
    jobs: List[Job] = []
    for i in range(m):
        jobs.append(Job(id=f"N{i}", p=K, q=1, name=f"narrow {i}"))
        if i < m - 1:
            jobs.append(Job(id=f"W{i}", p=1, q=m, name=f"wide {i}"))
    instance = RigidInstance(
        m=m, jobs=tuple(jobs), name=f"fcfs-worst(m={m},K={K})"
    )
    return FCFSWorstCase(instance=instance, m=m, K=K)


# ---------------------------------------------------------------------------
# Tightness of Theorem 2 (2 - 1/m)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GrahamTightFamily:
    """The classical ``2 - 1/m`` tight family for list scheduling.

    ``m(m-1)`` unit jobs ``(q=1, p=1)`` followed (in the list) by one long
    job ``(q=1, p=m)``.  The bad order floods the machine with unit jobs —
    the long job starts only at ``m - 1``; the optimum dedicates one
    processor to the long job from the start.
    """

    instance: RigidInstance
    m: int

    @property
    def optimal_makespan(self) -> int:
        return self.m

    @property
    def lsrc_makespan(self) -> int:
        return 2 * self.m - 1

    @property
    def ratio(self) -> Fraction:
        """Exactly ``2 - 1/m``."""
        return Fraction(2 * self.m - 1, self.m)

    @property
    def bad_order(self) -> List:
        return [f"u{i}" for i in range(self.m * (self.m - 1))] + ["long"]

    def optimal_schedule(self) -> Schedule:
        starts = {"long": 0}
        # m(m-1) unit jobs on the remaining m-1 processors: m per processor
        for i in range(self.m * (self.m - 1)):
            proc, slot = divmod(i, self.m)
            starts[f"u{i}"] = slot
        return Schedule(self.instance, starts, algorithm="analytic-optimal")


def graham_tight_instance(m: int) -> GrahamTightFamily:
    """Build the ``2 - 1/m`` tight family member (``m >= 2``)."""
    if m < 2:
        raise InvalidInstanceError("Graham tight family needs m >= 2")
    jobs = [
        Job(id=f"u{i}", p=1, q=1, name=f"unit {i}")
        for i in range(m * (m - 1))
    ]
    jobs.append(Job(id="long", p=m, q=1, name="long job"))
    instance = RigidInstance(
        m=m, jobs=tuple(jobs), name=f"graham-tight(m={m})"
    )
    return GrahamTightFamily(instance=instance, m=m)
