"""The paper's theory as executable, machine-checked artifacts.

* :mod:`repro.theory.graham` — Theorem 2 and Lemma 1 (appendix):
  Graham's ``2 - 1/m`` bound for LSRC with certificate checkers;
* :mod:`repro.theory.alpha_bounds` — Section 4.2's ``2/α`` upper bound
  and ``B1``/``B2`` lower bounds (Figure 4);
* :mod:`repro.theory.reductions` — Theorem 1's 3-PARTITION reduction
  (Figure 1) and Proposition 1's non-increasing transformation
  (Figure 2);
* :mod:`repro.theory.adversarial` — the worst-case families: Proposition
  2 / Figure 3, the FCFS ratio-``m`` family, Graham tightness;
* :mod:`repro.theory.partition` — PARTITION / 3-PARTITION solvers that
  drive and verify the reductions.
"""

from .adversarial import (
    FCFSWorstCase,
    GrahamTightFamily,
    Proposition2Family,
    fcfs_worstcase_instance,
    graham_tight_instance,
    proposition2_instance,
)
from .alpha_bounds import (
    BoundsRow,
    default_alpha_grid,
    figure4_series,
    gap_at,
    lower_bound_b1,
    lower_bound_b2,
    lower_bound_integer_case,
    upper_bound,
)
from .graham import (
    check_lemma1,
    graham_ratio,
    lemma1_violations,
    nonincreasing_ratio,
    theorem2_check,
    work_area_inequality,
)
from .partition import (
    is_3partition_yes,
    random_no_3partition,
    random_yes_3partition,
    solve_3partition,
    solve_partition,
)
from .worst_order import (
    WorstOrderResult,
    worst_order_exhaustive,
    worst_order_sample,
)
from .reductions import (
    HeadJobsTransform,
    Proposition1Certificate,
    blocked_horizon,
    deadline_reservation_reduction,
    partition_target,
    partition_to_rigid,
    proposition1_certify,
    reduction_yes_makespan,
    reservations_to_head_jobs,
    schedule_solves_3partition,
    schedule_solves_partition,
    three_partition_reduction,
    truncate_availability,
)

__all__ = [
    # graham
    "graham_ratio",
    "nonincreasing_ratio",
    "lemma1_violations",
    "check_lemma1",
    "theorem2_check",
    "work_area_inequality",
    # alpha bounds
    "upper_bound",
    "lower_bound_integer_case",
    "lower_bound_b1",
    "lower_bound_b2",
    "figure4_series",
    "default_alpha_grid",
    "gap_at",
    "BoundsRow",
    # reductions
    "three_partition_reduction",
    "reduction_yes_makespan",
    "blocked_horizon",
    "schedule_solves_3partition",
    "deadline_reservation_reduction",
    "partition_to_rigid",
    "partition_target",
    "schedule_solves_partition",
    "truncate_availability",
    "reservations_to_head_jobs",
    "HeadJobsTransform",
    "proposition1_certify",
    "Proposition1Certificate",
    # adversarial families
    "proposition2_instance",
    "Proposition2Family",
    "fcfs_worstcase_instance",
    "FCFSWorstCase",
    "graham_tight_instance",
    "GrahamTightFamily",
    # partition
    "solve_partition",
    "solve_3partition",
    "is_3partition_yes",
    "random_yes_3partition",
    "random_no_3partition",
    # worst-order analysis
    "WorstOrderResult",
    "worst_order_exhaustive",
    "worst_order_sample",
]
