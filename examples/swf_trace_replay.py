#!/usr/bin/env python3
"""Replay a Standard Workload Format trace through the scheduler stack.

Reads an SWF trace (a real one if you pass a path, otherwise the bundled
sample), replays it both offline (all jobs at time 0 — the paper's model)
and online (submit times respected, batch-doubling wrapper of Section
2.1), and reports how much the online restriction costs.

Run:  python examples/swf_trace_replay.py [trace.swf] [max_jobs]
"""

import sys

from repro.algorithms import batch_doubling_schedule, list_schedule
from repro.analysis import format_table
from repro.core import lower_bound, summarize
from repro.workloads import SAMPLE_SWF, read_swf, write_swf


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as fh:
            source = fh.read()
        label = sys.argv[1]
    else:
        source = SAMPLE_SWF
        label = "(bundled sample)"
    max_jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 200

    report = read_swf(source, max_jobs=max_jobs)
    inst_online = report.instance
    print(f"trace: {label}")
    print(f"machine: {inst_online.m} processors")
    print(f"jobs parsed: {inst_online.n} (skipped {len(report.skipped)})")
    if report.skipped[:3]:
        for line, reason in report.skipped[:3]:
            print(f"  skipped line {line}: {reason}")
    print()

    # offline view: drop submit times (the paper's core model)
    inst_offline = read_swf(source, max_jobs=max_jobs, use_release=False).instance

    offline = list_schedule(inst_offline, priority="lpt")
    offline.verify()
    online = batch_doubling_schedule(inst_online)
    online.verify()

    rows = []
    for tag, inst, schedule in (
        ("offline LSRC-LPT", inst_offline, offline),
        ("online batch-LSRC", inst_online, online),
    ):
        metrics = summarize(schedule)
        rows.append(
            {
                "mode": tag,
                "makespan": round(metrics.makespan, 1),
                "LB": round(float(lower_bound(inst)), 1),
                "ratio": round(metrics.makespan / float(lower_bound(inst)), 3),
                "utilization": round(metrics.utilization, 3),
            }
        )
    print(format_table(rows, title="Offline vs online replay"))
    print(
        "\nthe online run pays at most the Shmoys-Wein-Williamson factor "
        "of 2 over the offline guarantee (Section 2.1)."
    )

    # demonstrate the writer: normalise the trace and echo the first lines
    text = write_swf(inst_online)
    print("\nnormalised SWF head:")
    for line in text.splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
