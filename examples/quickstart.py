#!/usr/bin/env python3
"""Quickstart — schedule rigid jobs around an advance reservation.

Builds a small RESASCHEDULING instance (Section 3.1 of the paper), runs
the policy spectrum of Section 2.2 (FCFS, conservative backfilling, EASY,
LSRC) plus the exact solver, verifies every schedule against the model,
and prints metrics, a comparison table and ASCII Gantt charts.

Run:  python examples/quickstart.py
"""

from repro import ReservationInstance, lower_bound
from repro.algorithms import branch_and_bound, get_scheduler
from repro.analysis import format_table
from repro.core import summarize
from repro.viz import render_gantt


def main() -> None:
    # A 8-processor cluster; 4 processors are reserved on [6, 12) for a
    # demo session (the paper's second motivating scenario).
    instance = ReservationInstance.from_specs(
        m=8,
        job_specs=[
            (4, 3),   # p=4, q=3
            (3, 2),
            (6, 4),
            (2, 5),
            (5, 2),
            (1, 8),
            (3, 3),
            (2, 2),
        ],
        reservation_specs=[(6, 6, 4)],  # start=6, duration=6, q=4
        name="quickstart",
    )
    print(f"instance: {instance}")
    print(f"certified lower bound on C*max: {lower_bound(instance)}")
    print(f"alpha window: [{instance.min_alpha}, {instance.max_alpha}]\n")

    rows = []
    schedules = {}
    for name in ("fcfs", "backfill-cons", "backfill-easy", "lsrc", "lsrc-lpt"):
        schedule = get_scheduler(name).schedule(instance)
        schedule.verify()  # exact feasibility check against the model
        metrics = summarize(schedule)
        schedules[name] = schedule
        rows.append(
            {
                "algorithm": name,
                "makespan": metrics.makespan,
                "utilization": round(metrics.utilization, 3),
                "mean wait": round(metrics.mean_wait, 2),
            }
        )

    optimal = branch_and_bound(instance)
    rows.append(
        {
            "algorithm": "optimal (BnB)",
            "makespan": optimal.makespan,
            "utilization": round(summarize(optimal.schedule).utilization, 3),
            "mean wait": round(summarize(optimal.schedule).mean_wait, 2),
        }
    )

    print(format_table(rows, title="Policy comparison"))
    print()
    print(render_gantt(schedules["fcfs"], width=70))
    print()
    print(render_gantt(schedules["lsrc"], width=70))
    print()
    print(render_gantt(optimal.schedule, width=70))

    worst = max(r["makespan"] for r in rows)
    best = optimal.makespan
    print(
        f"\nspread: worst policy {worst} vs optimal {best} "
        f"({worst / best:.2f}x) — backfilling earns its keep."
    )


if __name__ == "__main__":
    main()
