#!/usr/bin/env python3
"""Reproduce the paper's worst-case constructions interactively.

Walks through the three families of the paper with real algorithm runs:

1. Proposition 2 / Figure 3 — the α-restricted family where LSRC's list
   order costs a factor ``2/α - 1 + α/2``;
2. Section 2.2 — the FCFS ratio-``m`` trap;
3. Theorem 2 tightness — the classical ``2 - 1/m`` family.

Run:  python examples/adversarial_analysis.py [k]
"""

import sys
from fractions import Fraction

from repro.algorithms import ListScheduler, fcfs_schedule, list_schedule
from repro.analysis import format_table
from repro.theory import (
    fcfs_worstcase_instance,
    graham_ratio,
    graham_tight_instance,
    lower_bound_integer_case,
    proposition2_instance,
    upper_bound,
)
from repro.viz import render_gantt, save_svg


def proposition2_demo(k: int) -> None:
    fam = proposition2_instance(k)
    print(f"== Proposition 2 family: k={k}, alpha=2/{k}, m={fam.instance.m} ==")
    optimal = fam.optimal_schedule()
    optimal.verify()
    bad = list_schedule(fam.instance, order=fam.bad_order)
    bad.verify()
    print(f"optimal makespan     : {optimal.makespan}")
    print(f"LSRC (bad order)     : {bad.makespan}")
    print(f"ratio                : {Fraction(bad.makespan, optimal.makespan)}")
    print(f"2/a - 1 + a/2        : {lower_bound_integer_case(fam.alpha)}")
    print(f"upper bound 2/a      : {upper_bound(fam.alpha)}")
    print()
    print(render_gantt(optimal, width=70, max_rows=12, legend=False))
    print()
    print(render_gantt(bad, width=70, max_rows=12, legend=False))
    for schedule, tag in ((optimal, "optimal"), (bad, "lsrc_bad")):
        path = f"/tmp/prop2_k{k}_{tag}.svg"
        save_svg(schedule, path)
        print(f"saved SVG: {path}")
    print()


def fcfs_demo() -> None:
    print("== FCFS has no constant guarantee (Section 2.2) ==")
    rows = []
    for m in (4, 8, 16):
        fam = fcfs_worstcase_instance(m, K=200)
        schedule = fcfs_schedule(fam.instance)
        schedule.verify()
        lsrc = ListScheduler().schedule(fam.instance)
        rows.append(
            {
                "m": m,
                "C*": fam.optimal_makespan,
                "FCFS": schedule.makespan,
                "FCFS ratio": round(schedule.makespan / fam.optimal_makespan, 2),
                "LSRC ratio": round(lsrc.makespan / fam.optimal_makespan, 2),
            }
        )
    print(format_table(rows))
    print("FCFS degrades linearly in m; LSRC stays within 2 - 1/m.\n")


def graham_demo() -> None:
    print("== Theorem 2 tightness: ratio exactly 2 - 1/m ==")
    rows = []
    for m in (2, 4, 8):
        fam = graham_tight_instance(m)
        bad = list_schedule(fam.instance, order=fam.bad_order)
        rows.append(
            {
                "m": m,
                "C*": fam.optimal_makespan,
                "LSRC(bad)": bad.makespan,
                "ratio": str(Fraction(bad.makespan, fam.optimal_makespan)),
                "2 - 1/m": str(graham_ratio(m)),
            }
        )
    print(format_table(rows))


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    proposition2_demo(k)
    fcfs_demo()
    graham_demo()


if __name__ == "__main__":
    main()
