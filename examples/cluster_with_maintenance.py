#!/usr/bin/env python3
"""A production-flavoured scenario: cluster with maintenance windows.

Simulates the setting the paper motivates (Section 1): a 64-processor
cluster with periodic maintenance reservations and a Feitelson-style job
mix arriving over time.  Compares the online policy spectrum, reports
batch-scheduler metrics (wait, slowdown, utilization) and checks the α
restriction that production systems impose on reservations (Section 4.2:
"it is common to disallow reservations that require more than half of
the machines").

Run:  python examples/cluster_with_maintenance.py
"""

from repro.analysis import ascii_histogram, format_table
from repro.core import ReservationInstance, lower_bound
from repro.core.metrics import slowdowns, summarize
from repro.simulation import simulate
from repro.workloads import FeitelsonModel, periodic_maintenance

M = 64
N_JOBS = 120


def build_instance() -> ReservationInstance:
    model = FeitelsonModel(M, serial_probability=0.3, long_probability=0.08)
    rigid = model.instance(N_JOBS, seed=2024, arrival_rate=0.35)
    # cap job widths at alpha * m = m/2 so the alpha restriction holds
    jobs = tuple(
        job if job.q <= M // 2 else
        type(job)(id=job.id, p=job.p, q=M // 2, release=job.release)
        for job in rigid.jobs
    )
    maintenance = periodic_maintenance(
        M, q=16, period=400, duration=60, count=6, first_start=120
    )
    inst = ReservationInstance(
        m=M, jobs=jobs, reservations=maintenance, name="cluster+maintenance"
    )
    inst.validate_alpha(0.5)  # the paper's "no more than half" policy
    return inst


def main() -> None:
    inst = build_instance()
    print(f"instance: {inst}")
    print(f"maintenance windows: {inst.n_reservations} x 16 procs x 60s")
    print(f"lower bound on C*max: {float(lower_bound(inst)):.1f}\n")

    rows = []
    results = {}
    for policy in ("fcfs", "conservative", "easy", "greedy"):
        result = simulate(inst, policy)
        result.schedule.verify()
        metrics = summarize(result.schedule)
        results[policy] = result
        rows.append(
            {
                "policy": policy,
                "makespan": round(metrics.makespan, 1),
                "utilization": round(metrics.utilization, 3),
                "mean wait": round(metrics.mean_wait, 1),
                "max wait": round(metrics.max_wait, 1),
                "mean slowdown": round(metrics.mean_slowdown, 2),
            }
        )
    print(format_table(rows, title="Online policies under maintenance"))

    print("\nSlowdown distribution under FCFS vs greedy (LSRC):")
    for policy in ("fcfs", "greedy"):
        values = slowdowns(results[policy].schedule)
        print()
        print(ascii_histogram(values, bins=8, width=40,
                              title=f"{policy} slowdowns"))

    # the events around the first maintenance window
    print("\nTrace excerpt around the first maintenance window [120, 180):")
    shown = 0
    for event in results["greedy"].trace:
        if 100 <= event.time <= 200 and shown < 12:
            print(
                f"  t={event.time:8.1f}  {event.kind:7s} job {event.job_id}"
                f"  (queue={event.queue_length})"
            )
            shown += 1


if __name__ == "__main__":
    main()
