#!/usr/bin/env python3
"""Drive a live ``repro serve`` daemon end to end.

The daemon is the scheduler-as-a-service face of the replay engine: it
holds one live :class:`~repro.simulation.SchedulerCore` behind a local
HTTP/JSON endpoint speaking ``repro-serve/1`` (:mod:`repro.serve.api`),
and event-sources every accepted mutation through its journal so a
``kill -9`` recovers byte-identically with ``repro serve --resume``.

This example spawns a daemon as a subprocess (exactly as an operator
would: ``repro serve JOURNAL -m 16 --port-file PORT``), then acts as a
client: submit jobs, advance the logical clock, cancel one job, carve
out a maintenance reservation, drain, and read the gauges back.  Note
what the client imports — the ``repro.serve.api`` builders and stdlib
``urllib``, never engine internals.

Run:  python examples/serve_client.py
"""

import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.serve.api import (
    make_advance,
    make_cancel,
    make_drain,
    make_reserve,
    make_submit,
    raise_for_envelope,
)


def post_op(port: int, body: dict) -> dict:
    """Send one op; return its result, raising on an error envelope."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/op",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return raise_for_envelope(json.loads(response.read()))
    except urllib.error.HTTPError as exc:
        # rejections (409/400) still carry a repro-serve/1 envelope
        return raise_for_envelope(json.loads(exc.read()))


def get(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return raise_for_envelope(json.loads(response.read()))


def wait_for_port(port_file: Path, proc: subprocess.Popen) -> int:
    while True:
        if port_file.is_file() and port_file.read_text().strip():
            return int(port_file.read_text())
        if proc.poll() is not None:
            raise SystemExit(f"daemon died on startup: {proc.stderr.read()}")
        time.sleep(0.05)


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        port_file = Path(scratch) / "port"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             f"{scratch}/journal", "-m", "16", "--window", "4",
             "--port-file", str(port_file)],
            stderr=subprocess.PIPE, text=True,
        )
        try:
            port = wait_for_port(port_file, daemon)
            print(f"daemon up on port {port}")

            # a maintenance hole: 16 processors off from t=20 to t=30
            post_op(port, make_reserve(20, 10, 16))

            for i in range(6):
                result = post_op(
                    port, make_submit(f"job-{i}", p=4 + i, q=1 + i % 3,
                                      release=2 * i)
                )
                print("submitted:", result)

            post_op(port, make_cancel("job-5"))  # changed our mind
            status = post_op(port, make_advance(10))
            print("advanced to 10:", status)

            status = post_op(port, make_drain())
            print("drained:", status)

            state = get(port, "/v1/state")
            print("final clock:", state["clock"])
            print("window rows:", len(get(port, "/v1/windows")["rows"]))

            # ask the daemon to exit; its journal outlives it — a later
            # `repro serve JOURNAL --resume` would pick up exactly here
            urllib.request.urlopen(
                urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/shutdown", method="POST"
                ),
                timeout=30,
            ).read()
            daemon.wait(timeout=30)
            print("daemon exited:", daemon.returncode)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


if __name__ == "__main__":
    main()
