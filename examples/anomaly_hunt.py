#!/usr/bin/env python3
"""Hunt for Graham timing anomalies in the reservation model.

Graham's classic observation (the paper's appendix builds on his bounds)
is that list scheduling is not monotone: giving the scheduler *more*
(an extra processor, a shorter job, one job fewer) can produce a *longer*
schedule.  This example:

1. replays the deterministic capacity witness (m = 4 → 5 raises the
   makespan 18 → 20 around a reservation) with Gantt charts;
2. runs a randomized hunt and tabulates every witness found;
3. shows the takeaway: guarantees like the paper's 2/α are worst-case
   envelopes because pointwise behaviour cannot be trusted.

Run:  python examples/anomaly_hunt.py [trials]
"""

import sys

from repro.algorithms import ListScheduler
from repro.analysis import classic_capacity_anomaly, find_anomalies, format_table
from repro.viz import render_gantt


def show_classic() -> None:
    witness = classic_capacity_anomaly()
    print("== The deterministic capacity anomaly ==")
    print(witness.description)
    print()
    base = ListScheduler().schedule(witness.base_instance)
    pert = ListScheduler().schedule(witness.perturbed_instance)
    print(render_gantt(base, width=66))
    print()
    print(render_gantt(pert, width=66))
    print()
    print(
        f"four processors finish at {base.makespan}; a fifth processor "
        f"finishes at {pert.makespan}."
    )
    print()


def hunt(trials: int) -> None:
    print(f"== Randomized hunt ({trials} trials) ==")
    witnesses = find_anomalies(n_trials=trials, seed=7)
    if not witnesses:
        print("no anomalies found — try more trials")
        return
    rows = []
    for w in witnesses:
        rows.append(
            {
                "kind": w.kind,
                "m": w.base_instance.m,
                "jobs": w.base_instance.n,
                "reservations": w.base_instance.n_reservations,
                "before": w.base_makespan,
                "after": w.perturbed_makespan,
                "regression": w.regression,
            }
        )
    print(format_table(rows, title=f"{len(witnesses)} verified witnesses"))
    worst = max(witnesses, key=lambda w: w.regression / w.base_makespan)
    print(f"\nlargest relative regression: {worst.description}")
    print(
        "\nmoral: list scheduling is only safe in the worst-case sense -- "
        "exactly why the paper proves envelope bounds (2 - 1/m, 2/alpha) "
        "instead of monotonicity."
    )


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    show_classic()
    hunt(trials)


if __name__ == "__main__":
    main()
