#!/usr/bin/env python3
"""Re-verify every claim of the paper with one command.

Runs the full certificate battery (Theorem 1's reduction, Propositions
1-3, Theorem 2 + Lemma 1, Figure 4's ordering, the FCFS trap) and prints
a pass/fail table with one-line evidence per claim.

Run:  python examples/verify_paper.py [seed] [--thorough]
"""

import sys

from repro.analysis import format_table, verify_paper_claims


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    seed = int(args[0]) if args else 0
    thorough = "--thorough" in sys.argv

    print(f"re-verifying the paper (seed={seed}, thorough={thorough})...\n")
    report = verify_paper_claims(seed=seed, thorough=thorough)
    print(format_table(report.as_rows(), title="Paper claims"))
    if report.all_passed:
        print("\nALL CLAIMS VERIFIED.")
    else:
        failed = [r.claim for r in report.results if not r.passed]
        print(f"\nFAILED: {failed}")
        sys.exit(1)


if __name__ == "__main__":
    main()
