#!/usr/bin/env python3
"""Explore the α-RESASCHEDULING bounds (Figure 4) from the command line.

Prints the exact values of the upper bound ``2/α`` and the lower bounds
``B1``/``B2`` at chosen α values, the full Figure 4 chart, and — the part
the formulas cannot show — *live* worst-case instances at ``α = 2/k``
whose LSRC runs land exactly on the lower-bound curve.

Run:  python examples/bounds_explorer.py [alpha ...]
      python examples/bounds_explorer.py 0.5 2/3 0.25
"""

import sys
from fractions import Fraction

from repro.algorithms import list_schedule
from repro.analysis import ascii_plot, format_table
from repro.theory import (
    default_alpha_grid,
    figure4_series,
    lower_bound_b1,
    lower_bound_b2,
    proposition2_instance,
    upper_bound,
)


def parse_alpha(token: str) -> Fraction:
    if "/" in token:
        num, den = token.split("/")
        return Fraction(int(num), int(den))
    return Fraction(token)


def point_table(alphas) -> None:
    rows = []
    for alpha in alphas:
        rows.append(
            {
                "alpha": str(alpha),
                "upper 2/a": float(upper_bound(alpha)),
                "B1": float(lower_bound_b1(alpha)),
                "B2": float(lower_bound_b2(alpha)),
                "B1 exact": str(lower_bound_b1(alpha)),
            }
        )
    print(format_table(rows, title="Bounds at requested alpha values"))


def chart() -> None:
    rows = figure4_series(default_alpha_grid(160, lo=0.2))
    print(
        ascii_plot(
            {
                "upper 2/a": [(r.alpha, r.upper) for r in rows],
                "B1": [(r.alpha, r.b1) for r in rows],
                "B2": [(r.alpha, r.b2) for r in rows],
            },
            width=72,
            height=20,
            y_max=10.0,
            y_min=0.0,
            x_label="alpha",
            y_label="guarantee",
        )
    )


def live_instances() -> None:
    print("\nLive lower-bound witnesses (real LSRC runs):")
    rows = []
    for k in (4, 6, 8):
        fam = proposition2_instance(k)
        bad = list_schedule(fam.instance, order=fam.bad_order)
        rows.append(
            {
                "alpha": f"2/{k}",
                "m": fam.instance.m,
                "C*": fam.optimal_makespan,
                "LSRC": bad.makespan,
                "achieved ratio": str(Fraction(bad.makespan, fam.optimal_makespan)),
                "B1": str(lower_bound_b1(Fraction(2, k))),
            }
        )
    print(format_table(rows))
    print("achieved ratio == B1: the lower bound is constructive.")


def main() -> None:
    alphas = (
        [parse_alpha(t) for t in sys.argv[1:]]
        if len(sys.argv) > 1
        else [Fraction(1, 4), Fraction(1, 3), Fraction(1, 2), Fraction(2, 3), Fraction(1)]
    )
    point_table(alphas)
    print()
    chart()
    live_instances()


if __name__ == "__main__":
    main()
